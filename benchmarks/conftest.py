"""Shared fixtures and helpers for the benchmark harness.

Every benchmark corresponds to one experiment of EXPERIMENTS.md (E1--E12).
The pytest-benchmark table is the measured "series": one row per parameter
point, with wall-clock statistics from the harness and the oracle-query
counts attached through ``benchmark.extra_info`` so the query-complexity
claims of the paper can be read off the saved JSON as well.

Run with::

    pytest benchmarks/ --benchmark-only
    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
"""

import numpy as np
import pytest

from repro.quantum.sampling import FourierSampler


@pytest.fixture
def rng():
    return np.random.default_rng(20010202)


@pytest.fixture
def sampler(rng):
    return FourierSampler(backend="auto", rng=rng)


@pytest.fixture
def analytic_sampler(rng):
    return FourierSampler(backend="analytic", rng=rng)


def attach_query_report(benchmark, report: dict) -> None:
    """Record oracle-query counters alongside the timing statistics."""
    for key in ("classical_queries", "quantum_queries", "group_multiplications"):
        if key in report:
            benchmark.extra_info[key] = report[key]
