"""Benchmark harness package (one module per experiment of EXPERIMENTS.md)."""
