"""E5 — HSP in groups with small commutator subgroup (Theorem 11).

Paper claim: the HSP is solvable in time polynomial in
``input size + |G'|``.  Two sweeps separate the two parameters:

* fixed ``log |G|`` shape, growing ``|G'|`` (extraspecial groups with
  increasing ``p``) — cost should grow polynomially in ``|G'| = p``;
* fixed ``|G'| = 3``, growing ``log |G|`` (direct products
  ``Z_{2^k} x H_3``) — cost should grow polynomially in ``log |G|``.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.small_commutator import solve_hsp_small_commutator
from repro.groups.abelian import cyclic_group
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import DirectProduct, dihedral_semidirect
from repro.quantum.sampling import FourierSampler


@pytest.mark.parametrize("p", [3, 5, 7, 11])
def test_scaling_in_commutator_order(benchmark, p, rng):
    """Extraspecial p-groups: |G'| = p grows, log|G| stays ~3 log p."""
    group = extraspecial_group(p)
    hidden = [group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)
    commutator = group.commutator_subgroup_elements()

    def run():
        return solve_hsp_small_commutator(
            group, instance.oracle.fresh_view(), sampler=sampler, commutator_elements=commutator
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["commutator_order"] = p
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("log_extra", [2, 4, 6])
def test_scaling_in_group_size_at_fixed_commutator(benchmark, log_extra, rng):
    """Z_{2^k} x H_3: |G'| = 3 fixed while log|G| grows with k."""
    group = DirectProduct([cyclic_group(2**log_extra), extraspecial_group(3)])
    heis = group.factors[1]
    hidden = [((1,), heis.uniform_random_element(rng))]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)
    commutator = [((0,), c) for c in heis.commutator_subgroup_elements()]

    def run():
        return solve_hsp_small_commutator(
            group, instance.oracle.fresh_view(), sampler=sampler, commutator_elements=commutator
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["log2_group_order"] = float(np.log2(group.order()))
    benchmark.extra_info["commutator_order"] = 3
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("n", [6, 10, 14])
def test_dihedral_reflection_subgroups(benchmark, n, rng):
    """D_n with |G'| = n/2: the reflection subgroups are *not* normal."""
    group = dihedral_semidirect(n)
    hidden = [group.embed_quotient((1,))]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_small_commutator(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["commutator_order"] = result.commutator_order
    attach_query_report(benchmark, result.query_report)
