"""E1 — Abelian HSP scaling (Theorem 3 substrate).

Paper claim: the hidden subgroup problem in Abelian groups is solvable in
time (and queries) polynomial in ``log |G|``.  The sweep below grows
``log2 |G|`` from 6 to 48 while keeping the hiding oracle polynomial
(canonical lattice coset labels) and the sampling backend analytic, so the
measured time and the recorded ``quantum_queries`` should grow like a low
degree polynomial in ``log |G|`` — in stark contrast with the classical
baseline of E9, which grows linearly in ``|G|`` itself.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.groups.abelian import AbelianTupleGroup
from repro.hsp.abelian import solve_hsp_in_abelian_group
from repro.quantum.sampling import FourierSampler

CASES = {
    "log16": [2**8, 2**8],
    "log24": [2**8, 3**5, 5**3],
    "log32": [2**16, 3**10],
    "log48": [2**16, 3**10, 5**7, 7**5],
}


def _build_instance(moduli, rng):
    group = AbelianTupleGroup(moduli)
    hidden = [group.module.random_element(rng) for _ in range(2)]
    return group, HSPInstance.from_subgroup(group, hidden)


@pytest.mark.parametrize("label", sorted(CASES))
def test_abelian_hsp_scaling(benchmark, label, rng):
    moduli = CASES[label]
    group, instance = _build_instance(moduli, rng)
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        return solve_hsp_in_abelian_group(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["log2_group_order"] = float(np.log2(group.order()))
    attach_query_report(benchmark, result.query_report)


def test_abelian_hsp_statevector_ground_truth(benchmark, rng):
    """The honest gate-level backend on a small instance (cross-validation point)."""
    group = AbelianTupleGroup([16, 9])
    hidden = [(4, 3)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="statevector", rng=rng)

    def run():
        return solve_hsp_in_abelian_group(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators)
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("rank", [2, 4, 8])
def test_simon_problem_scaling(benchmark, rank, rng):
    """Simon's problem (Z_2^n) as the classic special case of Theorem 3."""
    moduli = [2] * (2 * rank)
    group = AbelianTupleGroup(moduli)
    hidden = [tuple(rng.integers(0, 2, size=2 * rank).tolist()) for _ in range(rank)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        return solve_hsp_in_abelian_group(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    attach_query_report(benchmark, result.query_report)
