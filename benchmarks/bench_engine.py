"""Engine benchmark: vectorized Cayley-table path vs the scalar path.

A thin wrapper over the experiment subsystem: the workload instances come
from :mod:`repro.experiments.registry` (the same families the declared
``engine-*``/``scalar-*`` comparison sweeps use), the scalar configuration
is realised with :func:`repro.groups.engine.engine_disabled`, and the
measurements are persisted as ``BENCH_engine.json`` through
:mod:`repro.experiments.results`.

Two Fourier-sampling-dominated workloads — the extraspecial Theorem 11
solve (E6) and the hidden-normal-subgroup solve (E4) — run on the same seed
in both configurations:

``scalar``
    the pre-engine profile: min-encoding coset labels, per-element group
    arithmetic, per-round Fourier sampling (``FourierSampler(batch=False)``,
    ``use_engine=False``);
``engine``
    the batched profile: Cayley-engine products and coset labels, per-oracle
    partition/decomposition caches, block sampling.

Both configurations produce verified solutions and identical query totals
per round; only the wall-clock cost of *simulating* the queries changes.
The timing methodology is steady-state: one warm-up run, then the best of
``repeats`` — the engine's one-off table fill-in is amortised, exactly as a
sweep of many runs over the same group amortises it.  Run directly::

    PYTHONPATH=src python benchmarks/bench_engine.py

Also exposed as a pytest-style check (``test_engine_speedup``) asserting the
engine path wins by a comfortable margin on the aggregate.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.blackbox.instances import HSPInstance
from repro.core.solver import solve_hsp
from repro.experiments.registry import build_instance
from repro.experiments.results import write_bench
from repro.experiments.specs import DEFAULT_SEED, derive_seed
from repro.experiments.workloads import ENGINE_COMPARISONS, get_workload
from repro.groups.engine import engine_disabled
from repro.quantum.sampling import FourierSampler

SEED = DEFAULT_SEED


def comparison_workloads() -> List[Tuple[str, str, Dict[str, object]]]:
    """``(label, family, params)`` rows from the declared comparison pairs.

    The single source of truth is :data:`ENGINE_COMPARISONS` — the declared
    ``engine-*``/``scalar-*`` sweep pairs; this benchmark times the same
    family and grid point with the steady-state methodology below.
    """
    rows = []
    for pair in ENGINE_COMPARISONS:
        spec = get_workload(pair["engine"])
        (point,) = spec.points()
        rows.append((pair["label"], spec.family, point))
    return rows


def _timed(run: Callable[[], object], repeats: int) -> Tuple[float, object]:
    run()  # warm caches exactly once in both configurations
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_workload(family: str, params: Dict[str, object], repeats: int = 10) -> Dict[str, float]:
    """Best-of-``repeats`` solve time of one workload in both configurations."""
    timings: Dict[str, float] = {}
    for config in ("scalar", "engine"):
        engine_on = config == "engine"
        context = nullcontext() if engine_on else engine_disabled()
        with context:
            # Fresh group and oracle per configuration: no engine stickiness.
            instance = build_instance(family, params, np.random.default_rng(derive_seed(SEED, 0)))
            sampler = FourierSampler(backend="auto", rng=np.random.default_rng(SEED), batch=engine_on)

            def run():
                fresh = HSPInstance(
                    group=instance.group,
                    oracle=instance.oracle.fresh_view(),
                    hidden_generators=instance.hidden_generators,
                    promises=instance.promises,
                )
                return solve_hsp(fresh, sampler=sampler, use_engine=engine_on)

            elapsed, solution = _timed(run, repeats)
            solved = instance.verify(solution.generators or [instance.group.identity()])
        assert solved, f"{config} configuration returned a wrong subgroup"
        timings[config] = elapsed
    return timings


def bench_batch_ops(p: int = 11, pairs: int = 4096, repeats: int = 10) -> Dict[str, float]:
    """Raw batch multiplication: engine ``mul_many`` vs the scalar loop."""
    from repro.groups.engine import get_engine
    from repro.groups.extraspecial import extraspecial_group

    group = extraspecial_group(p)
    rng = np.random.default_rng(SEED)
    elements_a = [group.uniform_random_element(rng) for _ in range(pairs)]
    elements_b = [group.uniform_random_element(rng) for _ in range(pairs)]
    scalar, _ = _timed(lambda: [group.multiply(a, b) for a, b in zip(elements_a, elements_b)], repeats)
    engine = get_engine(group)
    ids_a, ids_b = engine.intern_many(elements_a), engine.intern_many(elements_b)
    engine_time, _ = _timed(lambda: engine.mul_many(ids_a, ids_b), repeats)
    return {"scalar": scalar, "engine": engine_time}


def run_all() -> List[Tuple[str, float, float, float]]:
    rows = []
    for name, family, params in comparison_workloads():
        timings = bench_workload(family, params)
        rows.append((name, timings["scalar"], timings["engine"], timings["scalar"] / timings["engine"]))
    raw = bench_batch_ops()
    rows.append(("mul_many 4096 pairs (p=11)", raw["scalar"], raw["engine"], raw["scalar"] / raw["engine"]))
    return rows


def solver_aggregate(rows: List[Tuple[str, float, float, float]]) -> float:
    """Aggregate speedup over the solver workloads (the raw-ops row excluded)."""
    solver_rows = rows[: len(ENGINE_COMPARISONS)]
    return sum(r[1] for r in solver_rows) / sum(r[2] for r in solver_rows)


def persist(rows: List[Tuple[str, float, float, float]], out_dir: str = ".") -> str:
    """Write the comparison as ``BENCH_engine.json`` (the bench trajectory file)."""
    payload = {
        "benchmark": "engine-vs-scalar",
        "seed": SEED,
        "rows": [
            {"workload": name, "scalar_seconds": scalar, "engine_seconds": engine, "speedup": speedup}
            for name, scalar, engine, speedup in rows
        ],
        "aggregate": {"solver_speedup": solver_aggregate(rows)},
    }
    return write_bench(out_dir, "engine", payload)


def main() -> None:
    rows = run_all()
    width = max(len(name) for name, *_ in rows)
    print(f"{'workload':<{width}}  {'scalar':>10}  {'engine':>10}  {'speedup':>8}")
    for name, scalar, engine, speedup in rows:
        print(f"{name:<{width}}  {scalar * 1e3:>8.2f}ms  {engine * 1e3:>8.2f}ms  {speedup:>7.1f}x")
    path = persist(rows)
    print(f"\naggregate solver speedup: {solver_aggregate(rows):.1f}x (target: >= 3x)")
    print(f"wrote {path}")


def test_engine_speedup():
    """The engine path must beat the scalar path >= 3x on the solver workloads."""
    aggregate = solver_aggregate(run_all())
    assert aggregate >= 3.0, f"aggregate speedup {aggregate:.2f}x below target"


if __name__ == "__main__":
    main()
