"""Engine benchmark: vectorized Cayley-table path vs the scalar path.

Runs the two Fourier-sampling-dominated workloads of the experiment suite —
the extraspecial Theorem 11 solve (E6) and the hidden-normal-subgroup solve
(E4) — twice on the same seed:

``scalar``
    the pre-engine configuration: per-element group arithmetic, per-round
    Fourier sampling (``FourierSampler(batch=False)``), min-encoding coset
    labels, ``use_engine=False`` in the solvers;
``engine``
    the batched configuration: Cayley-engine products and coset labels,
    per-oracle partition/decomposition caches, block sampling.

Both configurations produce verified solutions and identical query totals
per round; only the wall-clock cost of *simulating* the queries changes.
Run directly::

    PYTHONPATH=src python benchmarks/bench_engine.py

Also exposed as a pytest module (``test_engine_speedup``) asserting the
engine path wins by a comfortable margin on the aggregate.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.blackbox.instances import HSPInstance
from repro.blackbox.oracle import HidingOracle, QueryCounter
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.core.small_commutator import solve_hsp_small_commutator
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import dihedral_semidirect
from repro.groups.subgroup import coset_representative_map, generate_subgroup_elements
from repro.quantum.sampling import FourierSampler

SEED = 20010202


def _scalar_oracle(group, hidden) -> HidingOracle:
    """The pre-engine hiding oracle: min-encoding labels over the enumerated subgroup."""
    subgroup_elements = generate_subgroup_elements(group, hidden)
    return HidingOracle(
        coset_representative_map(group, subgroup_elements),
        counter=QueryCounter(),
        hidden_subgroup_generators=list(hidden),
        description="scalar coset label",
    )


def _timed(run: Callable[[], object], repeats: int) -> Tuple[float, object]:
    run()  # warm caches exactly once in both configurations
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_extraspecial(p: int = 7, repeats: int = 10) -> Dict[str, float]:
    """Theorem 11 on the extraspecial group of order ``p**3`` (workload E6)."""
    timings: Dict[str, float] = {}
    for config in ("scalar", "engine"):
        group = extraspecial_group(p)  # fresh instance: no engine stickiness
        rng = np.random.default_rng(SEED)
        hidden = [group.uniform_random_element(rng)]
        engine_on = config == "engine"
        if engine_on:
            instance = HSPInstance.from_subgroup(group, hidden)
            oracle = instance.oracle
        else:
            oracle = _scalar_oracle(group, hidden)
            instance = HSPInstance(group=None, oracle=oracle, hidden_generators=hidden)
        sampler = FourierSampler(backend="auto", rng=rng, batch=engine_on)

        def run():
            return solve_hsp_small_commutator(
                group,
                oracle.fresh_view(),
                sampler=sampler,
                commutator_elements=group.commutator_subgroup_elements(),
                use_engine=engine_on,
            )

        elapsed, result = _timed(run, repeats)
        solved = HSPInstance.from_subgroup(group, hidden).verify(
            result.generators or [group.identity()]
        )
        assert solved, f"{config} configuration returned a wrong subgroup"
        timings[config] = elapsed
    return timings


def bench_hidden_normal(n: int = 128, repeats: int = 10) -> Dict[str, float]:
    """Theorem 8 on the rotation subgroup of the dihedral group D_n (workload E4)."""
    timings: Dict[str, float] = {}
    for config in ("scalar", "engine"):
        group = dihedral_semidirect(n)
        rng = np.random.default_rng(SEED)
        hidden = [group.embed_normal((1,))]
        engine_on = config == "engine"
        if engine_on:
            instance = HSPInstance.from_subgroup(group, hidden)
            oracle = instance.oracle
        else:
            oracle = _scalar_oracle(group, hidden)
        sampler = FourierSampler(backend="auto", rng=rng, batch=engine_on)

        def run():
            return find_hidden_normal_subgroup(
                group, oracle.fresh_view(), sampler=sampler, use_engine=engine_on
            )

        elapsed, result = _timed(run, repeats)
        solved = HSPInstance.from_subgroup(group, hidden).verify(result.generators)
        assert solved, f"{config} configuration returned a wrong subgroup"
        timings[config] = elapsed
    return timings


def bench_batch_ops(p: int = 11, pairs: int = 4096, repeats: int = 10) -> Dict[str, float]:
    """Raw batch multiplication: engine ``mul_many`` vs the scalar loop."""
    from repro.groups.engine import get_engine

    group = extraspecial_group(p)
    rng = np.random.default_rng(SEED)
    elements_a = [group.uniform_random_element(rng) for _ in range(pairs)]
    elements_b = [group.uniform_random_element(rng) for _ in range(pairs)]
    scalar, _ = _timed(lambda: [group.multiply(a, b) for a, b in zip(elements_a, elements_b)], repeats)
    engine = get_engine(group)
    ids_a, ids_b = engine.intern_many(elements_a), engine.intern_many(elements_b)
    engine_time, _ = _timed(lambda: engine.mul_many(ids_a, ids_b), repeats)
    return {"scalar": scalar, "engine": engine_time}


WORKLOADS: List[Tuple[str, Callable[[], Dict[str, float]]]] = [
    ("extraspecial p=7 (Theorem 11)", bench_extraspecial),
    ("hidden-normal D_128 (Theorem 8)", bench_hidden_normal),
    ("mul_many 4096 pairs (p=11)", bench_batch_ops),
]


def run_all() -> List[Tuple[str, float, float, float]]:
    rows = []
    for name, bench in WORKLOADS:
        timings = bench()
        speedup = timings["scalar"] / timings["engine"]
        rows.append((name, timings["scalar"], timings["engine"], speedup))
    return rows


def main() -> None:
    rows = run_all()
    width = max(len(name) for name, *_ in rows)
    print(f"{'workload':<{width}}  {'scalar':>10}  {'engine':>10}  {'speedup':>8}")
    for name, scalar, engine, speedup in rows:
        print(f"{name:<{width}}  {scalar * 1e3:>8.2f}ms  {engine * 1e3:>8.2f}ms  {speedup:>7.1f}x")
    solver_rows = rows[:2]
    aggregate = sum(r[1] for r in solver_rows) / sum(r[2] for r in solver_rows)
    print(f"\naggregate solver speedup: {aggregate:.1f}x (target: >= 3x)")


def test_engine_speedup():
    """The engine path must beat the scalar path >= 3x on the solver workloads."""
    rows = run_all()[:2]
    aggregate = sum(r[1] for r in rows) / sum(r[2] for r in rows)
    assert aggregate >= 3.0, f"aggregate speedup {aggregate:.2f}x below target"


if __name__ == "__main__":
    main()
