"""E10 — Theorem 13 vs. the Rötteler--Beth special case.

Paper claim: Theorem 13 generalises the Rötteler--Beth wreath-product
algorithm.  Both solvers are run on identical wreath instances (they must
return the same subgroup); Theorem 13 is additionally run on an affine
matrix-group instance the wreath-specific solver does not handle.
"""

import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.groups.catalog import affine_gf2_instance, wreath_instance
from repro.groups.subgroup import subgroup_order
from repro.hsp.rotteler_beth import rotteler_beth_wreath
from repro.quantum.sampling import FourierSampler

KS = [1, 2, 3]


def _wreath_instance(k, rng):
    group, normal_gens = wreath_instance(k)
    hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
    return group, normal_gens, HSPInstance.from_subgroup(group, hidden)


@pytest.mark.parametrize("k", KS)
def test_theorem13_on_wreath(benchmark, k, rng):
    group, normal_gens, instance = _wreath_instance(k, rng)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("k", KS)
def test_rotteler_beth_on_wreath(benchmark, k, rng):
    group, _, instance = _wreath_instance(k, rng)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        fresh = HSPInstance(group=instance.group, oracle=instance.oracle.fresh_view(),
                            hidden_generators=instance.hidden_generators)
        return rotteler_beth_wreath(fresh, sampler)

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("k", KS)
def test_both_solvers_agree(benchmark, k, rng):
    """One timed round that runs both and checks they find the same subgroup."""
    group, normal_gens, instance = _wreath_instance(k, rng)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        ours = solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )
        theirs = rotteler_beth_wreath(
            HSPInstance(group=instance.group, oracle=instance.oracle.fresh_view(),
                        hidden_generators=instance.hidden_generators),
            sampler,
        )
        return ours, theirs

    ours, theirs = benchmark(run)
    order_ours = subgroup_order(group, ours.generators or [group.identity()])
    order_theirs = subgroup_order(group, theirs.generators or [group.identity()])
    assert order_ours == order_theirs


def test_theorem13_beyond_wreath(benchmark, rng):
    """An affine GF(2) instance: covered by Theorem 13, outside Rötteler--Beth."""
    group, normal_gens = affine_gf2_instance(4)
    hidden = [group.random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    attach_query_report(benchmark, result.query_report)
