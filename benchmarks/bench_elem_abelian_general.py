"""E8 — Theorem 13, general case: cost polynomial in |G/N|.

Paper claim: for an elementary Abelian normal 2-subgroup ``N`` with a
(possibly non-cyclic) small factor group, the HSP is solvable in time
polynomial in ``input size + |G/N|``.  The sweep varies the factor group
(``Z_2``, ``V_4``, ``S_3``) at comparable ``|N|``, and grows ``|N|`` at a
fixed factor group.
"""

import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.groups.catalog import elementary_abelian_semidirect_instance
from repro.groups.products import generalized_dihedral
from repro.quantum.sampling import FourierSampler


@pytest.mark.parametrize("top,quotient_order", [("V4", 4), ("S3", 6)])
def test_factor_group_sweep(benchmark, top, quotient_order, rng):
    group, normal_gens = elementary_abelian_semidirect_instance(4, top)
    hidden = [group.random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group,
            instance.oracle.fresh_view(),
            normal_gens,
            sampler=sampler,
            cyclic_quotient=False,
            quotient_bound=4 * quotient_order,
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["quotient_order"] = quotient_order
    benchmark.extra_info["representatives_used"] = result.representatives_used
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("k", [3, 4, 5])
def test_normal_subgroup_rank_sweep(benchmark, k, rng):
    """|G/N| = 6 fixed (S_3), |N| = 2^k grows."""
    group, normal_gens = elementary_abelian_semidirect_instance(k, "S3")
    hidden = [group.random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group,
            instance.oracle.fresh_view(),
            normal_gens,
            sampler=sampler,
            cyclic_quotient=False,
            quotient_bound=24,
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["normal_rank"] = k
    attach_query_report(benchmark, result.query_report)


def test_direct_product_with_z2_quotient(benchmark, rng):
    """Dih(Z_2^4) degenerates to Z_2^5; sanity point with the smallest factor group."""
    group = generalized_dihedral([2, 2, 2, 2])
    normal_gens = group.normal_part_generators()
    hidden = [group.random_element(rng), group.random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    attach_query_report(benchmark, result.query_report)
