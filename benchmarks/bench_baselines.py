"""E9 — Quantum query counts vs. the exhaustive classical baseline.

Paper claim (motivation): no classical algorithm solves the HSP with fewer
than exponentially many oracle queries in ``log |G|``, whereas the quantum
algorithms use polynomially many.  The sweep solves the *same* instances with
the Theorem 3 solver and with the exhaustive classical baseline; the
pytest-benchmark rows plus the recorded query counts exhibit the separation
(classical queries = ``|G|``, quantum rounds = ``O(log |G|)``).
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.solver import solve_hsp
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import extraspecial_group
from repro.hsp.baseline_classical import classical_exhaustive_hsp
from repro.quantum.sampling import FourierSampler

SIZES = {
    "order_256": [16, 16],
    "order_1024": [32, 32],
    "order_4096": [64, 64],
}


def _instance(moduli, rng):
    group = AbelianTupleGroup(moduli)
    hidden = [group.module.random_element(rng)]
    return group, HSPInstance.from_subgroup(group, hidden)


@pytest.mark.parametrize("label", sorted(SIZES))
def test_quantum_solver(benchmark, label, rng):
    group, instance = _instance(SIZES[label], rng)
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        fresh = HSPInstance(group=instance.group, oracle=instance.oracle.fresh_view(),
                            hidden_generators=instance.hidden_generators)
        return solve_hsp(fresh, sampler=sampler)

    solution = benchmark(run)
    assert instance.verify(solution.generators or [group.identity()])
    benchmark.extra_info["group_order"] = group.order()
    attach_query_report(benchmark, solution.query_report)


@pytest.mark.parametrize("label", sorted(SIZES))
def test_classical_exhaustive_baseline(benchmark, label, rng):
    group, instance = _instance(SIZES[label], rng)

    def run():
        fresh = HSPInstance(group=instance.group, oracle=instance.oracle.fresh_view(),
                            hidden_generators=instance.hidden_generators)
        return classical_exhaustive_hsp(fresh)

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["group_order"] = group.order()
    benchmark.extra_info["oracle_queries"] = result.oracle_queries


def test_classical_baseline_on_extraspecial_group(benchmark, rng):
    group = extraspecial_group(7)
    hidden = [group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)

    def run():
        fresh = HSPInstance(group=instance.group, oracle=instance.oracle.fresh_view(),
                            hidden_generators=instance.hidden_generators)
        return classical_exhaustive_hsp(fresh)

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["oracle_queries"] = result.oracle_queries


def test_quantum_solver_on_extraspecial_group(benchmark, rng):
    group = extraspecial_group(7)
    hidden = [group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(
        group, hidden, promises={"commutator_elements": group.commutator_subgroup_elements()}
    )
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        fresh = HSPInstance(group=instance.group, oracle=instance.oracle.fresh_view(),
                            hidden_generators=instance.hidden_generators, promises=instance.promises)
        return solve_hsp(fresh, sampler=sampler)

    solution = benchmark(run)
    assert instance.verify(solution.generators or [group.identity()])
    attach_query_report(benchmark, solution.query_report)
