"""E12 — The Ettinger--Høyer dihedral procedure: few queries, exponential time.

Paper claim (Section 1): Ettinger and Høyer solve the dihedral HSP with only
``O(log |G|)`` quantum queries, but the classical post-processing takes
exponential time in ``log |G|`` — which is why the result does not yield an
efficient algorithm.  The sweep grows ``n``; the recorded
``quantum_queries`` grow logarithmically while the wall-clock time (dominated
by the likelihood scan over all ``n`` candidate slopes) grows linearly in
``n``, i.e. exponentially in the input size ``log n``.
"""

import numpy as np
import pytest

from repro.hsp.ettinger_hoyer import ettinger_hoyer_dihedral

SIZES = [64, 256, 1024, 4096]


@pytest.mark.parametrize("n", SIZES)
def test_ettinger_hoyer_scaling(benchmark, n, rng):
    slope = int(rng.integers(1, n))

    def run():
        return ettinger_hoyer_dihedral(n, slope, rng)

    result = benchmark(run)
    assert result.success
    benchmark.extra_info["n"] = n
    benchmark.extra_info["quantum_queries"] = result.quantum_queries
    benchmark.extra_info["candidates_scanned"] = result.postprocessing_candidates_scanned


def test_query_growth_is_logarithmic(benchmark, rng):
    """One timed pass that records the query counts across the whole sweep."""

    def run():
        return [ettinger_hoyer_dihedral(n, 5, rng).quantum_queries for n in SIZES]

    queries = benchmark.pedantic(run, rounds=1, iterations=1)
    ratios = [b / a for a, b in zip(queries, queries[1:])]
    # doubling log(n) should far less than double the queries' growth vs n
    assert all(r <= 2.0 for r in ratios)
    benchmark.extra_info["queries_per_size"] = dict(zip(map(str, SIZES), queries))
