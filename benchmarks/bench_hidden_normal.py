"""E4 — Hidden normal subgroups of solvable and permutation groups (Theorem 8).

Paper claim: generators of a hidden *normal* subgroup can be found in quantum
time polynomial in the input size (+ ``nu(G/N)``), in particular for solvable
groups and permutation groups, with no non-Abelian Fourier transform.  The
sweeps grow the dihedral/metacyclic/permutation instances; the Abelian-factor
path should scale with ``log |G|`` and the bounded-factor path with
``|G/N|``.

The sweep definitions live in :mod:`repro.experiments.workloads` (the
``hidden-normal-*`` entries); running this file as a script is a thin
wrapper that executes them through the parallel experiment runner and
persists one ``BENCH_<sweep>.json`` each.  Every named sweep runs even if
an earlier one fails (the exit status combines them), and the runner's
fault-tolerance flags pass straight through::

    PYTHONPATH=src python benchmarks/bench_hidden_normal.py --workers 2
    PYTHONPATH=src python benchmarks/bench_hidden_normal.py --resume --max-failures 3

The pytest-benchmark entries below measure the same instances with
wall-clock statistics per parameter point (``pytest benchmarks/
--benchmark-only``).
"""

import pytest

try:
    from benchmarks.conftest import attach_query_report
except ModuleNotFoundError:  # executed as a script: benchmarks/ is sys.path[0]
    from conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group
from repro.quantum.sampling import FourierSampler

DIHEDRAL_SIZES = [8, 32, 128, 512]


@pytest.mark.parametrize("n", DIHEDRAL_SIZES)
def test_rotation_subgroup_of_dihedral(benchmark, n, rng):
    """N = <r> in D_n: Abelian factor group Z_2; scaling in log |G|."""
    group = dihedral_semidirect(n)
    instance = HSPInstance.from_subgroup(group, [group.embed_normal((1,))])
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return find_hidden_normal_subgroup(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["group_order"] = 2 * n
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("p", [3, 5, 7])
def test_center_of_extraspecial_group(benchmark, p, rng):
    group = extraspecial_group(p)
    instance = HSPInstance.from_subgroup(group, group.center_generators())
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return find_hidden_normal_subgroup(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators)
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("p,q", [(7, 3), (31, 5), (127, 7)])
def test_normal_core_of_metacyclic_group(benchmark, p, q, rng):
    """N = Z_p hidden in Z_p : Z_q (solvable, Abelian factor group Z_q)."""
    group = metacyclic_group(p, q)
    instance = HSPInstance.from_subgroup(group, [group.embed_normal((1,))])
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return find_hidden_normal_subgroup(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["group_order"] = p * q
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("n", [4, 5, 6])
def test_alternating_group_inside_symmetric(benchmark, n, rng):
    """Permutation groups: N = A_n hidden in S_n."""
    group = symmetric_group(n)
    instance = HSPInstance.from_subgroup(group, alternating_group(n).generators())
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return find_hidden_normal_subgroup(group, instance.oracle.fresh_view(), sampler=sampler)

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["group_order"] = group.order()
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("quotient_order", [6, 10, 14])
def test_bounded_nonabelian_quotient(benchmark, quotient_order, rng):
    """The Schreier path: N = <r^d> in D_n with dihedral factor group of order 2d."""
    d = quotient_order // 2
    n = d * 11
    group = dihedral_semidirect(n)
    instance = HSPInstance.from_subgroup(group, [group.embed_normal((d,))])
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return find_hidden_normal_subgroup(
            group, instance.oracle.fresh_view(), sampler=sampler, quotient_bound=4 * quotient_order
        )

    result = benchmark(run)
    assert instance.verify(result.generators)
    benchmark.extra_info["quotient_order"] = quotient_order
    attach_query_report(benchmark, result.query_report)


SWEEPS = [
    "hidden-normal-dihedral",
    "hidden-normal-metacyclic",
    "hidden-normal-symmetric",
    "hidden-normal-extraspecial-center",
    "hidden-normal-bounded-quotient",
]


def main(argv=None) -> int:
    """Run the declared Theorem 8 sweeps through the experiment CLI."""
    from repro.experiments.cli import run_sweeps

    return run_sweeps(SWEEPS, argv, description=__doc__.splitlines()[0])


if __name__ == "__main__":
    raise SystemExit(main())
