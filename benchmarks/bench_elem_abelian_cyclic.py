"""E7 — Theorem 13, cyclic factor group: fully polynomial case.

Paper claim: for groups with an elementary Abelian normal 2-subgroup ``N``
(given by generators) and *cyclic* factor group, the HSP is solvable in
quantum polynomial time.  Two instance families:

* the Rötteler--Beth wreath products ``Z_2^k wr Z_2`` (``|G| = 2^{2k+1}``),
* the Section 6 affine-type matrix groups over GF(2) (``|G/N|`` = order of
  the invertible block).
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.groups.catalog import affine_gf2_instance, wreath_instance
from repro.quantum.sampling import FourierSampler


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_wreath_product_sweep(benchmark, k, rng):
    group, normal_gens = wreath_instance(k)
    hidden = [group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["log2_group_order"] = float(np.log2(group.order()))
    attach_query_report(benchmark, result.query_report)


@pytest.mark.parametrize("k", [2, 3, 4, 5])
def test_affine_gf2_sweep(benchmark, k, rng):
    group, normal_gens = affine_gf2_instance(k)
    hidden = [group.random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["translation_rank"] = len(normal_gens)
    attach_query_report(benchmark, result.query_report)


def test_wreath_subgroup_inside_base(benchmark, rng):
    """The easier sub-case H <= N (pure Simon structure)."""
    group, normal_gens = wreath_instance(3)
    hidden = [group.embed_normal(tuple(int(rng.integers(0, 2)) for _ in range(6)))]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return solve_hsp_elementary_abelian_two(
            group, instance.oracle.fresh_view(), normal_gens, sampler=sampler, cyclic_quotient=True
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    attach_query_report(benchmark, result.query_report)
