"""E11 — The quantum substrate on its own: QFT, period finding, order finding.

Substrate costs underpinning every solver: the mixed-radix QFT of the
state-vector backend (exponential in register size — hence the statevector /
analytic split), gate-level Shor period finding on small moduli, order
finding through the Abelian-HSP sampling machinery, and the Watrous-style
order computation modulo a normal subgroup.
"""

import numpy as np
import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.oracle import QueryCounter
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.perm import symmetric_group
from repro.groups.products import dihedral_semidirect
from repro.quantum.qft import qft_probabilities_of_coset
from repro.quantum.sampling import FourierSampler, SubgroupStructureOracle
from repro.quantum.shor import order_via_period_sampling, quantum_factor, shor_period_gate_level
from repro.quantum.watrous import order_modulo_subgroup


@pytest.mark.parametrize("log_dim", [8, 12, 16])
def test_qft_coset_distribution(benchmark, log_dim):
    """Dense mixed-radix QFT cost grows linearly in the register dimension."""
    dim = 1 << log_dim
    indicator = np.zeros(dim)
    indicator[::16] = 1.0

    result = benchmark(qft_probabilities_of_coset, indicator)
    assert np.isclose(result.sum(), 1.0)
    benchmark.extra_info["dimension"] = dim


@pytest.mark.parametrize("a,n", [(2, 15), (7, 15), (2, 21)])
def test_gate_level_shor_period(benchmark, a, n, rng):
    result = benchmark.pedantic(shor_period_gate_level, args=(a, n, rng), rounds=1, iterations=1)
    assert pow(a, result, n) == 1


def test_gate_level_shor_factoring(benchmark, rng):
    result = benchmark.pedantic(quantum_factor, args=(15, rng), rounds=1, iterations=1)
    assert result == {3: 1, 5: 1}


@pytest.mark.parametrize("order_bits", [8, 16, 24])
def test_order_finding_via_sampling(benchmark, order_bits, rng):
    """Order finding phrased as an Abelian HSP over Z_E (E = exponent bound)."""
    modulus = (1 << order_bits) - 1
    group = AbelianTupleGroup([modulus])
    element = (3,)
    sampler = FourierSampler(backend="analytic", rng=rng)
    counter = QueryCounter()

    def run():
        return order_via_period_sampling(group, element, modulus, sampler, counter)

    order = benchmark(run)
    assert group.is_identity(group.power(element, order))
    attach_query_report(benchmark, counter.snapshot())


@pytest.mark.parametrize("backend", ["analytic", "statevector"])
def test_sampling_round_cost(benchmark, backend, rng):
    """Cost of a single Fourier-sampling round under each backend."""
    oracle = SubgroupStructureOracle([64, 64], [(8, 16)])
    sampler = FourierSampler(backend=backend, rng=rng)

    benchmark(sampler.sample, oracle, 1)
    benchmark.extra_info["backend"] = backend


@pytest.mark.parametrize("n", [32, 128, 512])
def test_watrous_order_modulo_subgroup(benchmark, n, rng):
    """Order of a coset in G/N for growing dihedral groups (Theorem 10 substrate)."""
    group = dihedral_semidirect(n)
    normal = [group.embed_normal((1,))]
    element = group.multiply(group.embed_normal((3,)), group.embed_quotient((1,)))
    counter = QueryCounter()

    def run():
        return order_modulo_subgroup(group, element, normal, counter)

    order = benchmark(run)
    assert order == 2
    attach_query_report(benchmark, counter.snapshot())
