"""E6 — HSP in extraspecial p-groups (Corollary 12).

Paper claim: polynomial in ``input size + p``.  The sweep grows ``p`` (the
commutator/center order) and, separately, the rank of the generalised
Heisenberg group at fixed ``p`` (growing ``log |G|`` with ``p`` fixed).

The sweep definitions live in :mod:`repro.experiments.workloads` (the
``extraspecial-*`` entries); running this file as a script is a thin wrapper
that executes them through the parallel experiment runner and persists one
``BENCH_<sweep>.json`` each.  Every named sweep runs even if an earlier one
fails (the exit status combines them), and the runner's fault-tolerance
flags pass straight through::

    PYTHONPATH=src python benchmarks/bench_extraspecial.py --workers 2
    PYTHONPATH=src python benchmarks/bench_extraspecial.py --resume --max-failures 3

The pytest-benchmark entries below measure the same instances with
wall-clock statistics per parameter point.
"""

import pytest

try:
    from benchmarks.conftest import attach_query_report
except ModuleNotFoundError:  # executed as a script: benchmarks/ is sys.path[0]
    from conftest import attach_query_report
from repro.blackbox.instances import HSPInstance
from repro.core.solver import solve_hsp
from repro.groups.extraspecial import extraspecial_group
from repro.quantum.sampling import FourierSampler


@pytest.mark.parametrize("p", [3, 5, 7, 11, 13])
def test_extraspecial_prime_sweep(benchmark, p, rng):
    group = extraspecial_group(p)
    # One random generator keeps |H| (and hence the cost of *constructing*
    # the hiding oracle) small, so the measured time is dominated by the
    # solver's own |G'| = p dependence.
    hidden = [group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(
        group, hidden, promises={"commutator_elements": group.commutator_subgroup_elements()}
    )
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        fresh = HSPInstance(
            group=instance.group,
            oracle=instance.oracle.fresh_view(),
            hidden_generators=instance.hidden_generators,
            promises=instance.promises,
        )
        return solve_hsp(fresh, sampler=sampler)

    solution = benchmark(run)
    assert instance.verify(solution.generators or [group.identity()])
    benchmark.extra_info["p"] = p
    benchmark.extra_info["group_order"] = p**3
    attach_query_report(benchmark, solution.query_report)


def test_extraspecial_two_generator_subgroup(benchmark, rng):
    """A larger hidden subgroup (two random generators) at p = 5."""
    group = extraspecial_group(5)
    hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(
        group, hidden, promises={"commutator_elements": group.commutator_subgroup_elements()}
    )
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        fresh = HSPInstance(
            group=instance.group,
            oracle=instance.oracle.fresh_view(),
            hidden_generators=instance.hidden_generators,
            promises=instance.promises,
        )
        return solve_hsp(fresh, sampler=sampler)

    solution = benchmark(run)
    assert instance.verify(solution.generators or [group.identity()])
    attach_query_report(benchmark, solution.query_report)


@pytest.mark.parametrize("rank", [1, 2, 3])
def test_generalised_heisenberg_rank_sweep(benchmark, rank, rng):
    """H_3(n) of order 3^{2n+1}: p fixed, log|G| grows with the rank."""
    group = extraspecial_group(3, n=rank)
    hidden = [group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        from repro.core.small_commutator import solve_hsp_small_commutator

        return solve_hsp_small_commutator(
            group,
            instance.oracle.fresh_view(),
            sampler=sampler,
            commutator_elements=group.commutator_subgroup_elements(),
        )

    result = benchmark(run)
    assert instance.verify(result.generators or [group.identity()])
    benchmark.extra_info["group_order"] = 3 ** (2 * rank + 1)
    attach_query_report(benchmark, result.query_report)


SWEEPS = [
    "extraspecial-prime",
    "extraspecial-two-generators",
    "extraspecial-heisenberg",
]


def main(argv=None) -> int:
    """Run the declared Corollary 12 sweeps through the experiment CLI."""
    from repro.experiments.cli import run_sweeps

    return run_sweeps(SWEEPS, argv, description=__doc__.splitlines()[0])


if __name__ == "__main__":
    raise SystemExit(main())
