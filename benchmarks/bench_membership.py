"""E3 — Constructive membership in Abelian subgroups (Theorem 6).

Paper claim: the constructive membership test in Abelian subgroups of a
black-box group with unique encoding runs in quantum polynomial time (it is
the new hypothesis the paper supplies to the Beals--Babai machinery).  The
sweep grows the ambient group and the subgroup rank; time should stay
polynomial in ``log |G|``.
"""

import pytest

from benchmarks.conftest import attach_query_report
from repro.blackbox.oracle import QueryCounter
from repro.core.constructive_membership import constructive_membership
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import symmetric_group
from repro.quantum.sampling import FourierSampler

ABELIAN_CASES = {
    "log12": [2**6, 3**4],
    "log24": [2**12, 3**8],
    "log40": [2**20, 3**12, 5**8],
}


@pytest.mark.parametrize("label", sorted(ABELIAN_CASES))
def test_membership_in_abelian_groups(benchmark, label, rng):
    moduli = ABELIAN_CASES[label]
    group = AbelianTupleGroup(moduli)
    generators = [group.module.random_element(rng) for _ in range(3)]
    coefficients = [int(rng.integers(0, 50)) for _ in range(3)]
    target = group.identity()
    for c, g in zip(coefficients, generators):
        target = group.multiply(target, group.power(g, c))
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        counter = QueryCounter()
        exponents = constructive_membership(group, generators, target, sampler=sampler, counter=counter)
        return exponents, counter

    exponents, counter = benchmark(run)
    assert exponents is not None
    attach_query_report(benchmark, counter.snapshot())


def test_membership_in_cyclic_permutation_subgroup(benchmark, rng):
    """Expressing a power of an n-cycle in S_n (constructive discrete log)."""
    group = symmetric_group(12)
    cycle = tuple(list(range(1, 12)) + [0])
    target = group.power(cycle, 7)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return constructive_membership(group, [cycle], target, sampler=sampler)

    exponents = benchmark(run)
    assert exponents is not None and exponents[0] % 12 == 7


def test_membership_in_center_of_extraspecial_group(benchmark, rng):
    group = extraspecial_group(7)
    z = ((0,), (0,), 1)
    target = group.power(z, 4)
    sampler = FourierSampler(backend="auto", rng=rng)

    def run():
        return constructive_membership(group, [z], target, sampler=sampler)

    exponents = benchmark(run)
    assert exponents is not None and exponents[0] % 7 == 4


def test_membership_negative_certificate(benchmark, rng):
    """Non-membership is detected (the kernel has no unit last coordinate)."""
    group = AbelianTupleGroup([2**10, 3**6])
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        return constructive_membership(group, [(2, 0), (0, 3)], (1, 1), sampler=sampler)

    assert benchmark(run) is None
