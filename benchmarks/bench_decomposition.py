"""E2 — Cheung--Mosca decomposition of Abelian groups (Theorem 1 substrate).

Paper claim: an Abelian black-box group given by generators decomposes into
cyclic factors of prime-power order in quantum polynomial time.  The sweep
grows the group order and the number of generators; time should stay
polynomial in ``log |G|`` and the number of generators.
"""

import pytest

from benchmarks.conftest import attach_query_report
from repro.groups.abelian import AbelianTupleGroup
from repro.hsp.decomposition import decompose_abelian_group
from repro.quantum.sampling import FourierSampler

CASES = {
    "order_1e2": [4, 25],
    "order_1e4": [16, 81, 25],
    "order_1e7": [2**10, 3**6, 5**4],
    "order_1e12": [2**16, 3**10, 5**8, 7**4],
}


@pytest.mark.parametrize("label", sorted(CASES))
def test_decomposition_scaling(benchmark, label, rng):
    moduli = CASES[label]
    group = AbelianTupleGroup(moduli)
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        return decompose_abelian_group(group, sampler=sampler)

    decomposition = benchmark(run)
    assert decomposition.group_order == group.order()
    attach_query_report(benchmark, decomposition.query_report)


@pytest.mark.parametrize("generators", [2, 4, 8])
def test_decomposition_redundant_generators(benchmark, generators, rng):
    """More (redundant) generators grow the relation lattice, not the group."""
    group = AbelianTupleGroup([2**8, 3**5])
    gens = [group.module.random_element(rng) for _ in range(generators)]
    sampler = FourierSampler(backend="analytic", rng=rng)

    def run():
        return decompose_abelian_group(group, generators=gens, sampler=sampler)

    decomposition = benchmark(run)
    assert decomposition.group_order >= 1
    attach_query_report(benchmark, decomposition.query_report)
