"""Scaling benchmark: dense-kernel engine vs the pre-kernel engine path.

The dense-id refactor makes int64 ids the currency from the hiding oracle
down to the linear algebra: Cayley tables are bulk-filled by per-family
``DenseKernel`` batch arithmetic (no scalar ``multiply`` in the fill loops),
coset labels are computed a block of ids at a time, and groups past the
table limit get a table-free ``"kernel"`` engine mode.  This benchmark
commits the resulting trajectory as ``BENCH_scaling.json``: wall-clock and
query totals versus ``|G|`` for three group families, with the dihedral
family reaching ``|G| = 16384`` and the extraspecial family ``|G| = 24389``
— an order of magnitude beyond the largest group in any other committed
BENCH.

Methodology — cold end-to-end runs, not steady state: every run builds a
fresh instance (fresh group, fresh engine, fresh oracle caches) and solves
it, so the measurement includes exactly the table-fill and labelling work
the dense kernels accelerate.  The baseline runs under
:func:`repro.groups.engine.kernel_disabled`, which reproduces the
pre-kernel engine byte-for-byte (lazy scalar fills, sparse mode past the
table limit); everything else — seeds, batch sampler, engine use — is
identical.  Query accounting must not depend on the route: the benchmark
asserts the per-row query reports of the two configurations are equal and
stores the shared report in the row.

Run directly::

    PYTHONPATH=src python benchmarks/bench_scaling.py [--smoke] [--out DIR]

``--smoke`` restricts each family to its first (smallest) grid point — the
subset the CI ``scaling-smoke`` job re-measures and diffs against the
committed file (query columns only; wall-clock is machine-dependent).

Also exposed as a pytest-style check (``test_scaling_speedup``) asserting
the dense path wins by >= 3x on the aggregate over the largest points.
"""

from __future__ import annotations

import argparse
import time
from contextlib import nullcontext
from typing import Dict, List, Tuple

import numpy as np

from repro.core.solver import solve_hsp
from repro.experiments.registry import build_instance
from repro.experiments.results import write_bench
from repro.experiments.specs import DEFAULT_SEED, derive_seed
from repro.experiments.workloads import SCALING_AXES
from repro.groups.engine import kernel_disabled
from repro.quantum.sampling import FourierSampler

SEED = DEFAULT_SEED


def scaling_points(smoke: bool = False) -> List[Tuple[str, str, Dict[str, object]]]:
    """``(label, family, params)`` rows from the declared scaling axes."""
    rows: List[Tuple[str, str, Dict[str, object]]] = []
    for axis in SCALING_AXES:
        grid: Dict[str, List[object]] = dict(axis["grid"])  # type: ignore[arg-type]
        ((key, values),) = grid.items()
        for value in values[:1] if smoke else values:
            rows.append((str(axis["label"]), str(axis["family"]), {key: value}))
    return rows


def _solve_cold(family: str, params: Dict[str, object]):
    """One cold run: fresh instance (fresh group/engine/caches), then solve."""
    instance = build_instance(family, params, np.random.default_rng(derive_seed(SEED, 0)))
    sampler = FourierSampler(backend="auto", rng=np.random.default_rng(SEED), batch=True)
    solution = solve_hsp(instance, sampler=sampler, use_engine=True)
    solved = instance.verify(solution.generators or [instance.group.identity()])
    assert solved, f"{family} {params} returned a wrong subgroup"
    order = instance.group.group.order()
    return solution, instance.query_report(), int(order)


def bench_point(
    family: str, params: Dict[str, object], repeats: int = 2
) -> Dict[str, object]:
    """Cold best-of-``repeats`` timings of one grid point in both configurations."""
    timings: Dict[str, float] = {}
    reports: Dict[str, Dict[str, int]] = {}
    order = 0
    strategy = ""
    for config in ("baseline", "dense"):
        context = kernel_disabled() if config == "baseline" else nullcontext()
        best = float("inf")
        with context:
            for _ in range(repeats):
                start = time.perf_counter()
                solution, report, order = _solve_cold(family, params)
                best = min(best, time.perf_counter() - start)
            strategy = solution.strategy
        timings[config] = best
        reports[config] = report
    assert reports["baseline"] == reports["dense"], (
        f"query accounting diverged on {family} {params}: "
        f"baseline={reports['baseline']} dense={reports['dense']}"
    )
    return {
        "family": family,
        "params": {k: list(v) if isinstance(v, tuple) else v for k, v in params.items()},
        "group_order": order,
        "strategy": strategy,
        "baseline_seconds": timings["baseline"],
        "dense_seconds": timings["dense"],
        "speedup": timings["baseline"] / timings["dense"],
        "query_report": reports["dense"],
    }


def run_all(smoke: bool = False, repeats: int = 2) -> List[Dict[str, object]]:
    return [bench_point(family, params, repeats=repeats) for _, family, params in scaling_points(smoke)]


def aggregate_speedup(rows: List[Dict[str, object]]) -> float:
    """Aggregate speedup over the largest point of each family."""
    largest: Dict[str, Dict[str, object]] = {}
    for row in rows:
        family = str(row["family"])
        if family not in largest or row["group_order"] > largest[family]["group_order"]:
            largest[family] = row
    top = list(largest.values())
    return sum(float(r["baseline_seconds"]) for r in top) / sum(
        float(r["dense_seconds"]) for r in top
    )


def persist(rows: List[Dict[str, object]], out_dir: str = ".") -> str:
    """Write the trajectory as ``BENCH_scaling.json``."""
    payload = {
        "benchmark": "scaling-dense-vs-prekernel",
        "seed": SEED,
        "rows": rows,
        "aggregate": {"largest_point_speedup": aggregate_speedup(rows)},
    }
    return write_bench(out_dir, "scaling", payload)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="first grid point per family only")
    parser.add_argument("--out", default=".", help="directory for BENCH_scaling.json")
    parser.add_argument("--repeats", type=int, default=2, help="cold runs per configuration")
    args = parser.parse_args()
    rows = run_all(smoke=args.smoke, repeats=args.repeats)
    print(f"{'family':<20} {'|G|':>7} {'strategy':<22} {'baseline':>10} {'dense':>10} {'speedup':>8}")
    for row in rows:
        print(
            f"{row['family']:<20} {row['group_order']:>7} {row['strategy']:<22} "
            f"{float(row['baseline_seconds']) * 1e3:>8.1f}ms {float(row['dense_seconds']) * 1e3:>8.1f}ms "
            f"{float(row['speedup']):>7.1f}x"
        )
    path = persist(rows, args.out)
    print(f"\naggregate speedup over largest points: {aggregate_speedup(rows):.1f}x (target: >= 3x)")
    print(f"wrote {path}")


def test_scaling_speedup():
    """The dense path must beat the pre-kernel path >= 3x on the largest points."""
    aggregate = aggregate_speedup(run_all())
    assert aggregate >= 3.0, f"aggregate speedup {aggregate:.2f}x below target"


if __name__ == "__main__":
    main()
