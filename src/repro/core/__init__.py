"""The paper's algorithms (Ivanyos--Magniez--Santha 2001).

This package contains the primary contribution of the reproduced paper: the
quantum implementations of the Beals--Babai black-box group tasks and the
hidden subgroup solvers built on top of them.

===========================  =============================================
Module                       Paper result
===========================  =============================================
``constructive_membership``  Theorem 6(b): constructive membership in
                             Abelian subgroups via the Abelian HSP.
``presentation``             Presentations of Abelian factor groups and the
                             relator bookkeeping used by Theorem 8.
``factor_group``             Theorems 7 and 10: working in ``G/N`` when the
                             normal subgroup is hidden (secondary encoding)
                             or given by generators (Watrous coset states).
``hidden_normal``            Theorem 8: finding hidden *normal* subgroups
                             (solvable groups, permutation groups).
``small_commutator``         Theorem 11 and Corollary 12: groups with small
                             commutator subgroup; extraspecial p-groups.
``elementary_abelian_two``   Theorem 13: groups with an elementary Abelian
                             normal 2-subgroup of small index or with
                             cyclic factor group.
``beals_babai``              Corollary 5: the toolkit facade (orders,
                             decompositions, Sylow data, presentations).
``solver``                   Strategy dispatcher ``solve_hsp``.
===========================  =============================================
"""

from repro.core.constructive_membership import (
    abelian_subgroup_membership,
    constructive_membership,
)
from repro.core.presentation import AbelianPresentation
from repro.core.factor_group import GeneratedQuotient, HiddenQuotient
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.core.small_commutator import solve_hsp_small_commutator
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.core.beals_babai import BlackBoxToolkit
from repro.core.solver import HSPSolution, solve_hsp

__all__ = [
    "constructive_membership",
    "abelian_subgroup_membership",
    "AbelianPresentation",
    "HiddenQuotient",
    "GeneratedQuotient",
    "find_hidden_normal_subgroup",
    "solve_hsp_small_commutator",
    "solve_hsp_elementary_abelian_two",
    "BlackBoxToolkit",
    "HSPSolution",
    "solve_hsp",
]
