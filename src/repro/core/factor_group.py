"""Working in factor groups ``G/N`` (Theorems 7 and 10).

The paper distinguishes two situations in which the Beals--Babai machinery
must run on a factor group rather than on ``G`` itself:

* ``N`` is a *hidden* normal subgroup, available only through the hiding
  function ``f`` (Theorem 7).  Elements of ``G`` encode their cosets — a
  non-unique encoding whose identity test is ``f(a) = f(b)`` — and the
  quantum subroutines (order finding, constructive membership) go through
  the function ``phi(...) = f(h_1^{a_1} ... g^{-a})``.

* ``N`` is a normal subgroup *given by generators* that is solvable or of
  polynomial size (Theorem 10).  Watrous' machinery supplies membership
  tests in ``N`` and coset superpositions ``|gN>``; the classical shadow in
  this reproduction is a membership tester for ``N`` and the induced coset
  identity test (see :mod:`repro.quantum.watrous`).

Both wrappers expose the same small interface used by the paper's solvers:
coset identity tests, orders modulo ``N``, Abelianity detection, and Abelian
presentations of the factor group.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.blackbox.oracle import HidingOracle, QueryCounter
from repro.core.presentation import AbelianPresentation
from repro.groups.base import FiniteGroup
from repro.hsp.abelian import solve_abelian_hsp
from repro.hsp.oracles import hidden_power_product_oracle
from repro.linalg.modular import element_order_from_exponent, factorint, lcm
from repro.quantum.sampling import FourierSampler, TupleFunctionOracle
from repro.quantum.watrous import normal_subgroup_membership, order_modulo_subgroup

__all__ = ["HiddenQuotient", "GeneratedQuotient"]

Vector = Tuple[int, ...]


class _QuotientBase:
    """Shared logic of the two factor-group wrappers."""

    group: FiniteGroup
    counter: QueryCounter

    # -- primitives supplied by the subclasses --------------------------------
    def in_kernel(self, element) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def coset_equal(self, a, b) -> bool:
        """Identity test of ``G/N`` (the non-unique encoding of the paper)."""
        return self.in_kernel(self.group.multiply(self.group.inverse(a), b))

    # -- derived operations -----------------------------------------------------
    def order_modulo(self, element, exponent: Optional[int] = None) -> int:
        """Order of ``gN`` in ``G/N``: smallest ``k > 0`` with ``g^k`` in ``N``.

        Computed by dividing primes out of a known multiple of the order (the
        order of ``g`` in ``G``), each divisibility check being one coset
        identity test — the classical shadow of computing the period of
        ``k -> |g^k N>`` (Theorem 10) or of ``k -> f(g^k)`` (Theorem 7).
        """
        self.counter.bump("order_oracle_calls")
        bound = exponent if exponent is not None else self.group.element_order(element)
        return element_order_from_exponent(
            lambda k: self.group.power(element, k),
            self.in_kernel,
            bound,
        )

    def is_abelian(self, generators: Optional[Sequence] = None) -> bool:
        """Whether ``G/N`` is Abelian: all generator commutators lie in ``N``."""
        gens = list(generators) if generators is not None else self.group.generators()
        for i, a in enumerate(gens):
            for b in gens[i + 1 :]:
                if not self.in_kernel(self.group.commutator(a, b)):
                    return False
        return True

    def abelian_presentation(
        self,
        sampler: Optional[FourierSampler] = None,
        generators: Optional[Sequence] = None,
        max_enumeration: int = 1 << 18,
        confidence: Optional[int] = None,
    ) -> AbelianPresentation:
        """A presentation of the Abelian factor group ``G/N`` (Theorem 7).

        Computes the orders of the generators modulo ``N`` and the kernel of
        the exponent map by one Abelian HSP run; the relators are the kernel
        generators plus the generator commutators.  ``confidence`` overrides
        the stopping rule of that Abelian HSP run (``None`` keeps the
        default).
        """
        sampler = sampler if sampler is not None else FourierSampler()
        gens = [g for g in (generators if generators is not None else self.group.generators()) if not self.in_kernel(g)]
        if not gens:
            return AbelianPresentation(generators=[], orders=[], relation_vectors=[])
        orders = [self.order_modulo(g) for g in gens]
        oracle = self._exponent_map_oracle(gens, orders, max_enumeration)
        kwargs = {} if confidence is None else {"confidence": int(confidence)}
        kernel = solve_abelian_hsp(oracle, sampler=sampler, **kwargs)
        return AbelianPresentation(generators=gens, orders=orders, relation_vectors=list(kernel.generators))

    def _exponent_map_oracle(self, gens: Sequence, orders: Sequence[int], max_enumeration: int):  # pragma: no cover - abstract
        raise NotImplementedError


class HiddenQuotient(_QuotientBase):
    """``G/N`` for a normal subgroup hidden by the function ``f`` (Theorem 7)."""

    def __init__(self, group: FiniteGroup, oracle: HidingOracle, counter: Optional[QueryCounter] = None):
        self.group = group
        self.oracle = oracle
        self.counter = counter if counter is not None else oracle.counter
        self._identity_label = None

    def identity_label(self):
        if self._identity_label is None:
            self._identity_label = self.oracle(self.group.identity())
        return self._identity_label

    def in_kernel(self, element) -> bool:
        return self.oracle(element) == self.identity_label()

    def coset_equal(self, a, b) -> bool:
        # With a hiding function the identity test needs no group operation:
        # f is constant exactly on the cosets of N.
        return self.oracle(a) == self.oracle(b)

    def _exponent_map_oracle(self, gens: Sequence, orders: Sequence[int], max_enumeration: int) -> TupleFunctionOracle:
        return hidden_power_product_oracle(
            self.group,
            self.oracle,
            gens,
            orders,
            counter=self.counter,
            description="exponent map of G/N (hidden N)",
            max_enumeration=max_enumeration,
        )


class GeneratedQuotient(_QuotientBase):
    """``G/N`` for a normal subgroup given by generators (Theorem 10).

    ``N`` must be solvable or of polynomial size — in this reproduction that
    translates to: a membership test for ``N`` must be available through
    :func:`repro.groups.subgroup.make_membership_tester` (exact for Abelian
    and permutation subgroups, enumeration for small generic ones), standing
    in for Watrous' quantum membership test.
    """

    def __init__(self, group: FiniteGroup, normal_generators: Sequence, counter: Optional[QueryCounter] = None):
        self.group = group
        self.normal_generators = list(normal_generators)
        self.counter = counter if counter is not None else QueryCounter()
        self._member = normal_subgroup_membership(group, self.normal_generators, self.counter)

    def in_kernel(self, element) -> bool:
        return self._member(element)

    def _exponent_map_oracle(self, gens: Sequence, orders: Sequence[int], max_enumeration: int) -> TupleFunctionOracle:
        def label(alpha: Vector):
            product = self.group.identity()
            for element, exponent in zip(gens, alpha):
                product = self.group.multiply(product, self.group.power(element, int(exponent)))
            # The "value" of the coset state |g^alpha N| is its canonical
            # label: we use membership-driven reduction against a fixed list
            # of previously seen representatives, which is exactly the
            # information content of comparing coset states for equality.
            return self._coset_label(product)

        return TupleFunctionOracle(
            orders,
            label,
            counter=self.counter,
            description="exponent map of G/N (generated N)",
            max_enumeration=max_enumeration,
        )

    # -- canonical coset labels ---------------------------------------------------
    def _coset_label(self, element):
        cache: Dict[bytes, object] = getattr(self, "_label_cache", None)
        if cache is None:
            cache = {}
            self._label_cache = cache
            self._representatives: List = []
        for index, representative in enumerate(self._representatives):
            if self.coset_equal(representative, element):
                return index
        self._representatives.append(element)
        return len(self._representatives) - 1

    # -- Theorem 13 helper: cyclic factor groups ------------------------------------
    def cyclic_prime_power_representatives(
        self,
        generators: Optional[Sequence] = None,
    ) -> List:
        """The set ``V`` of the cyclic case of Theorem 13.

        Assuming ``G/N`` is cyclic, returns coset representatives
        ``{x_p^{p^j}}`` such that for every subgroup ``M <= G/N`` the set
        contains a generating set of ``M`` (one generator for each of its
        Sylow subgroups).  ``|V| = O(log |G/N|)``.
        """
        gens = [g for g in (generators if generators is not None else self.group.generators()) if not self.in_kernel(g)]
        if not gens:
            return []
        orders = [self.order_modulo(g) for g in gens]
        quotient_order = 1
        for o in orders:
            quotient_order = lcm(quotient_order, o)
        # Assemble an element whose image generates the cyclic group G/N: for
        # every maximal prime power p^e | |G/N| pick a generator whose order
        # is divisible by p^e and keep its p-part.
        w = self.group.identity()
        for prime, exponent in sorted(factorint(quotient_order).items()):
            target = prime**exponent
            source = next(g for g, o in zip(gens, orders) if o % target == 0)
            source_order = orders[gens.index(source)]
            w = self.group.multiply(w, self.group.power(source, source_order // target))
        representatives: List = []
        for prime, exponent in sorted(factorint(quotient_order).items()):
            sylow_generator = self.group.power(w, quotient_order // (prime**exponent))
            power = sylow_generator
            for _ in range(exponent):
                representatives.append(power)
                power = self.group.power(power, prime)
        return representatives

    def quotient_order_bound(self, generators: Optional[Sequence] = None) -> int:
        """The least common multiple of the generator orders modulo ``N``.

        Equals ``|G/N|`` when the factor group is cyclic; in general it is a
        divisor of the exponent of ``G/N``.
        """
        gens = list(generators) if generators is not None else self.group.generators()
        bound = 1
        for g in gens:
            if not self.in_kernel(g):
                bound = lcm(bound, self.order_modulo(g))
        return bound
