"""The HSP in groups with an elementary Abelian normal 2-subgroup (Theorem 13).

Setting: ``G`` is a black-box group with unique encoding and ``N`` is a
normal elementary Abelian 2-subgroup given by generators (part of the input).
Theorem 13: the HSP in ``G`` is solvable in quantum time polynomial in
``input size + |G/N|``; when ``G/N`` is *cyclic* the running time is fully
polynomial.  The class covers the wreath products ``Z_2^k wr Z_2`` of
Rötteler--Beth and the characteristic-2 affine matrix groups of the paper's
Section 6.

The algorithm (proof of Theorem 13), for a hidden subgroup ``H``:

1. ``H ∩ N`` is found by an Abelian HSP run over ``N`` (Theorem 3); because
   ``N`` is given by ``m`` generators of order two this is a Simon-style
   instance over ``Z_2^m``.
2. A set ``V`` of coset representatives of ``N`` is built such that for every
   subgroup ``M <= G/N`` (in particular ``M = HN/N``) ``V`` contains a
   generating set of ``M``:

   * cyclic ``G/N``: ``V = {x_p^{p^j}}`` for generators ``x_p`` of the Sylow
     subgroups of ``G/N`` (found via the Theorem 10 toolkit) —
     ``|V| = O(log |G/N|)``;
   * general case: ``V`` is a full transversal of ``N`` computed by
     breadth-first search with the membership test of ``N`` — ``|V| = |G/N|``.

3. For every ``z in V \\ N`` the function ``F(i, x) = f(x z^i)`` on
   ``Z_2 x N`` hides either ``{0} x (H ∩ N)`` (when ``zN`` misses ``H``) or
   its extension by ``(1, u)`` with ``u in zH ∩ N``; a Simon-style run
   recovers the generator of type ``(1, u)`` if it exists and yields the
   element ``u^{-1} z`` of ``H``.
4. The collected elements together with ``H ∩ N`` generate ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blackbox.oracle import HidingOracle, QueryCounter
from repro.core.factor_group import GeneratedQuotient
from repro.groups.base import FiniteGroup, GroupError
from repro.hsp.abelian import solve_abelian_hsp
from repro.obs import span as obs_span
from repro.quantum.sampling import FourierSampler, TupleFunctionOracle

__all__ = ["ElementaryAbelianTwoResult", "solve_hsp_elementary_abelian_two"]

Vector = Tuple[int, ...]


@dataclass
class ElementaryAbelianTwoResult:
    """Outcome of the Theorem 13 solver."""

    generators: List
    intersection_generators: List = field(default_factory=list)
    coset_generators: List = field(default_factory=list)
    representatives_used: int = 0
    cyclic_path: bool = False
    query_report: Dict[str, int] = field(default_factory=dict)


def _validate_normal_subgroup(group: FiniteGroup, normal_generators: Sequence) -> None:
    # Batched like the Theorem 8/11 scans: the squares and the commuting
    # checks are each one bulk product call, which counts exactly the
    # multiplications of the scalar double loop (one per square, two per
    # unordered pair) and is Cayley-engine accelerated when available.  On a
    # *failing* validation the whole batch is counted before the GroupError,
    # where the scalar loop stopped at the first offender — the run aborts
    # either way, so only success-path totals are contractual.
    gens = list(normal_generators)
    if not gens:
        return
    squares = group.multiply_many(gens, gens)
    for square in squares:
        if not group.is_identity(square):
            raise GroupError("Theorem 13 requires every generator of N to have order dividing 2")
    lefts = [a for i, a in enumerate(gens) for _ in gens[i + 1 :]]
    rights = [b for i, _ in enumerate(gens) for b in gens[i + 1 :]]
    if not lefts:
        return
    forward = group.multiply_many(lefts, rights)
    backward = group.multiply_many(rights, lefts)
    for ab, ba in zip(forward, backward):
        if not group.equal(ab, ba):
            raise GroupError("Theorem 13 requires N to be Abelian")


def solve_hsp_elementary_abelian_two(
    group: FiniteGroup,
    oracle: HidingOracle,
    normal_generators: Sequence,
    sampler: Optional[FourierSampler] = None,
    counter: Optional[QueryCounter] = None,
    cyclic_quotient: Optional[bool] = None,
    quotient_bound: int = 1 << 12,
    max_enumeration: int = 1 << 18,
    validate: bool = True,
) -> ElementaryAbelianTwoResult:
    """Solve the HSP hidden by ``oracle`` given the normal 2-subgroup ``N`` (Theorem 13).

    Parameters
    ----------
    normal_generators:
        Generators of the elementary Abelian normal 2-subgroup ``N`` (part of
        the input, as in the paper).
    cyclic_quotient:
        ``True`` to use the fully polynomial cyclic-factor-group path,
        ``False`` to force the general transversal path, ``None`` to detect:
        the cyclic path is attempted when the images of the group generators
        commute modulo ``N``.
    quotient_bound:
        Cap on ``|G/N|`` for the general path (the theorem's running time is
        polynomial in this quantity).
    """
    sampler = sampler if sampler is not None else FourierSampler()
    counter = counter if counter is not None else oracle.counter
    normal_generators = [n for n in normal_generators if not group.is_identity(n)]
    if validate:
        _validate_normal_subgroup(group, normal_generators)

    identity_label = oracle(group.identity())
    m = len(normal_generators)

    def embed(alpha: Sequence[int]):
        element = group.identity()
        for generator, bit in zip(normal_generators, alpha):
            if int(bit) % 2:
                element = group.multiply(element, generator)
        return element

    # -- step 1: H ∩ N (Simon-style run over Z_2^m) ---------------------------------
    with obs_span("elementary_abelian_two.intersection") as intersection_span:
        if m:
            base_oracle = TupleFunctionOracle(
                [2] * m,
                lambda alpha: oracle(embed(alpha)),
                counter=counter,
                description="Theorem 13: restriction of f to N",
                max_enumeration=max_enumeration,
            )
            base_result = solve_abelian_hsp(base_oracle, sampler=sampler)
            intersection = [embed(alpha) for alpha in base_result.generators]
            intersection = [x for x in intersection if not group.is_identity(x)]
        else:
            intersection = []
        intersection_span.add("generators", len(intersection))

    # -- step 2: coset representatives V -----------------------------------------------
    with obs_span("elementary_abelian_two.representatives") as representatives_span:
        quotient = GeneratedQuotient(group, normal_generators, counter=counter)
        use_cyclic = cyclic_quotient
        if use_cyclic is None:
            # Detection: the cyclic path is only sound when G/N really is cyclic.
            # Abelianity is checked on generator commutators; cyclicity is then
            # verified by testing that every generator image is a power of the
            # assembled maximal-order element (a scan of at most |G/N| coset
            # identity tests — the promise parameter avoids this cost entirely).
            use_cyclic = quotient.is_abelian() and _quotient_is_cyclic(group, quotient)
        if use_cyclic:
            representatives = quotient.cyclic_prime_power_representatives()
            cyclic_path = True
        else:
            representatives = _transversal(group, quotient, quotient_bound)
            cyclic_path = False
        representatives_span.add("representatives", len(representatives))
        representatives_span.set(cyclic=cyclic_path)

    # -- step 3: probe each representative's coset --------------------------------------
    coset_generators: List = []
    with obs_span("elementary_abelian_two.coset_probes") as probe_span:
        for z in representatives:
            if quotient.in_kernel(z):
                continue
            probe_span.add("probes")
            extended_oracle = TupleFunctionOracle(
                [2] + [2] * m,
                lambda alpha, _z=z: oracle(
                    group.multiply(embed(alpha[1:]), _z) if int(alpha[0]) % 2 else embed(alpha[1:])
                ),
                counter=counter,
                description="Theorem 13: Z_2 x N probe",
                max_enumeration=max_enumeration,
            )
            probe_result = solve_abelian_hsp(extended_oracle, sampler=sampler)
            for generator in probe_result.generators:
                if int(generator[0]) % 2 == 1:
                    u = embed(generator[1:])
                    candidate = group.multiply(group.inverse(u), z)
                    if oracle(candidate) == identity_label and not group.is_identity(candidate):
                        coset_generators.append(candidate)
                    break

    generators = coset_generators + intersection
    return ElementaryAbelianTwoResult(
        generators=generators,
        intersection_generators=intersection,
        coset_generators=coset_generators,
        representatives_used=len(representatives),
        cyclic_path=cyclic_path,
        query_report=counter.snapshot(),
    )


def _quotient_is_cyclic(group: FiniteGroup, quotient: GeneratedQuotient, scan_limit: int = 1 << 12) -> bool:
    """Whether the Abelian factor group ``G/N`` is cyclic.

    Builds the candidate generator ``w`` (product of maximal prime-power
    parts of the generator images) and checks that every generator image is a
    power of ``wN`` by scanning the at most ``|G/N|`` powers of ``w``.
    """
    gens = [g for g in group.generators() if not quotient.in_kernel(g)]
    if not gens:
        return True
    orders = [quotient.order_modulo(g) for g in gens]
    from repro.linalg.modular import lcm

    candidate_order = 1
    for o in orders:
        candidate_order = lcm(candidate_order, o)
    if candidate_order > scan_limit:
        return False
    representatives = quotient.cyclic_prime_power_representatives(generators=gens)
    if not representatives:
        return True
    w = representatives[0]
    # representatives[0] is the full Sylow generator for the largest prime
    # only; rebuild the maximal-order element explicitly instead.
    w = group.identity()
    from repro.linalg.modular import factorint

    for prime, exponent in sorted(factorint(candidate_order).items()):
        target = prime**exponent
        index = next(i for i, o in enumerate(orders) if o % target == 0)
        w = group.multiply(w, group.power(gens[index], orders[index] // target))
    powers = []
    current = group.identity()
    for _ in range(candidate_order):
        powers.append(current)
        current = group.multiply(current, w)
    for g in gens:
        if not any(quotient.coset_equal(g, p) for p in powers):
            return False
    return True


def _transversal(group: FiniteGroup, quotient: GeneratedQuotient, bound: int) -> List:
    """A full left transversal of ``N`` in ``G`` (general case of Theorem 13).

    Breadth-first search over the generators; a candidate opens a new coset
    iff it is not ``N``-equivalent to any representative found so far.  Cost
    ``O(|G/N|^2)`` membership tests, polynomial in the theorem's ``|G/N|``
    parameter.  Each BFS level computes its frontier-times-generators
    products in one ``multiply_many`` call — the same products, in the same
    (v-major, g-minor) order, as the scalar double loop, so query totals are
    unchanged; the short-circuiting coset-membership scans stay scalar for
    the same reason.
    """
    gens = group.generators()
    representatives: List = [group.identity()]
    frontier = [group.identity()]
    while frontier:
        next_frontier: List = []
        lefts = [v for v in frontier for _ in gens]
        rights = gens * len(frontier)
        candidates = group.multiply_many(lefts, rights)
        for candidate in candidates:
            if not any(quotient.coset_equal(candidate, w) for w in representatives):
                representatives.append(candidate)
                next_frontier.append(candidate)
                if len(representatives) > bound:
                    raise GroupError(f"|G/N| exceeds the bound {bound} supplied to the general path")
        frontier = next_frontier
    return representatives
