"""The top-level HSP solver: strategy selection over the paper's algorithms.

``solve_hsp`` inspects an :class:`~repro.blackbox.instances.HSPInstance` —
its group and the structural *promises* attached to it — and dispatches to
the appropriate algorithm:

=====================  ==========================================================
Strategy               When it is chosen
=====================  ==========================================================
``abelian``            the ambient group is Abelian (Theorem 3)
``elementary_abelian_two``  the instance promises generators of an elementary
                       Abelian normal 2-subgroup (Theorem 13)
``small_commutator``   the instance promises (or the solver finds) a small
                       commutator subgroup (Theorem 11 / Corollary 12)
``hidden_normal``      the instance promises the hidden subgroup is normal
                       (Theorem 8)
``classical``          explicit opt-in exhaustive baseline
``classical_adaptive`` explicit opt-in adaptive coset-sieve baseline
=====================  ==========================================================

Promise keys recognised in ``instance.promises``:

* ``"normal_generators"`` — generators of the elementary Abelian normal
  2-subgroup ``N`` (Theorem 13); optional ``"cyclic_quotient"`` (bool) and
  ``"quotient_bound"`` (int).
* ``"commutator_elements"`` / ``"commutator_bound"`` — the elements of ``G'``
  or a bound on ``|G'|`` (Theorem 11).
* ``"hidden_is_normal"`` — the hidden subgroup is normal (Theorem 8);
  optional ``"quotient_bound"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.blackbox.instances import HSPInstance
from repro.blackbox.oracle import BlackBoxGroup
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.core.small_commutator import solve_hsp_small_commutator
from repro.groups.base import FiniteGroup, GroupError
from repro.hsp.abelian import solve_hsp_in_abelian_group
from repro.hsp.baseline_classical import classical_adaptive_hsp, classical_exhaustive_hsp
from repro.obs import span as obs_span
from repro.quantum.sampling import FourierSampler

__all__ = ["HSPSolution", "solve_hsp"]


@dataclass
class HSPSolution:
    """The outcome of a top-level HSP solve.

    ``status`` is ``"ok"`` for a solve that produced a candidate (right or
    wrong — the caller verifies against the ground truth) and
    ``"no_convergence"`` for a noisy solve whose strategy failed gracefully:
    the dual-span accumulation never stabilised or the corrupted coset
    structure broke a structural invariant.  ``no_convergence`` solutions
    carry no generators; they are never silently presented as a subgroup.
    """

    generators: List
    strategy: str
    elapsed_seconds: float
    query_report: Dict[str, int] = field(default_factory=dict)
    details: Optional[object] = None
    status: str = "ok"

    def __iter__(self):
        return iter(self.generators)

    def to_json_dict(self, include_timing: bool = True) -> Dict[str, object]:
        """A JSON-safe, deterministic serialization of the solution.

        Generators are rendered through their canonical ``repr`` and sorted,
        so two runs that recover the same subgroup generators produce the
        same serialization regardless of discovery order; timing is the one
        machine-dependent field and can be excluded for byte-identity
        comparisons (the experiment harness stores it separately).
        """
        data: Dict[str, object] = {
            "strategy": self.strategy,
            "generators": sorted(repr(g) for g in self.generators),
            "query_report": {key: int(value) for key, value in sorted(self.query_report.items())},
        }
        if include_timing:
            data["elapsed_seconds"] = self.elapsed_seconds
        return data


def _base_group(instance: HSPInstance) -> FiniteGroup:
    group = instance.group
    return group.group if isinstance(group, BlackBoxGroup) else group


def _choose_strategy(instance: HSPInstance) -> str:
    promises = instance.promises
    if "normal_generators" in promises:
        return "elementary_abelian_two"
    base = _base_group(instance)
    if base.is_abelian():
        return "abelian"
    if "commutator_elements" in promises or "commutator_bound" in promises:
        return "small_commutator"
    if promises.get("hidden_is_normal"):
        return "hidden_normal"
    # Default attempt: Theorem 11 with a moderate bound on |G'| — this is the
    # broadest of the paper's unconditional results for unique encodings.
    return "small_commutator"


#: Every strategy :func:`solve_hsp` can dispatch to.
KNOWN_STRATEGIES = frozenset(
    {
        "abelian",
        "elementary_abelian_two",
        "small_commutator",
        "hidden_normal",
        "classical",
        "classical_adaptive",
    }
)

#: Strategies that consume the ``confidence`` stopping override — directly
#: (``abelian``) or through their Abelian-presentation subroutine
#: (``hidden_normal``).  Passing ``confidence`` to any other strategy is a
#: caller error and raises ``ValueError`` instead of being silently ignored.
CONFIDENCE_STRATEGIES = frozenset({"abelian", "hidden_normal"})


def solve_hsp(
    instance: HSPInstance,
    strategy: str = "auto",
    sampler: Optional[FourierSampler] = None,
    rng: Optional[np.random.Generator] = None,
    use_engine: bool = True,
    confidence: Optional[int] = None,
    noise=None,
) -> HSPSolution:
    """Solve a hidden subgroup instance with the appropriate paper algorithm.

    ``strategy`` may be ``"auto"`` (promise-driven dispatch), or one of
    ``"abelian"``, ``"elementary_abelian_two"``, ``"small_commutator"``,
    ``"hidden_normal"``, ``"classical"``, ``"classical_adaptive"``.
    ``use_engine=False`` stops the supporting strategies from *installing* a
    Cayley engine; an engine already installed on the group (e.g. during
    instance construction) keeps accelerating the batch APIs regardless.
    The true scalar baseline — instance construction included — is
    :func:`repro.groups.engine.engine_disabled`, which the experiment
    harness uses.  Query accounting is identical either way.

    ``confidence`` overrides the Fourier-sampling stopping rule of the
    Abelian HSP core (the number of consecutive non-enlarging samples
    required before stopping; failure probability ``<= 2^-confidence``).
    Only the ``abelian`` and ``hidden_normal`` strategies consume it (the
    latter through its Abelian-presentation subroutine); combining it with
    any other strategy raises ``ValueError`` rather than silently ignoring
    the request.  ``None`` keeps the defaults — small values deliberately
    trade success probability for rounds, which is what the
    success-vs-rounds statistics sweeps scan.

    ``noise`` declares that a corruption channel
    (:class:`repro.blackbox.noise.NoiseSpec`) is installed on the oracle or
    sampler.  A noisy solve is *termination-safe*: a strategy that raises on
    inconsistent oracle rows (spurious cosets, unsatisfiable presentations,
    a dual span that never stabilises) fails gracefully to
    ``status="no_convergence"`` with no generators, never crashing the run
    and never silently returning a wrong subgroup — callers verify any
    ``"ok"`` candidate against the uncorrupted ground truth
    (:meth:`~repro.blackbox.instances.HSPInstance.verify` uses concrete
    group arithmetic, not the oracle).  Without ``noise`` exceptions
    propagate unchanged.
    """
    sampler = sampler if sampler is not None else FourierSampler(rng=rng)
    with obs_span("solver.choose_strategy", requested=strategy) as choice_span:
        chosen = strategy if strategy != "auto" else _choose_strategy(instance)
        choice_span.set(strategy=chosen)
    if chosen not in KNOWN_STRATEGIES:
        raise GroupError(f"unknown strategy {chosen!r}")
    if confidence is not None and chosen not in CONFIDENCE_STRATEGIES:
        raise ValueError(
            f"confidence={confidence!r} is not supported by the {chosen!r} strategy; "
            f"only {sorted(CONFIDENCE_STRATEGIES)} consume the Fourier-sampling "
            "stopping confidence"
        )
    start = time.perf_counter()
    queries_before = instance.query_report()

    confidence_kwargs = {} if confidence is None else {"confidence": int(confidence)}
    status = "ok"

    with obs_span(f"solver.strategy.{chosen}", noisy=noise is not None) as strategy_span:
        try:
            generators, result = _dispatch(
                chosen, instance, sampler, use_engine, confidence_kwargs
            )
            if noise is not None and not getattr(result, "converged", True):
                generators, result, status = [], result, "no_convergence"
        except Exception:
            if noise is None:
                raise
            # Corrupted oracle rows legitimately break structural invariants
            # (spurious cosets past the quotient bound, orders that do not
            # divide the exponent, unsatisfiable relators).  Under a declared
            # noise channel that is the expected failure mode: report it as
            # no_convergence instead of crashing the run.
            generators, result, status = [], None, "no_convergence"
            strategy_span.set(no_convergence=True)
        for key, value in instance.query_report().items():
            delta = int(value) - int(queries_before.get(key, 0))
            if delta:
                strategy_span.add(key, delta)

    elapsed = time.perf_counter() - start
    return HSPSolution(
        generators=generators,
        strategy=chosen,
        elapsed_seconds=elapsed,
        query_report=instance.query_report(),
        details=result,
        status=status,
    )


def _dispatch(chosen, instance, sampler, use_engine, confidence_kwargs):
    """Run the chosen strategy; returns ``(generators, core_result)``."""
    group = instance.group
    base = _base_group(instance)
    oracle = instance.oracle
    promises = instance.promises

    if chosen == "abelian":
        result = solve_hsp_in_abelian_group(base, oracle, sampler=sampler, **confidence_kwargs)
        generators = result.generators
    elif chosen == "elementary_abelian_two":
        if "normal_generators" not in promises:
            raise GroupError("the elementary_abelian_two strategy requires a 'normal_generators' promise")
        result = solve_hsp_elementary_abelian_two(
            group,
            oracle,
            promises["normal_generators"],
            sampler=sampler,
            cyclic_quotient=promises.get("cyclic_quotient"),
            quotient_bound=promises.get("quotient_bound", 1 << 12),
        )
        generators = result.generators
    elif chosen == "small_commutator":
        result = solve_hsp_small_commutator(
            group,
            oracle,
            sampler=sampler,
            commutator_elements=promises.get("commutator_elements"),
            commutator_bound=promises.get("commutator_bound", 1 << 14),
            use_engine=use_engine,
        )
        generators = result.generators
    elif chosen == "hidden_normal":
        result = find_hidden_normal_subgroup(
            group,
            oracle,
            sampler=sampler,
            quotient_bound=promises.get("quotient_bound"),
            use_engine=use_engine,
            **confidence_kwargs,
        )
        generators = result.generators
    elif chosen == "classical":
        result = classical_exhaustive_hsp(instance)
        generators = result.generators
    elif chosen == "classical_adaptive":
        result = classical_adaptive_hsp(instance)
        generators = result.generators
    else:
        raise GroupError(f"unknown strategy {chosen!r}")

    return generators, result
