"""The HSP in groups with small commutator subgroup (Theorem 11, Corollary 12).

Theorem 11: for a black-box group ``G`` with unique encoding, the hidden
subgroup problem can be solved in quantum time polynomial in
``input size + |G'|`` where ``G'`` is the commutator subgroup.  Corollary 12
specialises this to extraspecial ``p``-groups (``|G'| = p``).

The algorithm (proof of Theorem 11):

1. enumerate ``G'`` (it consists of products of conjugates of generator
   commutators; cost polynomial in ``input size + |G'|``) and read off
   ``H ∩ G' = {c in G' : f(c) = f(1)}``;
2. the bundled function ``F(x) = {f(x c) : c in G'}`` hides ``H G'``, which is
   a *normal* subgroup because ``G/G'`` is Abelian — find generators for it
   with the hidden-normal-subgroup algorithm (Theorem 8), which here runs
   entirely in the Abelian factor group ``G/HG'``;
3. every generator ``x`` of ``HG'`` has ``x G' ∩ H`` non-empty — scan the
   ``|G'|`` elements of the coset and keep one that ``f`` maps to ``f(1)``;
4. the selected elements together with ``H ∩ G'`` generate a subgroup ``H_1``
   with ``H_1 ∩ G' = H ∩ G'`` and ``H_1 G' = H G'``, hence ``H_1 = H`` by the
   isomorphism theorem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.blackbox.oracle import BlackBoxGroup, HidingOracle, QueryCounter
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.groups.base import FiniteGroup, GroupError
from repro.groups.engine import maybe_engine
from repro.groups.subgroup import commutator_subgroup_generators, generate_subgroup_elements
from repro.obs import span as obs_span
from repro.quantum.sampling import FourierSampler

__all__ = ["SmallCommutatorResult", "solve_hsp_small_commutator"]


@dataclass
class SmallCommutatorResult:
    """Outcome of the Theorem 11 solver."""

    generators: List
    commutator_order: int
    intersection_generators: List = field(default_factory=list)
    coset_generators: List = field(default_factory=list)
    query_report: Dict[str, int] = field(default_factory=dict)


def solve_hsp_small_commutator(
    group: FiniteGroup,
    oracle: HidingOracle,
    sampler: Optional[FourierSampler] = None,
    counter: Optional[QueryCounter] = None,
    commutator_elements: Optional[Sequence] = None,
    commutator_bound: int = 1 << 14,
    max_enumeration: int = 1 << 18,
    max_retries: int = 3,
    use_engine: bool = True,
) -> SmallCommutatorResult:
    """Solve the HSP hidden by ``oracle`` in a group with small ``G'`` (Theorem 11).

    Parameters
    ----------
    commutator_elements:
        The elements of ``G'`` if already known (e.g. the promise of an
        extraspecial group); otherwise ``G'`` is enumerated from the normal
        closure of the generator commutators, up to ``commutator_bound``
        elements — the enumeration cost is part of the theorem's running-time
        bound.
    max_retries:
        The inner hidden-normal-subgroup run is Las Vegas: with small
        probability its Fourier sampling undershoots and step 3's invariant
        check (every generator of ``HG'`` meets ``H`` in its ``G'``-coset)
        fails.  The failure is always *detected*, and the run is repeated up
        to ``max_retries`` times before giving up.
    use_engine:
        Install a Cayley engine on the (unwrapped) ambient group so batch
        products in the coset-bundle hot path are memoized and vectorised.
        Groups without a usable dense encoding silently keep the per-element
        path; query accounting is identical either way.
    """
    sampler = sampler if sampler is not None else FourierSampler()
    counter = counter if counter is not None else oracle.counter
    engine = maybe_engine(group) if use_engine else None

    # Step 1: enumerate G' and read off H ∩ G'.
    with obs_span("small_commutator.enumerate") as enumerate_span:
        if commutator_elements is None:
            # The engine shortcut is only taken on uncounted groups: a counted
            # black-box wrapper must keep the scalar enumeration so its query
            # report stays identical to the use_engine=False run.
            if engine is not None and not isinstance(group, BlackBoxGroup):
                commutator_elements = engine.commutator_subgroup_elements(limit=commutator_bound)
            else:
                commutator_gens = commutator_subgroup_generators(group)
                commutator_elements = (
                    generate_subgroup_elements(group, commutator_gens, limit=commutator_bound)
                    if commutator_gens
                    else [group.identity()]
                )
        commutator_elements = list(commutator_elements)
        identity_label = oracle(group.identity())
        commutator_labels = oracle.evaluate_many(commutator_elements)
        intersection = [
            c
            for c, label in zip(commutator_elements, commutator_labels)
            if not group.is_identity(c) and label == identity_label
        ]
        enumerate_span.add("commutator_order", len(commutator_elements))

    # Step 2: the coset-bundle function F hides HG' (normal, Abelian quotient).
    # When the hiding oracle is dense-attached to the same engine as the
    # group, the whole bundle stays in int64 ids: one counted id-products row
    # plus one id-batch evaluation per uncached x.  Counting is identical to
    # the element path (multiply_ids counts the row length, evaluate_ids the
    # uncached ids), so the query report does not depend on the route.
    dense = group.dense_view() if engine is not None and isinstance(group, BlackBoxGroup) else None
    if dense is not None and oracle.dense_engine is dense.engine:
        commutator_ids = dense.intern_many(commutator_elements)

        def bundled_label(x):
            x_ids = np.full(commutator_ids.size, dense.intern(x), dtype=np.int64)
            return frozenset(oracle.evaluate_ids(dense.multiply_ids(x_ids, commutator_ids)))

    else:

        def bundled_label(x):
            coset = group.multiply_many([x] * len(commutator_elements), commutator_elements)
            return frozenset(oracle.evaluate_many(coset))

    bundled_oracle = HidingOracle(
        bundled_label,
        counter=counter,
        description="coset bundle F(x) = {f(xc) : c in G'}",
    )
    if dense is not None:
        # Key the bundle cache by ids too (free conversions; same counting).
        bundled_oracle.attach_dense(dense.engine)

    coset_generators: List = []
    for attempt in range(max_retries + 1):
        with obs_span("small_commutator.hidden_normal", attempt=attempt):
            normal_result = find_hidden_normal_subgroup(
                group,
                bundled_oracle,
                sampler=sampler,
                counter=counter,
                max_enumeration=max_enumeration,
            )

        # Step 3: lift each generator of HG' into H by scanning its G'-coset.
        # If the Las Vegas inner run overshot HG', some generator has no
        # H-element in its coset; the failure is detected here and the whole
        # hidden-normal step is repeated.
        coset_generators = []
        invariant_ok = True
        with obs_span("small_commutator.lift") as lift_span:
            for x in normal_result.generators:
                if group.is_identity(x):
                    continue
                lifted = None
                for c in commutator_elements:
                    candidate = group.multiply(x, c)
                    if oracle(candidate) == identity_label:
                        lifted = candidate
                        break
                if lifted is None:
                    invariant_ok = False
                    break
                if not group.is_identity(lifted):
                    coset_generators.append(lifted)
            lift_span.add("lifted", len(coset_generators))
        if invariant_ok:
            break
        counter.bump("theorem11_retries")
    else:
        raise GroupError(
            "Theorem 11 invariant violated repeatedly: a generator of HG' has no H-element in its G'-coset"
        )

    generators = coset_generators + intersection
    return SmallCommutatorResult(
        generators=generators,
        commutator_order=len(commutator_elements),
        intersection_generators=intersection,
        coset_generators=coset_generators,
        query_report=counter.snapshot(),
    )
