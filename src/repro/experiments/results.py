"""Persistent experiment results.

One :class:`RunRecord` per ``solve_hsp`` run; a sweep's records are written
to ``BENCH_<name>.json`` together with aggregate statistics.  The payload
separates the *deterministic* part (the ``rows``: strategy, query report,
recovered generators, success flag, seed) from the *machine-dependent* part
(``timings``), so a sweep rerun at the same seed — with any worker count —
produces byte-identical rows, and the timing data still rides along for the
reports.

Aggregation merges the per-run query reports through
``QueryCounter.from_snapshot`` and ``QueryCounter.__add__`` — the aggregate
``query_totals`` in the file is, by construction and by test, the exact sum
of the per-run reports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.blackbox.oracle import QueryCounter

__all__ = [
    "RunRecord",
    "aggregate_records",
    "bench_payload",
    "bench_path",
    "load_bench",
    "rows_bytes",
    "write_bench",
]


@dataclass
class RunRecord:
    """The outcome of one experiment run (picklable, JSON-ready)."""

    sweep: str
    index: int
    family: str
    params: Dict[str, object]
    repeat: int
    seed: int
    strategy: str
    success: bool
    generators: List[str]
    query_report: Dict[str, int]
    wall_time_seconds: float = 0.0

    def row(self) -> Dict[str, object]:
        """The deterministic JSON row (everything except wall time)."""
        return {
            "index": self.index,
            "family": self.family,
            "params": self.params,
            "repeat": self.repeat,
            "seed": self.seed,
            "strategy": self.strategy,
            "success": self.success,
            "generators": list(self.generators),
            "query_report": {key: int(value) for key, value in sorted(self.query_report.items())},
        }


def aggregate_records(records: Sequence[RunRecord]) -> Dict[str, object]:
    """Summary statistics of a sweep: success rate, merged query totals, time."""
    totals = sum(
        (QueryCounter.from_snapshot(record.query_report) for record in records), QueryCounter()
    )
    successes = sum(1 for record in records if record.success)
    by_strategy: Dict[str, int] = {}
    for record in records:
        by_strategy[record.strategy] = by_strategy.get(record.strategy, 0) + 1
    return {
        "runs": len(records),
        "successes": successes,
        "success_rate": (successes / len(records)) if records else 1.0,
        "strategies": dict(sorted(by_strategy.items())),
        "query_totals": {key: int(value) for key, value in sorted(totals.snapshot().items())},
        "wall_time_seconds": sum(record.wall_time_seconds for record in records),
    }


def bench_payload(spec, workers: int, records: Sequence[RunRecord]) -> Dict[str, object]:
    """The full ``BENCH_<name>.json`` payload for a finished sweep."""
    ordered = sorted(records, key=lambda record: record.index)
    return {
        "sweep": spec.to_json_dict(),
        "workers": int(workers),
        "rows": [record.row() for record in ordered],
        "timings": [
            {"index": record.index, "wall_time_seconds": record.wall_time_seconds}
            for record in ordered
        ],
        "aggregate": aggregate_records(ordered),
    }


def bench_path(out_dir: str, name: str) -> str:
    safe = name.replace("/", "-").replace(" ", "-")
    return os.path.join(out_dir, f"BENCH_{safe}.json")


def write_bench(out_dir: str, name: str, payload: Dict[str, object]) -> str:
    """Write the payload to ``<out_dir>/BENCH_<name>.json`` and return the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = bench_path(out_dir, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def rows_bytes(payload: Dict[str, object]) -> bytes:
    """The canonical byte serialization of the deterministic rows.

    Two sweep executions are considered identical exactly when these bytes
    agree; the determinism tests compare them across worker counts.
    """
    return json.dumps(payload["rows"], sort_keys=True).encode("utf-8")
