"""Persistent experiment results.

One :class:`RunRecord` per ``solve_hsp`` run; a sweep's records are written
to ``BENCH_<name>.json`` together with aggregate statistics.  The payload
separates the *deterministic* part (the ``rows``: strategy, query report,
recovered generators, success flag, seed, status) from the
*machine-dependent* part (``timings``), so a sweep rerun at the same seed —
with any worker count — produces byte-identical rows, and the timing data
still rides along for the reports.

Fault tolerance rests on two mechanisms in this module:

* :func:`write_bench` is **atomic** — the payload is serialized to a
  temporary file in the output directory and moved into place with
  :func:`os.replace`, so a crash mid-write can never leave a corrupt
  ``BENCH_<name>.json`` behind;
* the **journal** (``BENCH_<name>.partial.jsonl``) records each completed
  run as one appended JSON line.  An interrupted sweep leaves the journal
  on disk; ``--resume`` replays it, skipping journaled ``status="ok"``
  ``(index, seed)`` rows (errored rows are retried), and the journal
  header pins the exact sweep spec so a resume against a different seed or
  grid is refused.

Aggregation merges the per-run query reports through
``QueryCounter.from_snapshot`` and ``QueryCounter.__add__`` — the aggregate
``query_totals`` in the file is, by construction and by test, the exact sum
of the per-run reports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.blackbox.oracle import QueryCounter

__all__ = [
    "LedgerDivergence",
    "RunRecord",
    "SpecMismatch",
    "aggregate_records",
    "append_journal",
    "atomic_write_json",
    "bench_payload",
    "bench_path",
    "check_journal_agreement",
    "error_rows",
    "journal_path",
    "load_bench",
    "load_journal",
    "load_journal_payload",
    "load_validated_bench",
    "merge_journal_records",
    "merge_record_streams",
    "remove_journal",
    "resolve_bench",
    "rewrite_journal",
    "rows_bytes",
    "validate_rows",
    "write_bench",
    "write_journal_header",
]

#: Journal schema version; bumped if the line format ever changes so a stale
#: journal from an older build is refused rather than misread.
JOURNAL_VERSION = 1


@dataclass
class RunRecord:
    """The outcome of one experiment run (picklable, JSON-ready).

    ``status`` is ``"ok"`` for a run that returned (successfully or not) and
    ``"error"`` for a run that raised — in which case ``error`` holds the
    formatted traceback, ``success`` is false and the query report is empty.
    """

    sweep: str
    index: int
    family: str
    params: Dict[str, object]
    repeat: int
    seed: int
    strategy: str
    success: bool
    generators: List[str]
    query_report: Dict[str, int]
    wall_time_seconds: float = 0.0
    status: str = "ok"
    error: Optional[str] = None

    def row(self) -> Dict[str, object]:
        """The deterministic JSON row (everything except wall time)."""
        return {
            "index": self.index,
            "family": self.family,
            "params": self.params,
            "repeat": self.repeat,
            "seed": self.seed,
            "strategy": self.strategy,
            "status": self.status,
            "error": self.error,
            "success": self.success,
            "generators": list(self.generators),
            "query_report": {key: int(value) for key, value in sorted(self.query_report.items())},
        }

    def to_json_dict(self) -> Dict[str, object]:
        """The full journal entry: the row plus sweep name and wall time."""
        entry = self.row()
        entry["sweep"] = self.sweep
        entry["wall_time_seconds"] = self.wall_time_seconds
        return entry

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "RunRecord":
        """Rebuild a record from :meth:`to_json_dict` output (JSON round-trip)."""
        return cls(
            sweep=str(data["sweep"]),
            index=int(data["index"]),
            family=str(data["family"]),
            params=dict(data["params"]),
            repeat=int(data["repeat"]),
            seed=int(data["seed"]),
            strategy=str(data["strategy"]),
            success=bool(data["success"]),
            generators=list(data["generators"]),
            query_report={key: int(value) for key, value in dict(data["query_report"]).items()},
            wall_time_seconds=float(data.get("wall_time_seconds", 0.0)),
            status=str(data.get("status", "ok")),
            error=data.get("error"),
        )


def aggregate_records(records: Sequence[RunRecord]) -> Dict[str, object]:
    """Summary statistics of a sweep: success rate, merged query totals, time.

    An empty record list (an empty or fully-filtered sweep) reports
    ``success_rate: None`` — never a fabricated 100%.
    """
    totals = sum(
        (QueryCounter.from_snapshot(record.query_report) for record in records), QueryCounter()
    )
    successes = sum(1 for record in records if record.success)
    errors = sum(1 for record in records if record.status == "error")
    by_strategy: Dict[str, int] = {}
    for record in records:
        by_strategy[record.strategy] = by_strategy.get(record.strategy, 0) + 1
    return {
        "runs": len(records),
        "successes": successes,
        "errors": errors,
        "success_rate": (successes / len(records)) if records else None,
        "strategies": dict(sorted(by_strategy.items())),
        "query_totals": {key: int(value) for key, value in sorted(totals.snapshot().items())},
        "wall_time_seconds": sum(record.wall_time_seconds for record in records),
    }


def bench_payload(spec, workers: int, records: Sequence[RunRecord]) -> Dict[str, object]:
    """The full ``BENCH_<name>.json`` payload for a finished sweep."""
    ordered = sorted(records, key=lambda record: record.index)
    return {
        "sweep": spec.to_json_dict(),
        "workers": int(workers),
        "rows": [record.row() for record in ordered],
        "timings": [
            {"index": record.index, "wall_time_seconds": record.wall_time_seconds}
            for record in ordered
        ],
        "aggregate": aggregate_records(ordered),
    }


def _safe_name(name: str) -> str:
    return name.replace("/", "-").replace(" ", "-")


def bench_path(out_dir: str, name: str) -> str:
    return os.path.join(out_dir, f"BENCH_{_safe_name(name)}.json")


def journal_path(out_dir: str, name: str) -> str:
    """The checkpoint journal path of a sweep: ``BENCH_<name>.partial.jsonl``."""
    return os.path.join(out_dir, f"BENCH_{_safe_name(name)}.partial.jsonl")


def atomic_write_json(path: str, payload: Dict[str, object]) -> str:
    """Atomically write ``payload`` as sorted-key JSON to ``path``.

    The one atomic-write protocol of the results layer (BENCH and ANALYSIS
    files): serialize to a same-directory temporary file and move it into
    place with :func:`os.replace`, so readers never see a torn file —
    either the previous content or the complete new one.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp_path = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)
    return path


def write_bench(out_dir: str, name: str, payload: Dict[str, object]) -> str:
    """Atomically write the payload to ``<out_dir>/BENCH_<name>.json``."""
    return atomic_write_json(bench_path(out_dir, name), payload)


def load_bench(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class SpecMismatch(ValueError):
    """A BENCH row disagrees with the file's recorded sweep spec header.

    Raised by :func:`validate_rows` when a row's grid keys (or values) are
    not the ones the ``sweep`` header declares — the signature of a stale
    BENCH file that was hand-edited or produced by an older spec.  Grouping
    such rows silently would corrupt every downstream statistic, so both
    ``report`` and ``summarise`` load through :func:`load_validated_bench`
    and refuse the file instead.
    """


def resolve_bench(target: str, out_dir: str = ".") -> str:
    """Resolve a CLI target — a BENCH file path or a workload name — to a path.

    An existing path wins; otherwise the target is treated as a sweep name
    inside ``out_dir``.  Shared by ``report``, ``summarise`` and ``plot`` so
    every reader resolves identically.
    """
    return target if os.path.exists(target) else bench_path(out_dir, target)


def _canonical(value) -> str:
    """A comparison key that ignores JSON round-trips (tuples vs lists)."""
    if isinstance(value, tuple):
        value = list(value)
    return json.dumps(value, sort_keys=True, default=list)


def validate_rows(payload: Dict[str, object], path: str = "<memory>") -> List[Dict[str, object]]:
    """The rows of a sweep payload, checked against its own spec header.

    Every row's ``params`` must use exactly the grid keys the ``sweep``
    header declares, with values drawn from the declared grid — a stale
    file edited by hand or produced by an older spec fails with a
    :class:`SpecMismatch` naming the offending keys rather than being
    silently grouped into nonsense cells.
    """
    if "sweep" not in payload or "rows" not in payload:
        raise ValueError(
            f"{path} is not a sweep BENCH file (missing 'sweep'/'rows'); "
            f"it reports {payload.get('benchmark', 'an unknown benchmark')!r}"
        )
    grid = dict(payload["sweep"].get("grid", {}))
    expected = set(grid)
    allowed = {key: {_canonical(v) for v in values} for key, values in grid.items()}
    for row in payload["rows"]:
        params = dict(row.get("params", {}))
        keys = set(params)
        if keys != expected:
            missing = sorted(expected - keys)
            extra = sorted(keys - expected)
            detail = []
            if missing:
                detail.append(f"missing grid keys {missing}")
            if extra:
                detail.append(f"unknown grid keys {extra}")
            raise SpecMismatch(
                f"{path}: row index {row.get('index')} disagrees with the recorded "
                f"sweep spec ({'; '.join(detail)}); the file is stale or was edited "
                f"— re-run the sweep instead of analysing it"
            )
        offending = sorted(
            key for key in expected if _canonical(params[key]) not in allowed[key]
        )
        if offending:
            raise SpecMismatch(
                f"{path}: row index {row.get('index')} has values outside the recorded "
                f"grid for keys {offending}; the file is stale or was edited "
                f"— re-run the sweep instead of analysing it"
            )
    return list(payload["rows"])


def load_validated_bench(path: str) -> Dict[str, object]:
    """Load a ``BENCH_<name>.json`` and validate rows against its spec header.

    The one loader behind every reader of sweep BENCH files (``report``,
    ``summarise``, ``plot``) — raises ``ValueError`` for a non-sweep payload
    and :class:`SpecMismatch` for rows that disagree with the recorded spec.
    """
    payload = load_bench(path)
    validate_rows(payload, path=path)
    return payload


def error_rows(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """The ``status="error"`` rows of a sweep payload."""
    return [row for row in payload.get("rows", []) if row.get("status") == "error"]


def load_journal_payload(path: str) -> Dict[str, object]:
    """A sweep payload reconstructed from a ``.partial.jsonl`` journal.

    Lets ``summarise``/``plot`` analyse an *interrupted* sweep's completed
    rows before the final BENCH file exists.  The journal header supplies
    the spec, the journaled records become the rows (sorted by index; a
    torn trailing line is dropped as in :func:`load_journal`), and
    ``"partial": True`` marks the payload so readers can flag it.  Raises
    ``ValueError`` for a missing/foreign header.
    """
    lines = _journal_lines(path)
    header = next(lines, None)
    if not isinstance(header, dict) or "sweep" not in header:
        raise ValueError(f"{path} has no journal header; not a sweep journal")
    if header.get("journal_version") != JOURNAL_VERSION:
        raise ValueError(
            f"journal {path!r} has version {header.get('journal_version')!r}, "
            f"expected {JOURNAL_VERSION}"
        )
    records: Dict[Tuple[int, int], RunRecord] = {}
    for record in _journal_records(lines):
        records[(record.index, record.seed)] = record
    ordered = sorted(records.values(), key=lambda record: record.index)
    return {
        "sweep": header["sweep"],
        "workers": 0,
        "partial": True,
        "rows": [record.row() for record in ordered],
        "timings": [
            {"index": record.index, "wall_time_seconds": record.wall_time_seconds}
            for record in ordered
        ],
        "aggregate": aggregate_records(ordered),
    }


def rows_bytes(payload: Dict[str, object]) -> bytes:
    """The canonical byte serialization of the deterministic rows.

    Two sweep executions are considered identical exactly when these bytes
    agree; the determinism and resume tests compare them across worker
    counts and across interruptions.
    """
    return json.dumps(payload["rows"], sort_keys=True).encode("utf-8")


# ---------------------------------------------------------------------------
# The checkpoint journal
# ---------------------------------------------------------------------------


def write_journal_header(path: str, spec) -> None:
    """Start a fresh journal: one header line pinning the sweep spec."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    header = {"journal_version": JOURNAL_VERSION, "sweep": spec.to_json_dict()}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")


def rewrite_journal(path: str, spec, records: Sequence[RunRecord]) -> None:
    """Atomically rewrite a journal as header + ``records`` (compaction).

    Used when resuming: the reloaded state is written back as a clean file,
    which drops any torn trailing fragment from the crash (appending after
    a fragment would merge it with the next record into one unparseable
    line) and drops superseded rows (e.g. errors about to be retried).
    """
    tmp_path = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            header = {"journal_version": JOURNAL_VERSION, "sweep": spec.to_json_dict()}
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for record in records:
                handle.write(json.dumps(record.to_json_dict(), sort_keys=True) + "\n")
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            os.remove(tmp_path)


def append_journal(path: str, record: RunRecord) -> None:
    """Append one completed run to the journal (open-write-close, crash safe).

    The file is reopened per record so every completed row reaches the
    filesystem even if the process dies before the sweep finishes; a torn
    final line (the crash landing mid-``write``) is tolerated and dropped by
    :func:`load_journal`.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record.to_json_dict(), sort_keys=True) + "\n")


def _journal_lines(path: str) -> Iterator[Dict[str, object]]:
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # A torn trailing line from a crash mid-append: everything
                # before it is intact, so stop there and let the resume
                # re-execute the run whose record was lost.
                return


def _journal_records(lines: Iterator[Dict[str, object]]) -> Iterator[RunRecord]:
    """Parse journal entries into records, stopping at the first bad one.

    A line can decode as JSON and still not be a record — a truncation that
    happens to end on a digit, interleaved writes merging two lines, a
    hand-edited file.  Everything *before* the first unparseable entry is
    intact by the append-only discipline, so (exactly as for an undecodable
    line) parsing stops there instead of crashing the reader or guessing at
    the remainder.
    """
    for entry in lines:
        if not isinstance(entry, dict):
            return
        try:
            yield RunRecord.from_json_dict(entry)
        except (KeyError, TypeError, ValueError):
            return


def load_journal(path: str, spec) -> Dict[Tuple[int, int], RunRecord]:
    """The journaled records of ``spec``, keyed by ``(index, seed)``.

    Raises ``ValueError`` when the journal header does not match ``spec``
    exactly — resuming under a different seed, grid, strategy or sampler
    would silently mix incompatible rows.
    """
    lines = _journal_lines(path)
    try:
        header = next(lines)
    except StopIteration:
        return {}
    version = header.get("journal_version") if isinstance(header, dict) else None
    if version != JOURNAL_VERSION:
        raise ValueError(
            f"journal {path!r} has version {version!r}, "
            f"expected {JOURNAL_VERSION}; delete it to start over"
        )
    expected = json.loads(json.dumps(spec.to_json_dict()))
    if header.get("sweep") != expected:
        raise ValueError(
            f"journal {path!r} was written by a different sweep configuration "
            f"(name/seed/grid/sampler mismatch); delete it or rerun without --resume"
        )
    records: Dict[Tuple[int, int], RunRecord] = {}
    for record in _journal_records(lines):
        records[(record.index, record.seed)] = record
    return records


def merge_record_streams(
    streams: Iterable[Mapping[Tuple[int, int], RunRecord]],
) -> Dict[Tuple[int, int], RunRecord]:
    """Merge per-shard record streams into one ``(index, seed)``-keyed ledger.

    A *stream* is one shard's records keyed by ``(index, seed)`` — however
    the shard is stored (a ``.jsonl`` journal file, a database table slice);
    the transport layer produces them already validated and deduplicated
    last-wins in append order.  Duplicate keys across shards arise
    legitimately — a stale lease reclaimed after its worker already
    journaled the record means two workers executed the same run — and are
    resolved by status rank, ``ok > no_convergence > error``: a completed
    measurement beats a noise-swamped one, which beats an infrastructure
    failure.  Two records of the same rank for one run are byte-identical
    by the determinism guarantee, so which one survives is immaterial.
    """
    merged: Dict[Tuple[int, int], RunRecord] = {}
    for stream in streams:
        for key, record in stream.items():
            existing = merged.get(key)
            if existing is None or _status_rank(record.status) > _status_rank(existing.status):
                merged[key] = record
    return merged


#: Cross-shard duplicate resolution order for :func:`merge_record_streams`;
#: unknown statuses rank lowest, alongside ``error``.
_STATUS_RANK = {"error": 0, "no_convergence": 1, "ok": 2}


def _status_rank(status: str) -> int:
    return _STATUS_RANK.get(status, 0)


def merge_journal_records(
    paths: Sequence[str], spec
) -> Dict[Tuple[int, int], RunRecord]:
    """Merge several journal shard *files* into one ``(index, seed)`` ledger.

    The path-based convenience form of :func:`merge_record_streams`: every
    shard's header must pin the same sweep ``spec`` (validated per shard by
    :func:`load_journal`).
    """
    return merge_record_streams(load_journal(path, spec) for path in sorted(paths))


class LedgerDivergence(ValueError):
    """A BENCH file and its surviving journal disagree about the same runs.

    The journal is deleted when a sweep completes, so the two coexisting is
    already unusual (a crash between ``write_bench`` and the journal
    removal leaves them *in agreement*).  When they *disagree* — same
    ``(index, seed)`` key, different row content — one of the two ledgers
    is stale and there is no principled way to pick a side; every reader
    (``report``/``summarise``/``plot``) refuses the file, naming the
    divergent pairs, instead of silently preferring one source.
    """


def check_journal_agreement(payload: Dict[str, object], journal_file: str, path: str = "<memory>") -> None:
    """Raise :class:`LedgerDivergence` when a journal contradicts a BENCH payload.

    Rows are compared on the common ``(index, seed)`` keys; a journal that
    holds a *subset* of agreeing rows is fine (an in-progress fresh attempt
    of the same spec journals identical deterministic rows).  A journal
    whose header pins a different sweep configuration, or that cannot be
    read as a journal at all, is equally refused — agreement cannot be
    attested against it.
    """
    jpayload = load_journal_payload(journal_file)
    expected = json.loads(json.dumps(payload.get("sweep")))
    if jpayload["sweep"] != expected:
        raise LedgerDivergence(
            f"{path} has a surviving journal {journal_file} written by a different "
            f"sweep configuration (name/seed/grid/sampler mismatch); delete the "
            f"stale ledger before analysing"
        )
    bench_rows = {(row["index"], row["seed"]): row for row in payload.get("rows", [])}
    divergent = []
    for row in jpayload["rows"]:
        key = (row["index"], row["seed"])
        if key in bench_rows and bench_rows[key] != row:
            divergent.append(key)
    if divergent:
        shown = ", ".join(str(key) for key in divergent[:5])
        suffix = ", ..." if len(divergent) > 5 else ""
        raise LedgerDivergence(
            f"{path} and its surviving journal {journal_file} disagree on "
            f"{len(divergent)} run(s): (index, seed) pairs {shown}{suffix}; one of "
            f"the two ledgers is stale — delete the wrong one or re-run the sweep"
        )


def remove_journal(path: str) -> None:
    """Delete a journal if present (the sweep completed; nothing to resume)."""
    if os.path.exists(path):
        os.remove(path)
