"""Named HSP-instance builders for the experiment harness.

Workers rebuild every instance from ``(family, params, seed)`` — hiding
oracles hold closures and are deliberately never pickled.  Builders must be
deterministic functions of their parameters and the supplied generator: the
``workers=1`` / ``workers=N`` byte-identity of sweep results rests on that.

Families mirror the group catalogue (:mod:`repro.groups.catalog`) and the
workloads of the ``benchmarks/`` suite; each returns a fully promised
:class:`~repro.blackbox.instances.HSPInstance` ready for
:func:`~repro.core.solver.solve_hsp`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.blackbox.instances import HSPInstance, random_abelian_hsp_instance
from repro.groups.catalog import wreath_instance
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group

__all__ = ["build_instance", "families", "register_family"]

Builder = Callable[[Dict[str, object], np.random.Generator], HSPInstance]

_BUILDERS: Dict[str, Builder] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register_family(name: str, description: str = ""):
    """Decorator registering an instance builder under ``name``."""

    def decorator(builder: Builder) -> Builder:
        _BUILDERS[name] = builder
        _DESCRIPTIONS[name] = description or (builder.__doc__ or "").strip().splitlines()[0]
        return builder

    return decorator


def build_instance(family: str, params: Dict[str, object], rng: np.random.Generator) -> HSPInstance:
    """Build the HSP instance of ``family`` at ``params`` (deterministic in ``rng``)."""
    try:
        builder = _BUILDERS[family]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown instance family {family!r}; known families: {known}") from None
    return builder(params, rng)


def families() -> Dict[str, str]:
    """The registered family names with their one-line descriptions."""
    return dict(sorted(_DESCRIPTIONS.items()))


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


@register_family("abelian_random", "random hidden subgroup of Z_{n1} x ... x Z_{nk} (Theorem 3)")
def _abelian_random(params, rng):
    moduli = list(params["moduli"])
    generators = int(params.get("generators", 2))
    return random_abelian_hsp_instance(moduli, rng, max_generators=generators)


@register_family("dihedral_rotation", "N = <r^step> hidden in D_n (Theorem 8, Abelian quotient)")
def _dihedral_rotation(params, rng):
    n = int(params["n"])
    step = int(params.get("step", 1))
    group = dihedral_semidirect(n)
    return HSPInstance.from_subgroup(
        group,
        [group.embed_normal((step,))],
        promises={"hidden_is_normal": True},
        name=f"rotation subgroup <r^{step}> of D_{n}",
    )


@register_family("dihedral_bounded_quotient", "N = <r^d> in D_n with dihedral quotient (Theorem 8, Schreier path)")
def _dihedral_bounded_quotient(params, rng):
    d = int(params["d"])
    n = int(params.get("n", d * 11))
    group = dihedral_semidirect(n)
    return HSPInstance.from_subgroup(
        group,
        [group.embed_normal((d,))],
        promises={"hidden_is_normal": True, "quotient_bound": 8 * d},
        name=f"<r^{d}> in D_{n} (bounded quotient)",
    )


@register_family("metacyclic_core", "N = Z_p hidden in Z_p : Z_q (Theorem 8, solvable)")
def _metacyclic_core(params, rng):
    p, q = (int(v) for v in params["pq"])
    group = metacyclic_group(p, q)
    return HSPInstance.from_subgroup(
        group,
        [group.embed_normal((1,))],
        promises={"hidden_is_normal": True},
        name=f"normal core of Z_{p} : Z_{q}",
    )


@register_family("symmetric_alternating", "N = A_n hidden in S_n (Theorem 8, permutation groups)")
def _symmetric_alternating(params, rng):
    n = int(params["n"])
    group = symmetric_group(n)
    return HSPInstance.from_subgroup(
        group,
        alternating_group(n).generators(),
        promises={"hidden_is_normal": True},
        name=f"A_{n} inside S_{n}",
    )


@register_family("extraspecial_center", "center of the extraspecial group of order p^3 (Theorem 8)")
def _extraspecial_center(params, rng):
    p = int(params["p"])
    group = extraspecial_group(p)
    return HSPInstance.from_subgroup(
        group,
        group.center_generators(),
        promises={"hidden_is_normal": True},
        name=f"center of extraspecial p={p}",
    )


@register_family("extraspecial_random", "random hidden subgroup of an extraspecial p-group (Theorem 11)")
def _extraspecial_random(params, rng):
    p = int(params["p"])
    rank = int(params.get("rank", 1))
    generators = int(params.get("generators", 1))
    group = extraspecial_group(p, n=rank)
    hidden = [group.uniform_random_element(rng) for _ in range(generators)]
    return HSPInstance.from_subgroup(
        group,
        hidden,
        promises={"commutator_elements": group.commutator_subgroup_elements()},
        name=f"random H in extraspecial p={p}, rank={rank}",
    )


@register_family("diagnostic_fault", "deterministic fault injector over D_n (fault-tolerance drills)")
def _diagnostic_fault(params, rng):
    """A tiny dihedral instance that raises when ``fail`` is set.

    The failure happens *inside the builder*, exactly where a real sweep
    loses a run (a family whose construction blows up for some grid point),
    so the runner's error capture, ``--max-failures`` budget and
    journal-resume paths can be exercised deterministically from a declared
    workload.

    A ``delay`` parameter sleeps that many seconds before building —
    simulated slow construction, giving interruption drills (the
    kill-a-worker queue test) a guaranteed mid-task window.  The delay
    value rides in the grid, so rows stay deterministic; only wall time
    (machine-dependent by design) sees the sleep.
    """
    if params.get("delay"):
        time.sleep(float(params["delay"]))
    if params.get("fail"):
        raise RuntimeError(
            f"diagnostic fault injected for params {dict(sorted(params.items()))}"
        )
    return _dihedral_rotation(params, rng)


@register_family("wreath_random", "random hidden subgroup of Z_2^k wr Z_2 (Theorem 13, cyclic quotient)")
def _wreath_random(params, rng):
    k = int(params["k"])
    group, normal_gens = wreath_instance(k)
    hidden = [group.uniform_random_element(rng)]
    return HSPInstance.from_subgroup(
        group,
        hidden,
        promises={"normal_generators": normal_gens, "cyclic_quotient": True},
        name=f"random H in Z_2^{k} wr Z_2",
    )
