"""Declarative sweep specifications.

A :class:`SweepSpec` names a group family from the registry, a parameter
grid, a repeat count and the solver/sampler configuration; :meth:`expand`
turns it into the deterministic list of :class:`RunSpec` descriptors the
process-pool runner executes.  Everything here is immutable, hashable and
picklable — a run descriptor is all a worker process receives.

Per-run seeds are derived with :class:`numpy.random.SeedSequence` from the
sweep's master seed and the run index, so the randomness of a run depends
only on its position in the expansion, never on which worker executes it or
in what order — the foundation of the ``workers=1`` / ``workers=N``
byte-identity guarantee.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DEFAULT_SEED", "RESERVED_GRID_KEYS", "SamplerSpec", "SweepSpec", "RunSpec", "derive_seed"]

#: The suite-wide master seed (the paper's arXiv submission date).
DEFAULT_SEED = 20010202

#: Grid keys routed to the *solver* rather than the instance builder.  A
#: ``"strategy"`` axis overrides :attr:`RunSpec.strategy` per grid point, a
#: ``"confidence"`` axis becomes the ``confidence`` solver option and a
#: ``"noise"`` axis (noise-spec strings such as ``"oracle-flip(0.25)"`` —
#: see :mod:`repro.blackbox.noise`) becomes the ``noise`` solver option —
#: this is what lets one declarative sweep scan success probability versus
#: sampling rounds or corruption rate, or cross strategies over the same
#: instances.  All three stay in :attr:`RunSpec.params` so the BENCH rows
#: record the swept value.
RESERVED_GRID_KEYS = ("strategy", "confidence", "noise")


def derive_seed(master: int, index: int) -> int:
    """The per-run seed: deterministic, well-mixed, platform independent."""
    return int(np.random.SeedSequence([int(master), int(index)]).generate_state(1, np.uint64)[0])


def _freeze(value):
    """Recursively convert lists/tuples to tuples (hashable, picklable)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _thaw(value):
    """Recursively convert tuples back to lists (JSON-friendly)."""
    if isinstance(value, tuple):
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class SamplerSpec:
    """Configuration of the :class:`~repro.quantum.sampling.FourierSampler`."""

    backend: str = "auto"
    batch: bool = True
    shards: Optional[int] = None
    statevector_limit: int = 1 << 14

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "batch": self.batch,
            "shards": self.shards,
            "statevector_limit": self.statevector_limit,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "SamplerSpec":
        """Rebuild a sampler spec from :meth:`to_json_dict` output."""
        shards = data.get("shards")
        return cls(
            backend=str(data.get("backend", "auto")),
            batch=bool(data.get("batch", True)),
            shards=None if shards is None else int(shards),
            statevector_limit=int(data.get("statevector_limit", 1 << 14)),
        )


@dataclass(frozen=True)
class RunSpec:
    """A picklable descriptor of one ``solve_hsp`` run.

    Workers receive nothing else: the instance (group, oracle, promises) is
    rebuilt inside the worker from ``family``/``params``/``seed`` through the
    registry, so no closure or group object ever crosses a process boundary.
    """

    sweep: str
    index: int
    family: str
    params: Tuple[Tuple[str, object], ...]
    repeat: int
    seed: int
    strategy: str = "auto"
    sampler: SamplerSpec = field(default_factory=SamplerSpec)
    solver_options: Tuple[Tuple[str, object], ...] = ()
    engine: bool = True

    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def instance_params(self) -> Dict[str, object]:
        """The builder-facing parameters: ``params`` minus the reserved keys."""
        return {key: value for key, value in self.params if key not in RESERVED_GRID_KEYS}

    def options_dict(self) -> Dict[str, object]:
        return dict(self.solver_options)

    def to_json_dict(self) -> Dict[str, object]:
        """The task-file serialization of the run (one queue task = one run).

        Everything a worker on another machine needs to execute the run:
        the distributed queue materialises each pending run as one JSON
        task file, and :meth:`from_json_dict` must round-trip it exactly —
        the descriptor *is* the unit of work, so any drift here would
        silently change what a remote worker executes.
        """
        return {
            "sweep": self.sweep,
            "index": self.index,
            "family": self.family,
            "params": {key: _thaw(value) for key, value in self.params},
            "repeat": self.repeat,
            "seed": self.seed,
            "strategy": self.strategy,
            "sampler": self.sampler.to_json_dict(),
            "solver_options": {key: _thaw(value) for key, value in self.solver_options},
            "engine": self.engine,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "RunSpec":
        """Rebuild a run descriptor from :meth:`to_json_dict` output.

        The JSON round-trip turns tuples into lists; re-freezing restores
        the exact original dataclass (asserted by equality in the tests).
        """
        return cls(
            sweep=str(data["sweep"]),
            index=int(data["index"]),
            family=str(data["family"]),
            params=tuple(sorted((str(k), _freeze(v)) for k, v in dict(data["params"]).items())),
            repeat=int(data["repeat"]),
            seed=int(data["seed"]),
            strategy=str(data.get("strategy", "auto")),
            sampler=SamplerSpec.from_json_dict(dict(data.get("sampler", {}))),
            solver_options=tuple(
                sorted((str(k), _freeze(v)) for k, v in dict(data.get("solver_options", {})).items())
            ),
            engine=bool(data.get("engine", True)),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: family x parameter grid x repeats.

    ``grid`` maps parameter names to value tuples; expansion walks the
    cartesian product with the keys in sorted order, then the repeats, so
    run indices (and hence seeds) are a pure function of the spec.
    ``engine=False`` declares the scalar baseline configuration: instances
    are built and solved with the Cayley engine disabled
    (:func:`repro.groups.engine.engine_disabled`).
    """

    name: str
    family: str
    grid: Tuple[Tuple[str, Tuple], ...] = ()
    repeats: int = 1
    seed: int = DEFAULT_SEED
    strategy: str = "auto"
    sampler: SamplerSpec = field(default_factory=SamplerSpec)
    solver_options: Tuple[Tuple[str, object], ...] = ()
    engine: bool = True
    description: str = ""

    @classmethod
    def from_grid(
        cls,
        name: str,
        family: str,
        grid: Mapping[str, Sequence],
        **kwargs,
    ) -> "SweepSpec":
        """Build a spec from a plain ``{param: [values...]}`` mapping."""
        frozen = tuple(
            sorted((key, tuple(_freeze(v) for v in values)) for key, values in grid.items())
        )
        options = kwargs.pop("solver_options", ())
        if isinstance(options, Mapping):
            options = tuple(sorted((k, _freeze(v)) for k, v in options.items()))
        return cls(name=name, family=family, grid=frozen, solver_options=options, **kwargs)

    def with_overrides(
        self,
        seed: Optional[int] = None,
        repeats: Optional[int] = None,
        name: Optional[str] = None,
    ) -> "SweepSpec":
        """A copy with CLI-level overrides applied."""
        spec = self
        if seed is not None:
            if int(seed) < 0:
                raise ValueError(f"seed must be non-negative, got {seed}")
            spec = replace(spec, seed=int(seed))
        if repeats is not None:
            if int(repeats) < 1:
                raise ValueError(f"repeats must be a positive integer, got {repeats}")
            spec = replace(spec, repeats=int(repeats))
        if name is not None:
            spec = replace(spec, name=name)
        return spec

    def points(self) -> List[Dict[str, object]]:
        """The grid points, in deterministic (sorted-key, row-major) order."""
        if not self.grid:
            return [{}]
        keys = [key for key, _ in self.grid]
        value_lists = [list(values) for _, values in self.grid]
        return [dict(zip(keys, combo)) for combo in itertools.product(*value_lists)]

    def expand(self) -> List[RunSpec]:
        """The full deterministic run list of the sweep."""
        runs: List[RunSpec] = []
        index = 0
        for point in self.points():
            strategy = str(point.get("strategy", self.strategy))
            options = self.solver_options
            if "confidence" in point:
                merged = dict(options)
                merged["confidence"] = int(point["confidence"])
                options = tuple(sorted(merged.items()))
            if "noise" in point:
                from repro.blackbox.noise import NoiseSpec

                NoiseSpec.parse(point["noise"])  # validate at expansion time
                merged = dict(options)
                merged["noise"] = str(point["noise"])
                options = tuple(sorted(merged.items()))
            for repeat in range(self.repeats):
                runs.append(
                    RunSpec(
                        sweep=self.name,
                        index=index,
                        family=self.family,
                        params=tuple(sorted(point.items())),
                        repeat=repeat,
                        seed=derive_seed(self.seed, index),
                        strategy=strategy,
                        sampler=self.sampler,
                        solver_options=options,
                        engine=self.engine,
                    )
                )
                index += 1
        return runs

    def to_json_dict(self) -> Dict[str, object]:
        """A JSON-safe description of the sweep (stored in the BENCH file)."""
        return {
            "name": self.name,
            "family": self.family,
            "grid": {key: _thaw(values) for key, values in self.grid},
            "repeats": self.repeats,
            "seed": self.seed,
            "strategy": self.strategy,
            "sampler": self.sampler.to_json_dict(),
            "solver_options": {key: _thaw(value) for key, value in self.solver_options},
            "engine": self.engine,
            "description": self.description,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "SweepSpec":
        """Rebuild a sweep spec from :meth:`to_json_dict` output.

        The distributed queue stores the spec this way in its header file,
        and a worker on another machine reconstructs it to validate its
        journal shard and (in ``collect``) to recompute the expected run
        list.  Round-trips exactly: ``from_json_dict(to_json_dict(s)) == s``.
        """
        return cls.from_grid(
            name=str(data["name"]),
            family=str(data["family"]),
            grid=dict(data.get("grid", {})),
            repeats=int(data.get("repeats", 1)),
            seed=int(data.get("seed", DEFAULT_SEED)),
            strategy=str(data.get("strategy", "auto")),
            sampler=SamplerSpec.from_json_dict(dict(data.get("sampler", {}))),
            solver_options=dict(data.get("solver_options", {})),
            engine=bool(data.get("engine", True)),
            description=str(data.get("description", "")),
        )
