"""Parallel experiment orchestration for the HSP reproduction.

The paper's algorithms are evaluated by oracle-query counts, so the
empirical questions — success probability versus rounds, query scaling
versus group order, strategy crossover points — are all answered by *sweeps*
of many independent :func:`~repro.core.solver.solve_hsp` runs.  This
subsystem turns the one-off benchmark scripts into a declarative, parallel,
persistent experiment layer:

``specs``
    dataclasses describing a sweep — a grid of (group family, instance
    parameters, solver options, seeds) — that expands deterministically into
    picklable per-run descriptors;
``registry``
    the named instance builders that rebuild each HSP instance *inside* the
    worker process (group oracles hold closures and are never pickled);
``runner``
    the fault-tolerant process-pool executor: engines are
    per-group-instance, so workers share nothing and per-run query reports
    merge by ``QueryCounter.__add__``; a raising run becomes a structured
    ``status="error"`` row (bounded by ``max_failures``) and completed rows
    are journaled so an interrupted sweep resumes where it stopped
    (errored rows are retried on resume);
``results``
    per-run JSON rows and aggregate statistics, persisted atomically as
    ``BENCH_<name>.json``, plus the ``BENCH_<name>.partial.jsonl``
    checkpoint journal behind ``--resume``, multi-shard journal merging
    (dedup by ``(index, seed)``, ranked ``ok > no_convergence > error``) and the
    BENCH-vs-journal agreement check;
``distributed``
    the queue-backed distributed runner: ``enqueue`` materialises pending
    runs as claimable tasks on a pluggable queue *transport* — a shared
    ``QUEUE_<name>/`` directory (atomic-rename leases, mtime heartbeats),
    a single-file SQLite WAL database (``BEGIN IMMEDIATE`` transactional
    claims), or a ``serve``d HTTP coordinator URL (workers need no shared
    mount) — any number of ``work`` processes claim them with
    heartbeat-based stale reclamation and corrupt-task quarantine, and
    ``collect`` merges the per-worker shards into a BENCH byte-identical
    to a single-process run;
``transports``
    the :class:`Transport` protocol (enqueue/claim/heartbeat/release/
    reclaim/append/enumerate/status) and its directory, SQLite and HTTP
    implementations;
``workloads``
    the declared sweeps (including the migrated ``benchmarks/bench_*``
    workloads) and the per-workload analysis directives (which grid axes
    are statistical vs structural, which model to fit);
``analysis``
    statistics post-processing over BENCH rows — Wilson-interval cell
    tables, ``1-(1-p)^r`` saturation fits, strategy-crossover location —
    persisted deterministically as ``ANALYSIS_<name>.json``;
``cli``
    the ``python -m repro.experiments run/list/report/summarise/plot``
    entry point.

A sweep executed with ``workers=1`` and ``workers=N`` at the same seed
produces byte-identical result rows: every run's randomness derives from its
own :class:`numpy.random.SeedSequence`-spawned seed, not from execution
order.
"""

from repro.experiments.analysis import (
    analyse,
    analysis_path,
    fit_saturation,
    locate_crossover,
    wilson_interval,
    write_analysis,
)
from repro.experiments.distributed import (
    QueueBusy,
    QueueCorrupt,
    QueueIncomplete,
    collect_queue,
    enqueue_sweep,
    queue_db_path,
    queue_dir,
    resolve_transport,
    work_queue,
)
from repro.experiments.registry import build_instance, families
from repro.experiments.results import (
    LedgerDivergence,
    RunRecord,
    SpecMismatch,
    aggregate_records,
    bench_payload,
    check_journal_agreement,
    journal_path,
    load_bench,
    load_journal,
    load_validated_bench,
    merge_journal_records,
    merge_record_streams,
    resolve_bench,
    write_bench,
)
from repro.experiments.transports import (
    DirectoryTransport,
    HttpTransport,
    SqliteTransport,
    Transport,
)
from repro.experiments.runner import (
    SweepAborted,
    execute_batch,
    execute_run,
    execute_run_safe,
    run_sweep,
)
from repro.experiments.specs import DEFAULT_SEED, RunSpec, SamplerSpec, SweepSpec
from repro.experiments.workloads import (
    ANALYSES,
    WORKLOADS,
    AnalysisDirective,
    axis_roles,
    get_analysis,
    get_workload,
)

__all__ = [
    "ANALYSES",
    "DEFAULT_SEED",
    "AnalysisDirective",
    "DirectoryTransport",
    "HttpTransport",
    "LedgerDivergence",
    "QueueBusy",
    "QueueCorrupt",
    "QueueIncomplete",
    "RunSpec",
    "SqliteTransport",
    "Transport",
    "SamplerSpec",
    "SpecMismatch",
    "SweepAborted",
    "SweepSpec",
    "RunRecord",
    "WORKLOADS",
    "aggregate_records",
    "analyse",
    "analysis_path",
    "axis_roles",
    "bench_payload",
    "build_instance",
    "check_journal_agreement",
    "collect_queue",
    "enqueue_sweep",
    "execute_batch",
    "execute_run",
    "execute_run_safe",
    "families",
    "fit_saturation",
    "get_analysis",
    "get_workload",
    "journal_path",
    "load_bench",
    "load_journal",
    "load_validated_bench",
    "locate_crossover",
    "merge_journal_records",
    "merge_record_streams",
    "queue_db_path",
    "queue_dir",
    "resolve_bench",
    "resolve_transport",
    "run_sweep",
    "wilson_interval",
    "work_queue",
    "write_analysis",
    "write_bench",
]
