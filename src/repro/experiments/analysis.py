"""Statistics post-processing over BENCH rows (``summarise`` / ``plot``).

PR 3 produced the raw material — ``BENCH_success-vs-rounds*.json`` and
``BENCH_strategy-crossover.json`` hold per-run rows — and this module turns
them into the paper's headline empirical claims:

* **cells** — rows grouped by their grid-axis values (``seed``/``repeat``
  never enter the key), each cell carrying its success rate with a *Wilson
  score* confidence interval.  A cell with no completed runs reports
  ``success_rate: None`` — never a fabricated point estimate;
* **saturation fits** — the ``success-vs-rounds*`` families are fitted per
  structural slice to the repeated-trial model ``s(r) = 1 - (1-p)^r``
  (success probability after ``r`` independent rounds each succeeding with
  probability ``p``) by deterministic weighted least squares, reporting the
  fitted ``p`` and per-point residuals;
* **crossover location** — for ``strategy-crossover``, the mean query cost
  of the two strategies is interpolated along the group-size axis to the
  point where the curves intersect, with an interval propagated from the
  per-cell standard errors.

Everything is deterministic and dependency-free (no ``scipy``): the fit
minimises over ``p`` with a fixed coarse scan plus golden-section
refinement, floats are rounded to 12 significant digits before
serialisation, and ``write_analysis`` emits ``ANALYSIS_<name>.json``
atomically with sorted keys — the same BENCH input yields byte-identical
output on every rerun and machine (the CI ``analysis-smoke`` job asserts
this).  Only basenames of source files are recorded (path-normalised rows,
as with the PR 3 tracebacks).

The human-facing renderers (`format_table`, `format_summary`,
`ascii_plot`, `render_svg`) are pure functions of the analysis payload, so
``plot`` output is exactly as reproducible as the JSON.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.blackbox.noise import NoiseSpec
from repro.experiments.results import _safe_name, atomic_write_json
from repro.experiments.workloads import AnalysisDirective, axis_roles, get_analysis

__all__ = [
    "ANALYSIS_VERSION",
    "DEFAULT_Z",
    "analyse",
    "analysis_path",
    "ascii_plot",
    "directive_for",
    "fit_saturation",
    "format_summary",
    "format_table",
    "group_cells",
    "locate_crossover",
    "render_svg",
    "wilson_interval",
    "write_analysis",
]

#: Schema version of ``ANALYSIS_<name>.json``; bumped on shape changes so the
#: CI smoke job catches drift instead of silently comparing unlike files.
ANALYSIS_VERSION = 1

#: The 95% normal quantile used for every interval in the file.  A fixed
#: constant (not a CLI knob) keeps the ANALYSIS output a pure function of
#: the BENCH input.
DEFAULT_Z = 1.96


def _round(value: float) -> float:
    """12-significant-digit rounding: stable bytes without visible loss."""
    return float(f"{float(value):.12g}")


def _cell_key(params: Dict[str, object]) -> str:
    return json.dumps(params, sort_keys=True, default=list)


def _ordered_rows(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """The payload rows in canonical ``(index, seed)`` order.

    Every row consumer sorts first, so the analysis is a pure function of
    the row *set* — invariant under any permutation of the rows on disk
    (shard merges and journal replays must not change a single statistic).
    BENCH files already store index-sorted rows, so the committed goldens
    are unaffected.
    """
    return sorted(
        payload.get("rows", []),
        key=lambda row: (int(row.get("index", 0)), int(row.get("seed", 0))),
    )


# ---------------------------------------------------------------------------
# Wilson score intervals and the cell table
# ---------------------------------------------------------------------------


def wilson_interval(successes: int, runs: int, z: float = DEFAULT_Z) -> Optional[Tuple[float, float]]:
    """The Wilson score interval for ``successes`` out of ``runs`` trials.

    Unlike the normal approximation it behaves at the edges — 0/N yields a
    nonzero upper bound and N/N a sub-1 lower bound, which is exactly what
    small sweep cells need.  ``runs == 0`` has no estimate at all: ``None``,
    never a fabricated interval.
    """
    if runs <= 0:
        return None
    if not 0 <= successes <= runs:
        raise ValueError(f"successes must be within [0, runs]; got {successes}/{runs}")
    phat = successes / runs
    z2 = z * z
    denom = 1.0 + z2 / runs
    centre = phat + z2 / (2.0 * runs)
    margin = z * math.sqrt(phat * (1.0 - phat) / runs + z2 / (4.0 * runs * runs))
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    return (_round(low), _round(high))


def group_cells(payload: Dict[str, object], z: float = DEFAULT_Z) -> List[Dict[str, object]]:
    """Group rows into per-grid-point cells with success statistics.

    The cell key is the row's ``params`` — the grid axes and nothing else;
    ``seed``, ``repeat`` and ``index`` never reach the key, so repeats of
    one grid point aggregate into one cell.  Only ``status="ok"`` rows
    enter the success statistics; errored rows are tallied per cell in
    ``errors``.  A cell whose runs all errored reports ``success_rate:
    None`` with no interval.  Cells appear in first-row order after the
    canonical ``(index, seed)`` sort — the deterministic grid expansion
    order, whatever order the rows were stored in.
    """
    cells: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for row in _ordered_rows(payload):
        params = dict(row.get("params", {}))
        key = _cell_key(params)
        if key not in cells:
            cells[key] = {
                "params": params,
                "runs": 0,
                "successes": 0,
                "errors": 0,
                "_query_sums": {},
            }
            order.append(key)
        cell = cells[key]
        if row.get("status") == "error":
            cell["errors"] += 1
            continue
        cell["runs"] += 1
        cell["successes"] += 1 if row.get("success") else 0
        for name, count in dict(row.get("query_report", {})).items():
            cell["_query_sums"][name] = cell["_query_sums"].get(name, 0) + int(count)
    out: List[Dict[str, object]] = []
    for key in order:
        cell = cells[key]
        runs, successes = cell["runs"], cell["successes"]
        interval = wilson_interval(successes, runs, z=z)
        out.append(
            {
                "params": cell["params"],
                "runs": runs,
                "successes": successes,
                "errors": cell["errors"],
                "success_rate": _round(successes / runs) if runs else None,
                "wilson_low": interval[0] if interval else None,
                "wilson_high": interval[1] if interval else None,
                "mean_queries": {
                    name: _round(total / runs)
                    for name, total in sorted(cell["_query_sums"].items())
                }
                if runs
                else {},
            }
        )
    return out


# ---------------------------------------------------------------------------
# The saturation model:  s(r) = 1 - (1 - p)^r
# ---------------------------------------------------------------------------


def _saturation_sse(p: float, points: Sequence[Tuple[float, int, int]]) -> float:
    total = 0.0
    for x, successes, runs in points:
        predicted = 1.0 - (1.0 - p) ** x
        residual = successes / runs - predicted
        total += runs * residual * residual
    return total


def fit_saturation(points: Sequence[Tuple[float, int, int]]) -> Optional[Dict[str, object]]:
    """Weighted least-squares fit of ``(x, successes, runs)`` points to
    ``s(x) = 1 - (1-p)^x``.

    ``p`` is the fitted per-round success probability.  The minimiser is a
    fixed 2000-point coarse scan of ``p`` over (0, 1) followed by 100
    golden-section iterations on the bracketing interval — deterministic to
    the bit, no ``scipy``.  Needs at least two points with completed runs;
    returns ``None`` otherwise.
    """
    # Successes stay float: real rows pass integer counts, but synthetic
    # callers may pass exact expected counts — truncating would bias the fit.
    usable = [(float(x), float(s), int(n)) for x, s, n in points if n > 0]
    if len(usable) < 2:
        return None
    usable.sort(key=lambda point: point[0])
    eps = 1e-9
    steps = 2000
    best_index = min(
        range(1, steps),
        key=lambda i: _saturation_sse(i / steps, usable),
    )
    low = max(eps, (best_index - 1) / steps)
    high = min(1.0 - eps, (best_index + 1) / steps)
    # Golden-section search on the bracket (SSE is smooth in p).
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = low, high
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = _saturation_sse(c, usable), _saturation_sse(d, usable)
    for _ in range(100):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = _saturation_sse(c, usable)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = _saturation_sse(d, usable)
    p = _round((a + b) / 2.0)
    fit_points = []
    for x, successes, runs in usable:
        rate = successes / runs
        fitted = 1.0 - (1.0 - p) ** x
        fit_points.append(
            {
                "x": _round(x),
                "runs": runs,
                "rate": _round(rate),
                "fitted": _round(fitted),
                "residual": _round(rate - fitted),
            }
        )
    return {
        "model": "1-(1-p)^r",
        "p": p,
        "sse": _round(_saturation_sse(p, usable)),
        "points": fit_points,
    }


# ---------------------------------------------------------------------------
# Crossover location
# ---------------------------------------------------------------------------


def _interp_zero(x0: float, y0: float, x1: float, y1: float, log_scale: bool) -> float:
    """The zero crossing of the segment ``(x0,y0)-(x1,y1)``; ``log_scale``
    interpolates in log2(x) — the natural scale of a group-order axis."""
    if log_scale:
        t0, t1 = math.log2(x0), math.log2(x1)
    else:
        t0, t1 = x0, x1
    t = t0 - y0 * (t1 - t0) / (y1 - y0)
    return 2.0 ** t if log_scale else t


def _band_crossing(
    xs: Sequence[float], diffs: Sequence[float], log_scale: bool
) -> Optional[float]:
    for i in range(len(xs) - 1):
        y0, y1 = diffs[i], diffs[i + 1]
        if y0 == 0.0:
            return xs[i]
        if (y0 < 0.0 < y1) or (y1 < 0.0 < y0):
            return _interp_zero(xs[i], y0, xs[i + 1], y1, log_scale)
    if diffs and diffs[-1] == 0.0:
        return xs[-1]
    return None


def locate_crossover(
    series: Dict[str, List[Tuple[float, float, float, int]]], z: float = DEFAULT_Z
) -> Optional[Dict[str, object]]:
    """Where two cost curves intersect, with an uncertainty interval.

    ``series`` maps each of exactly two series names (e.g. the two strategy
    values) to ``(x, mean_cost, standard_error, runs)`` points.  The
    difference curve ``cost(first) - cost(second)`` (names in sorted order)
    is interpolated to its zero crossing — in ``log2(x)`` when every x is
    positive, the natural scale for group orders.  The interval comes from
    crossing the ``diff ± z·SE(diff)`` bands (SEs add in quadrature); a
    band that never crosses within the measured range clamps to the range
    edge.  Returns ``None`` when the curves do not cross in range.
    """
    if len(series) != 2:
        return None
    first, second = sorted(series)
    by_x_first = {x: (mean, se) for x, mean, se, _ in series[first]}
    by_x_second = {x: (mean, se) for x, mean, se, _ in series[second]}
    xs = sorted(set(by_x_first) & set(by_x_second))
    if len(xs) < 2:
        return None
    log_scale = all(x > 0 for x in xs)
    diffs, ses = [], []
    for x in xs:
        mean_a, se_a = by_x_first[x]
        mean_b, se_b = by_x_second[x]
        diffs.append(mean_a - mean_b)
        ses.append(math.sqrt(se_a * se_a + se_b * se_b))
    centre = _band_crossing(xs, diffs, log_scale)
    if centre is None:
        return None
    lower_band = [d - z * s for d, s in zip(diffs, ses)]
    upper_band = [d + z * s for d, s in zip(diffs, ses)]
    candidates = []
    for band in (lower_band, upper_band):
        crossing = _band_crossing(xs, band, log_scale)
        # A band that stays one-signed over the range means the uncertainty
        # reaches past the measured x values: clamp to the range edge on
        # the side the centre crossing leans toward.
        candidates.append(crossing if crossing is not None else (xs[0] if band[0] * diffs[0] <= 0 else xs[-1]))
    low, high = sorted(candidates)
    return {
        "series": [first, second],
        "x": _round(centre),
        "low": _round(low),
        "high": _round(high),
        "scale": "log2" if log_scale else "linear",
        "points": [
            {
                "x": _round(x),
                first: _round(by_x_first[x][0]),
                second: _round(by_x_second[x][0]),
                "diff": _round(d),
                "diff_se": _round(s),
            }
            for x, d, s in zip(xs, diffs, ses)
        ],
    }


# ---------------------------------------------------------------------------
# The full analysis
# ---------------------------------------------------------------------------


def directive_for(payload: Dict[str, object]) -> AnalysisDirective:
    """The analysis directive of a payload: the declared one when the sweep
    name is a known workload, else a default derived from the grid shape
    (a ``confidence`` axis ⇒ saturation, a two-valued ``strategy`` axis
    over a structural axis ⇒ crossover, anything else ⇒ the cell table).
    """
    spec = payload["sweep"]
    declared = get_analysis(str(spec.get("name", "")))
    if declared is not None:
        return declared
    grid = dict(spec.get("grid", {}))
    roles = axis_roles(list(grid))
    if "confidence" in grid and len(grid["confidence"]) >= 2:
        return AnalysisDirective(str(spec.get("name", "")), "saturation", x_axis="confidence")
    if "strategy" in grid and len(grid["strategy"]) == 2 and roles["structural"]:
        return AnalysisDirective(
            str(spec.get("name", "")),
            "crossover",
            x_axis=roles["structural"][0],
            series_axis="strategy",
        )
    axes = roles["structural"] + roles["statistical"]
    return AnalysisDirective(str(spec.get("name", "")), "table", x_axis=axes[0] if axes else "")


def _slice_key(params: Dict[str, object], exclude: Sequence[str]) -> Dict[str, object]:
    return {key: value for key, value in params.items() if key not in exclude}


def _numeric(value) -> Optional[float]:
    if isinstance(value, str):
        # A noise-spec string ("oracle-flip(0.25)") plots as its ε — this is
        # what makes the reserved ``noise`` axis a numeric x-axis for tables
        # and fits.  Other strings ("hidden_normal", ...) stay non-numeric.
        spec = NoiseSpec.try_parse(value)
        return float(spec.epsilon) if spec is not None else None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _saturation_fits(
    cells: Sequence[Dict[str, object]], x_axis: str
) -> List[Dict[str, object]]:
    slices: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for cell in cells:
        x = _numeric(cell["params"].get(x_axis))
        if x is None or not cell["runs"]:
            continue
        group = _slice_key(cell["params"], (x_axis,))
        key = _cell_key(group)
        if key not in slices:
            slices[key] = {"group": group, "points": []}
            order.append(key)
        slices[key]["points"].append((x, cell["successes"], cell["runs"]))
    fits = []
    for key in order:
        entry = slices[key]
        fit = fit_saturation(entry["points"])
        if fit is not None:
            fits.append({"group": entry["group"], **fit})
    return fits


def _cost_series(
    payload: Dict[str, object],
    x_axis: str,
    series_axis: str,
    cost_keys: Sequence[str],
) -> Tuple[Dict[str, Dict[str, List[Tuple[float, float, float, int]]]], Dict[str, Dict[str, object]]]:
    """Per structural slice, the ``(x, mean, SE, runs)`` cost points of each
    series value, from ``status="ok"`` rows.  SE is the sample standard
    error of the per-run cost over a cell's repeats (0 for a single run)."""
    samples: Dict[str, Dict[str, Dict[float, List[float]]]] = {}
    slice_groups: Dict[str, Dict[str, object]] = {}
    for row in _ordered_rows(payload):
        if row.get("status") == "error":
            continue
        params = dict(row.get("params", {}))
        x = _numeric(params.get(x_axis))
        series_value = params.get(series_axis)
        if x is None or series_value is None:
            continue
        group = _slice_key(params, (x_axis, series_axis))
        group_key = _cell_key(group)
        slice_groups[group_key] = group
        cost = float(sum(int(row.get("query_report", {}).get(key, 0)) for key in cost_keys))
        samples.setdefault(group_key, {}).setdefault(str(series_value), {}).setdefault(
            x, []
        ).append(cost)
    out: Dict[str, Dict[str, List[Tuple[float, float, float, int]]]] = {}
    for group_key, by_series in samples.items():
        out[group_key] = {}
        for series_value, by_x in by_series.items():
            points = []
            for x in sorted(by_x):
                costs = by_x[x]
                k = len(costs)
                mean = sum(costs) / k
                if k > 1:
                    variance = sum((c - mean) ** 2 for c in costs) / (k - 1)
                    se = math.sqrt(variance / k)
                else:
                    se = 0.0
                points.append((x, mean, se, k))
            out[group_key][series_value] = points
    return out, slice_groups


def analyse(
    payload: Dict[str, object],
    source: Optional[str] = None,
    directive: Optional[AnalysisDirective] = None,
    z: float = DEFAULT_Z,
) -> Dict[str, object]:
    """The full ``ANALYSIS_<name>.json`` payload of a validated BENCH payload.

    Pure and deterministic: no timestamps, no absolute paths (``source`` is
    recorded as its basename), floats rounded before serialisation.  The
    caller is expected to have loaded ``payload`` through
    ``load_validated_bench`` so rows agree with the spec header.
    """
    directive = directive or directive_for(payload)
    spec = payload["sweep"]
    grid = dict(spec.get("grid", {}))
    cells = group_cells(payload, z=z)
    errors = sum(cell["errors"] for cell in cells)
    analysis: Dict[str, object] = {
        "analysis_version": ANALYSIS_VERSION,
        "z": z,
        "source": os.path.basename(source) if source else None,
        "sweep": {
            "name": spec.get("name"),
            "family": spec.get("family"),
            "seed": spec.get("seed"),
            "grid": grid,
            "repeats": spec.get("repeats"),
        },
        "kind": directive.kind,
        "axes": {
            **axis_roles(list(grid)),
            "x": directive.x_axis or None,
            "series": directive.series_axis,
        },
        "runs": sum(cell["runs"] for cell in cells),
        "errors": errors,
        "cells": cells,
        "fits": [],
        "crossover": None,
    }
    if directive.kind == "saturation" and directive.x_axis:
        analysis["fits"] = _saturation_fits(cells, directive.x_axis)
    elif directive.kind == "crossover" and directive.x_axis and directive.series_axis:
        series_by_slice, slice_groups = _cost_series(
            payload, directive.x_axis, directive.series_axis, directive.cost_keys
        )
        crossovers = []
        for group_key in sorted(series_by_slice):
            located = locate_crossover(series_by_slice[group_key], z=z)
            if located is not None:
                located["group"] = slice_groups[group_key]
                located["cost_keys"] = list(directive.cost_keys)
                located["x_axis"] = directive.x_axis
                crossovers.append(located)
        # One structural slice is the common case (strategy-crossover has
        # none besides x); keep the first as the headline, all in "fits"-like
        # completeness under "crossovers".
        analysis["crossover"] = crossovers[0] if crossovers else None
        analysis["crossovers"] = crossovers
    return analysis


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


def analysis_path(out_dir: str, name: str) -> str:
    # The same sanitiser as bench_path, so BENCH/ANALYSIS files pair up.
    return os.path.join(out_dir, f"ANALYSIS_{_safe_name(str(name))}.json")


def write_analysis(out_dir: str, name: str, analysis: Dict[str, object]) -> str:
    """Atomically write ``ANALYSIS_<name>.json`` (temp file + ``os.replace``),
    sorted keys — byte-identical across reruns on the same BENCH input."""
    return atomic_write_json(analysis_path(out_dir, name), analysis)


# ---------------------------------------------------------------------------
# Human-readable rendering: table, summary, ASCII plot, SVG
# ---------------------------------------------------------------------------


def _format_params(params: Dict[str, object]) -> str:
    return ", ".join(f"{key}={value}" for key, value in sorted(params.items())) or "-"


def format_table(analysis: Dict[str, object]) -> str:
    """The per-cell success table: rate and Wilson interval per grid point."""
    lines = [
        f"  {'params':<36}  {'ok':>5}  {'err':>4}  {'rate':>6}  {'95% Wilson CI':<18}"
    ]
    for cell in analysis["cells"]:
        rate = cell["success_rate"]
        rate_text = "  n/a" if rate is None else f"{rate:6.3f}"
        if cell["wilson_low"] is None:
            interval = "(no completed runs)"
        else:
            interval = f"[{cell['wilson_low']:.3f}, {cell['wilson_high']:.3f}]"
        lines.append(
            f"  {_format_params(cell['params']):<36.36}  "
            f"{cell['successes']}/{cell['runs']:<3}  {cell['errors']:>4}  "
            f"{rate_text}  {interval:<18}"
        )
    return "\n".join(lines)


def format_summary(analysis: Dict[str, object]) -> str:
    """The headline lines: fitted saturation parameters and/or crossover."""
    lines: List[str] = []
    for fit in analysis.get("fits", []):
        residuals = max((abs(point["residual"]) for point in fit["points"]), default=0.0)
        lines.append(
            f"  saturation fit {_format_params(fit['group'])}: "
            f"s(r) = 1-(1-p)^r with p = {fit['p']:.4f} "
            f"(sse {fit['sse']:.5f}, max |residual| {residuals:.3f}, "
            f"{len(fit['points'])} points)"
        )
    crossover = analysis.get("crossover")
    if crossover is not None:
        first, second = crossover["series"]
        lines.append(
            f"  crossover {first} vs {second} on {crossover['x_axis']}: "
            f"cost curves intersect at {crossover['x_axis']} ≈ {crossover['x']:.2f} "
            f"(95% interval [{crossover['low']:.2f}, {crossover['high']:.2f}], "
            f"{crossover['scale']} interpolation of "
            f"{'+'.join(crossover['cost_keys'])})"
        )
    elif analysis.get("kind") == "crossover":
        lines.append("  crossover: the cost curves do not intersect in the measured range")
    if not lines:
        lines.append("  (cell table only; no declared fit for this sweep)")
    return "\n".join(lines)


def _plot_series(analysis: Dict[str, object]) -> Tuple[str, str, Dict[str, List[Tuple[float, float]]]]:
    """The (x label, y label, series) to plot for an analysis payload.

    Saturation/table kinds plot success rate per structural slice along the
    x axis; crossover kinds plot mean query cost per strategy series.
    """
    x_axis = analysis["axes"].get("x") or ""
    crossover = analysis.get("crossover")
    if analysis["kind"] == "crossover" and crossover is not None:
        first, second = crossover["series"]
        series = {
            first: [(point["x"], point[first]) for point in crossover["points"]],
            second: [(point["x"], point[second]) for point in crossover["points"]],
        }
        return crossover["x_axis"], "mean queries", series
    series: Dict[str, List[Tuple[float, float]]] = {}
    for cell in analysis["cells"]:
        x = _numeric(cell["params"].get(x_axis))
        if x is None or cell["success_rate"] is None:
            continue
        label = _format_params(_slice_key(cell["params"], (x_axis,)))
        series.setdefault(label, []).append((x, cell["success_rate"]))
    for points in series.values():
        points.sort()
    return x_axis, "success rate", series


_MARKERS = "ox+*#@%&"


def ascii_plot(analysis: Dict[str, object], width: int = 64, height: int = 16) -> str:
    """A dependency-free character plot of the analysis' headline curves."""
    x_label, y_label, series = _plot_series(analysis)
    if not series or all(len(points) == 0 for points in series.values()):
        return "  (nothing to plot: no completed runs)"
    xs = sorted({x for points in series.values() for x, _ in points})
    ys = [y for points in series.values() for _, y in points]
    y_min, y_max = min(ys), max(ys)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_positions = {x: (i * (width - 1)) // max(1, len(xs) - 1) for i, x in enumerate(xs)}
    grid = [[" "] * width for _ in range(height)]
    for index, (label, points) in enumerate(sorted(series.items())):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            col = x_positions[x]
            row = int(round((y_max - y) / (y_max - y_min) * (height - 1)))
            grid[row][col] = marker
    lines = [f"  {y_label} vs {x_label}"]
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_max:8.2f}"
        elif index == height - 1:
            label = f"{y_min:8.2f}"
        else:
            label = " " * 8
        lines.append(f"  {label} |{''.join(row)}|")
    axis = [" "] * width
    for x in xs:
        axis[x_positions[x]] = "+"
    lines.append(f"  {'':8} +{''.join(axis)}+")
    lines.append(f"  {'':8}  x ({x_label}) ticks: {', '.join(f'{x:g}' for x in xs)}")
    for index, label in enumerate(sorted(series)):
        lines.append(f"  {'':8}  {_MARKERS[index % len(_MARKERS)]} = {label}")
    return "\n".join(lines)


def render_svg(analysis: Dict[str, object], width: int = 640, height: int = 400) -> str:
    """A dependency-free SVG of the headline curves (polylines + markers)."""
    x_label, y_label, series = _plot_series(analysis)
    margin = 56
    plot_w, plot_h = width - 2 * margin, height - 2 * margin
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<line x1="{margin}" y1="{height - margin}" x2="{width - margin}" '
        f'y2="{height - margin}" stroke="black"/>',
        f'<line x1="{margin}" y1="{margin}" x2="{margin}" y2="{height - margin}" '
        f'stroke="black"/>',
        f'<text x="{width // 2}" y="{height - 12}" text-anchor="middle" '
        f'font-size="13">{x_label}</text>',
        f'<text x="16" y="{height // 2}" text-anchor="middle" font-size="13" '
        f'transform="rotate(-90 16 {height // 2})">{y_label}</text>',
    ]
    colors = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]
    if series and any(points for points in series.values()):
        xs = sorted({x for points in series.values() for x, _ in points})
        ys = [y for points in series.values() for _, y in points]
        x_min, x_max = min(xs), max(xs)
        y_min, y_max = min(ys), max(ys)
        if x_max == x_min:
            x_max = x_min + 1.0
        if y_max == y_min:
            y_max = y_min + 1.0

        def sx(x: float) -> float:
            return margin + (x - x_min) / (x_max - x_min) * plot_w

        def sy(y: float) -> float:
            return height - margin - (y - y_min) / (y_max - y_min) * plot_h

        for x in xs:
            parts.append(
                f'<text x="{sx(x):.1f}" y="{height - margin + 16}" text-anchor="middle" '
                f'font-size="11">{x:g}</text>'
            )
        for value in (y_min, y_max):
            parts.append(
                f'<text x="{margin - 6}" y="{sy(value):.1f}" text-anchor="end" '
                f'font-size="11">{value:g}</text>'
            )
        for index, (label, points) in enumerate(sorted(series.items())):
            color = colors[index % len(colors)]
            coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
            parts.append(
                f'<polyline points="{coords}" fill="none" stroke="{color}" stroke-width="1.5"/>'
            )
            for x, y in points:
                parts.append(
                    f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" fill="{color}"/>'
                )
            parts.append(
                f'<text x="{width - margin - 4}" y="{margin + 14 + 16 * index}" '
                f'text-anchor="end" font-size="12" fill="{color}">{label}</text>'
            )
        crossover = analysis.get("crossover")
        if analysis["kind"] == "crossover" and crossover is not None and x_min <= crossover["x"] <= x_max:
            cx = sx(crossover["x"])
            parts.append(
                f'<line x1="{cx:.1f}" y1="{margin}" x2="{cx:.1f}" y2="{height - margin}" '
                f'stroke="#888" stroke-dasharray="4 3"/>'
            )
            parts.append(
                f'<text x="{cx:.1f}" y="{margin - 6}" text-anchor="middle" font-size="11" '
                f'fill="#555">crossover ≈ {crossover["x"]:.1f}</text>'
            )
    else:
        parts.append(
            f'<text x="{width // 2}" y="{height // 2}" text-anchor="middle" '
            f'font-size="13">no completed runs</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"
