"""The fault-tolerant, resumable process-pool sweep runner.

``execute_run`` is the complete life of one experiment run — rebuild the
instance from its descriptor, solve, verify, record — and is a module-level
function of one picklable argument, so it runs unchanged inline or on a
``ProcessPoolExecutor`` worker.  Engines, oracles and counters are created
inside the run; workers share no mutable state, and the per-run query
reports merge afterwards through ``QueryCounter`` addition.

Fault tolerance: the pool executes :func:`execute_run_safe`, which converts
a raising run into a structured :class:`RunRecord` with ``status="error"``
and the formatted traceback — one bad instance never kills the sweep.
``max_failures`` caps the tolerance: once more than that many runs have
errored, :class:`SweepAborted` is raised (everything completed so far is
journaled, so ``--resume`` picks up the remainder after a fix).

Checkpointing: every completed record is appended to a
``BENCH_<name>.partial.jsonl`` journal as it arrives; ``resume=True`` loads
the journal, skips already-journaled ``(index, seed)`` rows and executes
only the remainder.  The final ``rows`` are byte-identical to an
uninterrupted run at the same seed, because each run's randomness derives
from its own per-index seed and the journal round-trips the deterministic
row content exactly.

Determinism: a run's randomness comes only from ``RunSpec.seed`` (one
generator drives instance construction and Fourier sampling, in that fixed
order), so results are independent of worker count and scheduling.  Pool
results are collected with ``Executor.map``, which preserves input order.
"""

from __future__ import annotations

import os
import re
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blackbox.noise import NoiseSpec, install_noise
from repro.blackbox.oracle import BlackBoxGroup
from repro.core.solver import solve_hsp
from repro.experiments.registry import build_instance
from repro.experiments.results import (
    RunRecord,
    append_journal,
    bench_payload,
    journal_path,
    load_journal,
    remove_journal,
    rewrite_journal,
    write_bench,
    write_journal_header,
)
from repro.experiments.specs import RunSpec, SamplerSpec, SweepSpec
from repro.groups.engine import engine_cache, engine_disabled
from repro.obs import metrics as obs_metrics
from repro import obs
from repro.quantum.sampling import FourierSampler

__all__ = [
    "SweepAborted",
    "execute_batch",
    "execute_run",
    "execute_run_safe",
    "make_sampler",
    "run_sweep",
]

#: Recognised ``solver_options`` keys.  Strategy, sampler and engine use are
#: first-class ``SweepSpec`` fields; instance parameters belong in the grid;
#: structural promises belong to the registry family.  Validated here so a
#: typo fails the sweep with a clear message instead of a worker TypeError.
#: ``confidence`` tunes the Fourier-sampling stopping rule (success
#: probability versus rounds); ``engine_cache_dir`` persists Cayley tables;
#: ``noise`` is a :mod:`repro.blackbox.noise` spec string installing a
#: corruption channel on the oracle or sampler.
SUPPORTED_SOLVER_OPTIONS = frozenset({"engine_cache_dir", "confidence", "noise"})


class SweepAborted(RuntimeError):
    """Raised when a sweep exceeds its ``max_failures`` error budget.

    The journal keeps every record completed before the abort (error rows
    included), so a ``--resume`` after fixing the cause re-executes only the
    remainder — journaled *error* rows are retried on resume (see
    :func:`run_sweep`), which is what makes recovery from a transient cause
    possible at all.
    """

    def __init__(self, sweep: str, failures: int, max_failures: int, journal: Optional[str]):
        self.sweep = sweep
        self.failures = failures
        self.max_failures = max_failures
        self.journal = journal
        hint = f"; journal kept at {journal}" if journal else ""
        super().__init__(
            f"sweep {sweep!r} aborted: {failures} failed run(s) exceed "
            f"--max-failures {max_failures}{hint}"
        )


def make_sampler(spec: SamplerSpec, rng: np.random.Generator, pool=None) -> FourierSampler:
    """The Fourier sampler described by ``spec``, seeded with ``rng``.

    ``pool`` is the executor for shard tasks when ``spec.shards`` is set;
    ``None`` runs the shard blocks inline with identical samples and
    accounting.  Pool-executed runs always shard inline — a worker process
    must not spawn a nested pool — so a pool only reaches the sampler on the
    ``workers=1`` path (see :func:`run_sweep`).
    """
    return FourierSampler(
        backend=spec.backend,
        rng=rng,
        statevector_limit=spec.statevector_limit,
        batch=spec.batch,
        shards=spec.shards,
        shard_pool=pool,
    )


def execute_run(run: RunSpec, shard_pool=None) -> RunRecord:
    """Execute one run descriptor; raises on failure (see ``execute_run_safe``).

    Telemetry is sidecar-only: the ``run`` span, the per-run metrics delta
    event and the optional cProfile dump land in their own files and never
    touch the returned record, so rows are byte-identical with observability
    on or off.
    """
    with obs.span(
        "run", sweep=run.sweep, index=run.index, seed=run.seed, family=run.family
    ) as run_span, obs.profiled(f"run-{run.sweep}-{run.index:04d}-{run.seed}"):
        metrics_before = (
            obs.get_metrics().snapshot() if obs_metrics.collecting() else None
        )
        record = _execute_run_impl(run, shard_pool=shard_pool)
        run_span.set(strategy=record.strategy, success=record.success)
        if metrics_before is not None:
            obs.event(
                "run_metrics",
                sweep=run.sweep,
                index=run.index,
                seed=run.seed,
                metrics=obs.get_metrics().diff(metrics_before),
            )
    return record


def _execute_run_impl(run: RunSpec, shard_pool=None) -> RunRecord:
    rng = np.random.default_rng(run.seed)
    options = run.options_dict()
    unknown = set(options) - SUPPORTED_SOLVER_OPTIONS
    if unknown:
        raise ValueError(
            f"unsupported solver_options {sorted(unknown)}; supported: "
            f"{sorted(SUPPORTED_SOLVER_OPTIONS)} (instance parameters go in the "
            "grid, promises in the registry family)"
        )
    cache_dir = options.pop("engine_cache_dir", None)
    confidence = options.pop("confidence", None)
    noise = NoiseSpec.parse(options.pop("noise", "none"))
    if not run.engine:
        # The scalar baseline: no engines anywhere (a cache_dir option is
        # meaningless without an engine and is deliberately ignored).
        context = engine_disabled()
    elif cache_dir is not None:
        # Instance builders install engines implicitly while constructing
        # coset-label oracles; the context makes those installations back
        # their dense tables with the sweep's persistent cache.
        context = engine_cache(str(cache_dir))
    else:
        context = nullcontext()
    with context:
        instance = build_instance(run.family, run.instance_params(), rng)
        base = instance.group.group if isinstance(instance.group, BlackBoxGroup) else instance.group
        sampler = make_sampler(run.sampler, rng, pool=shard_pool)
        if noise is not None:
            # Channel randomness derives from the run seed through its own
            # domain-separated SeedSequence stream — the main ``rng`` above
            # is never consumed, so the ε=0 (uninstalled) rows are
            # byte-identical to a no-noise sweep by construction.
            install_noise(noise, instance, sampler, run.seed)
            obs.gauge("noise.epsilon", noise.epsilon)
        start = time.perf_counter()
        solution = solve_hsp(
            instance,
            strategy=run.strategy,
            sampler=sampler,
            use_engine=run.engine,
            confidence=confidence,
            noise=noise,
        )
        wall = time.perf_counter() - start
        if solution.status == "no_convergence":
            # The strategy failed gracefully under the corruption channel —
            # there is no candidate to verify.
            success = False
        else:
            # Verification runs against the ground truth (concrete group
            # arithmetic), never the corrupted oracle.
            success = instance.verify(solution.generators or [base.identity()])
    serialized = solution.to_json_dict(include_timing=False)
    return RunRecord(
        sweep=run.sweep,
        index=run.index,
        family=run.family,
        params=run.params_dict(),
        repeat=run.repeat,
        seed=run.seed,
        strategy=serialized["strategy"],
        success=bool(success),
        generators=serialized["generators"],
        query_report=serialized["query_report"],
        wall_time_seconds=wall,
        status=solution.status,
    )


#: ``File "<abs path>/module.py"`` -> ``File "module.py"`` in tracebacks: the
#: captured error text lands in the *deterministic* BENCH rows, which must
#: not vary with where the repo happens to be checked out.
_TRACEBACK_PATH = re.compile(r'(File ")([^"]*[/\\])([^"/\\]+")')


def _normalize_traceback(text: str) -> str:
    return _TRACEBACK_PATH.sub(r"\1\3", text)


def execute_run_safe(run: RunSpec, shard_pool=None) -> RunRecord:
    """The pool-side entry point: a raising run becomes an ``"error"`` record.

    Only ``Exception`` is converted — ``KeyboardInterrupt`` and other
    ``BaseException`` interruptions propagate, leaving the journal intact for
    a later ``--resume``.
    """
    try:
        return execute_run(run, shard_pool=shard_pool)
    except Exception:
        return RunRecord(
            sweep=run.sweep,
            index=run.index,
            family=run.family,
            params=run.params_dict(),
            repeat=run.repeat,
            seed=run.seed,
            strategy=run.strategy,
            success=False,
            generators=[],
            query_report={},
            wall_time_seconds=0.0,
            status="error",
            error=_normalize_traceback(traceback.format_exc()),
        )


def _obs_pool_init(trace_path: Optional[str], profile_dir: Optional[str]) -> None:
    """Pool-worker initializer: install the sweep's observability sinks.

    Runs once per worker process; the worker exits with the pool, so nothing
    is restored.  With both arguments ``None`` this is a no-op, which keeps a
    single code path for traced and untraced pools.
    """
    obs.configure(
        trace_path=trace_path,
        profile_dir=profile_dir,
        worker=f"pool-{os.getpid()}",
    )


def execute_batch(
    pending: Sequence[RunSpec],
    admit,
    workers: int = 1,
    sampler_shards: Optional[int] = None,
    over_budget=None,
    trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> bool:
    """The worker-agnostic task-execution core: run descriptors, sink records.

    Executes every descriptor in ``pending`` through
    :func:`execute_run_safe` — inline for ``workers <= 1``, on a bounded
    process-pool window otherwise — calling ``admit(record)`` as each record
    completes.  The caller owns everything else: journaling, BENCH
    persistence, failure accounting.  That split is what lets the same core
    drive both :func:`run_sweep` (admit = journal append + in-memory list)
    and other execution topologies that sink records elsewhere (the
    distributed queue runner journals to per-worker shards).

    ``over_budget`` is consulted after each admitted record; once it returns
    true, dispatching stops, already-executing pool runs are drained (and
    admitted — their work is real and must reach the ledger), and the batch
    reports incompletion by returning ``False``.  ``True`` means every
    pending descriptor was executed and admitted.

    ``sampler_shards`` is the inline path's sampler sharding: a single
    executor shared by every run of the batch (a pooled batch must not spawn
    nested pools, so it is ignored for ``workers > 1`` — see
    :func:`make_sampler`).

    ``trace``/``profile_dir`` configure observability inside pool worker
    processes (the caller configures its own process); both default to off.
    """
    over = over_budget if over_budget is not None else (lambda: False)
    if workers <= 1:
        # Inline execution is where a SamplerSpec with shards= gets a real
        # worker pool: one executor shared by every run of the batch.
        pool_context = (
            ProcessPoolExecutor(
                max_workers=int(sampler_shards),
                initializer=_obs_pool_init,
                initargs=(trace, profile_dir),
            )
            if sampler_shards is not None and sampler_shards > 1
            else nullcontext(None)
        )
        with pool_context as shard_pool:
            for run in pending:
                admit(execute_run_safe(run, shard_pool=shard_pool))
                if over():
                    return False
        return True
    # Bounded incremental submission: at most ~2x workers runs are ever
    # in flight, so an over-budget abort stops dispatching almost
    # immediately instead of waiting out an eagerly-submitted tail, and
    # every record that did complete is admitted before the abort
    # (records may arrive out of input order; rows are keyed and later
    # sorted by index, so the payload is unaffected).
    with ProcessPoolExecutor(
        max_workers=int(workers),
        initializer=_obs_pool_init,
        initargs=(trace, profile_dir),
    ) as pool:
        queue = list(reversed(list(pending)))
        in_flight = set()
        window = 2 * int(workers)
        while queue or in_flight:
            while queue and len(in_flight) < window:
                in_flight.add(pool.submit(execute_run_safe, queue.pop()))
            finished, in_flight = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in finished:
                admit(future.result())
            if over():
                for future in in_flight:
                    future.cancel()
                # Runs already executing cannot be cancelled; wait them
                # out and admit their records so the ledger does not lose
                # work that in fact completed.
                drained, _ = wait(in_flight)
                for future in drained:
                    if not future.cancelled():
                        admit(future.result())
                return False
    return True


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    out_dir: Optional[str] = ".",
    max_failures: Optional[int] = None,
    resume: bool = False,
    trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> Tuple[Optional[str], Dict[str, object]]:
    """Execute a sweep and persist its ``BENCH_<name>.json``.

    ``workers > 1`` fans the expanded run list out over a process pool; the
    rows of the resulting payload are byte-identical to a ``workers=1``
    execution of the same spec.  ``out_dir=None`` skips persistence (no
    BENCH file, no journal) and just returns the payload.

    ``max_failures=None`` (the default) captures every raising run as an
    ``status="error"`` row and finishes the sweep; an integer budget raises
    :class:`SweepAborted` once more than that many runs of *this attempt*
    have failed (a resumed attempt retries previously-errored runs, so the
    budget is fresh).

    ``resume=True`` replays the ``BENCH_<name>.partial.jsonl`` journal in
    ``out_dir``: journaled ``status="ok"`` rows are skipped; journaled
    *error* rows are **retried** together with the never-journaled
    remainder (a deterministic failure reproduces the identical error row,
    a transient one heals — which is the point of resuming after a fix).
    The journal is validated against ``spec`` and removed once the sweep
    completes and the BENCH file is written.

    ``trace`` appends JSONL span/metrics events (from this process and every
    pool worker) to the given sidecar path; ``profile_dir`` dumps one
    cProfile ``.pstats`` file per run.  Neither changes the journal or the
    BENCH payload in any byte.
    """
    runs = spec.expand()
    jpath: Optional[str] = None
    done: Dict[Tuple[int, int], RunRecord] = {}
    if out_dir is not None:
        jpath = journal_path(out_dir, spec.name)
        if resume and os.path.exists(jpath):
            journaled = load_journal(jpath, spec)
            done = {
                key: record for key, record in journaled.items() if record.status != "error"
            }
            # Compact the journal back to exactly the state being resumed
            # from: a torn trailing fragment from the crash is dropped (so
            # this attempt's appends start on a clean line), retried error
            # rows are removed, and a headerless file gets a valid header.
            rewrite_journal(jpath, spec, list(done.values()))
        else:
            # A fresh run starts a fresh journal; a stale one (different
            # earlier attempt, not being resumed) is overwritten by the
            # header write.
            write_journal_header(jpath, spec)

    pending = [run for run in runs if (run.index, run.seed) not in done]
    records: List[RunRecord] = list(done.values())
    failures = 0

    def admit(record: RunRecord) -> None:
        nonlocal failures
        if jpath is not None:
            append_journal(jpath, record)
        records.append(record)
        if record.status == "error":
            failures += 1

    def over_budget() -> bool:
        return max_failures is not None and failures > max_failures

    with obs.observed(trace_path=trace, profile_dir=profile_dir):
        with obs.span(
            "sweep", sweep=spec.name, runs=len(runs), pending=len(pending), workers=workers
        ):
            completed = execute_batch(
                pending,
                admit,
                workers=workers,
                sampler_shards=spec.sampler.shards,
                over_budget=over_budget,
                trace=trace,
                profile_dir=profile_dir,
            )
    if not completed:
        raise SweepAborted(spec.name, failures, max_failures, jpath)

    payload = bench_payload(spec, workers, records)
    if out_dir is None:
        return None, payload
    path = write_bench(out_dir, spec.name, payload)
    if jpath is not None:
        remove_journal(jpath)
    return path, payload
