"""The process-pool sweep runner.

``execute_run`` is the complete life of one experiment run — rebuild the
instance from its descriptor, solve, verify, record — and is a module-level
function of one picklable argument, so it runs unchanged inline or on a
``ProcessPoolExecutor`` worker.  Engines, oracles and counters are created
inside the run; workers share no mutable state, and the per-run query
reports merge afterwards through ``QueryCounter`` addition.

Determinism: a run's randomness comes only from ``RunSpec.seed`` (one
generator drives instance construction and Fourier sampling, in that fixed
order), so results are independent of worker count and scheduling.  Pool
results are collected with ``Executor.map``, which preserves input order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.blackbox.oracle import BlackBoxGroup
from repro.core.solver import solve_hsp
from repro.experiments.registry import build_instance
from repro.experiments.results import RunRecord, bench_payload, write_bench
from repro.experiments.specs import RunSpec, SamplerSpec, SweepSpec
from repro.groups.engine import engine_cache, engine_disabled
from repro.quantum.sampling import FourierSampler

__all__ = ["execute_run", "make_sampler", "run_sweep"]

#: Recognised ``solver_options`` keys.  Strategy, sampler and engine use are
#: first-class ``SweepSpec`` fields; instance parameters belong in the grid;
#: structural promises belong to the registry family.  Validated here so a
#: typo fails the sweep with a clear message instead of a worker TypeError.
SUPPORTED_SOLVER_OPTIONS = frozenset({"engine_cache_dir"})


def make_sampler(spec: SamplerSpec, rng: np.random.Generator, pool=None) -> FourierSampler:
    """The Fourier sampler described by ``spec``, seeded with ``rng``."""
    return FourierSampler(
        backend=spec.backend,
        rng=rng,
        statevector_limit=spec.statevector_limit,
        batch=spec.batch,
        shards=spec.shards,
        shard_pool=pool,
    )


def execute_run(run: RunSpec) -> RunRecord:
    """Execute one run descriptor; the worker-side entry point."""
    rng = np.random.default_rng(run.seed)
    options = run.options_dict()
    unknown = set(options) - SUPPORTED_SOLVER_OPTIONS
    if unknown:
        raise ValueError(
            f"unsupported solver_options {sorted(unknown)}; supported: "
            f"{sorted(SUPPORTED_SOLVER_OPTIONS)} (instance parameters go in the "
            "grid, promises in the registry family)"
        )
    cache_dir = options.pop("engine_cache_dir", None)
    if not run.engine:
        # The scalar baseline: no engines anywhere (a cache_dir option is
        # meaningless without an engine and is deliberately ignored).
        context = engine_disabled()
    elif cache_dir is not None:
        # Instance builders install engines implicitly while constructing
        # coset-label oracles; the context makes those installations back
        # their dense tables with the sweep's persistent cache.
        context = engine_cache(str(cache_dir))
    else:
        context = nullcontext()
    with context:
        instance = build_instance(run.family, run.params_dict(), rng)
        base = instance.group.group if isinstance(instance.group, BlackBoxGroup) else instance.group
        sampler = make_sampler(run.sampler, rng)
        start = time.perf_counter()
        solution = solve_hsp(
            instance,
            strategy=run.strategy,
            sampler=sampler,
            use_engine=run.engine,
        )
        wall = time.perf_counter() - start
        success = instance.verify(solution.generators or [base.identity()])
    serialized = solution.to_json_dict(include_timing=False)
    return RunRecord(
        sweep=run.sweep,
        index=run.index,
        family=run.family,
        params=run.params_dict(),
        repeat=run.repeat,
        seed=run.seed,
        strategy=serialized["strategy"],
        success=bool(success),
        generators=serialized["generators"],
        query_report=serialized["query_report"],
        wall_time_seconds=wall,
    )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    out_dir: Optional[str] = ".",
) -> Tuple[Optional[str], Dict[str, object]]:
    """Execute a sweep and persist its ``BENCH_<name>.json``.

    ``workers > 1`` fans the expanded run list out over a process pool; the
    rows of the resulting payload are byte-identical to a ``workers=1``
    execution of the same spec.  ``out_dir=None`` skips persistence and just
    returns the payload.
    """
    runs = spec.expand()
    if workers <= 1:
        records = [execute_run(run) for run in runs]
    else:
        with ProcessPoolExecutor(max_workers=int(workers)) as pool:
            records = list(pool.map(execute_run, runs))
    payload = bench_payload(spec, workers, records)
    if out_dir is None:
        return None, payload
    path = write_bench(out_dir, spec.name, payload)
    return path, payload
