"""The declared sweeps of the experiment suite.

These are the migrated workloads of ``benchmarks/bench_hidden_normal.py``
(E4), ``benchmarks/bench_extraspecial.py`` (E6) and
``benchmarks/bench_engine.py``, plus a fast ``smoke`` sweep for CI.  The
benchmark scripts are thin wrappers over these specs; ``python -m
repro.experiments list`` prints the catalogue and ``run <name>`` executes a
sweep reproducibly from the command line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.specs import RESERVED_GRID_KEYS, SamplerSpec, SweepSpec

__all__ = [
    "WORKLOADS",
    "ANALYSES",
    "ENGINE_COMPARISONS",
    "AnalysisDirective",
    "axis_roles",
    "declare",
    "declare_analysis",
    "get_analysis",
    "get_workload",
]

WORKLOADS: Dict[str, SweepSpec] = {}


def declare(spec: SweepSpec) -> SweepSpec:
    if spec.name in WORKLOADS:
        raise ValueError(f"duplicate workload name {spec.name!r}")
    WORKLOADS[spec.name] = spec
    return spec


def get_workload(name: str) -> SweepSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; declared workloads: {known}") from None


def axis_roles(grid_keys: Sequence[str]) -> Dict[str, List[str]]:
    """Split grid axes into *statistical* and *structural* roles.

    A statistical axis (the reserved solver keys: ``strategy``,
    ``confidence``, ``noise``) varies how an instance is *solved* — it
    changes the success statistics of runs over the same groups.  A structural axis
    (``n``, ``p``, ``moduli``, ...) changes the *instance itself*.  The
    analysis subsystem groups success-rate cells by the full grid point but
    fits curves along one axis per structural slice, so it needs to know
    which is which.
    """
    statistical = sorted(key for key in grid_keys if key in RESERVED_GRID_KEYS)
    structural = sorted(key for key in grid_keys if key not in RESERVED_GRID_KEYS)
    return {"statistical": statistical, "structural": structural}


@dataclass(frozen=True)
class AnalysisDirective:
    """How ``summarise``/``plot`` should post-process one workload's rows.

    ``kind`` selects the model: ``"saturation"`` fits success probability
    along ``x_axis`` to ``1-(1-p)^r`` per structural slice; ``"crossover"``
    interpolates where the mean query cost (the summed ``cost_keys``) of the
    two ``series_axis`` values intersects along ``x_axis``; ``"table"``
    computes the cell table (rates + Wilson intervals) only.
    """

    workload: str
    kind: str
    x_axis: str
    series_axis: Optional[str] = None
    cost_keys: Tuple[str, ...] = ("quantum_queries", "classical_queries")


ANALYSES: Dict[str, AnalysisDirective] = {}


def declare_analysis(directive: AnalysisDirective) -> AnalysisDirective:
    if directive.workload in ANALYSES:
        raise ValueError(f"duplicate analysis directive for {directive.workload!r}")
    if directive.kind not in ("saturation", "crossover", "table"):
        raise ValueError(f"unknown analysis kind {directive.kind!r}")
    ANALYSES[directive.workload] = directive
    return directive


def get_analysis(name: str) -> Optional[AnalysisDirective]:
    """The declared directive of a workload, or ``None`` (caller falls back
    to a structure-derived default, see ``analysis.directive_for``)."""
    return ANALYSES.get(name)


# -- CI smoke sweep -----------------------------------------------------------

declare(
    SweepSpec.from_grid(
        "smoke",
        "dihedral_rotation",
        {"n": [8, 16]},
        repeats=2,
        description="tiny 2-point hidden-normal sweep; the CI smoke workload",
    )
)

# -- fault-tolerance drill (CI interruption/resume coverage) -----------------

declare(
    SweepSpec.from_grid(
        "fault-smoke",
        "diagnostic_fault",
        {"n": [8], "fail": [False, True]},
        repeats=2,
        description="2 healthy + 2 deterministically failing runs; drives the "
        "error-capture, --max-failures and --resume CI checks",
    )
)

# -- distributed-queue drill (CI enqueue/work/collect coverage) --------------

declare(
    SweepSpec.from_grid(
        "queue-smoke",
        "dihedral_rotation",
        {"n": [8, 12, 16]},
        repeats=2,
        description="6-run sweep sized for the distributed queue drill: "
        "enqueue + N workers + collect must reproduce `run` byte-identically",
    )
)

# -- statistics workloads (success vs rounds, strategy crossover) ------------

declare(
    SweepSpec.from_grid(
        "success-vs-rounds",
        "dihedral_rotation",
        {"n": [16, 64], "confidence": [1, 2, 4, 8, 16]},
        repeats=8,
        description="success probability vs the Fourier-sampling stopping "
        "confidence (rounds) on Theorem 8 instances",
    )
)

declare(
    SweepSpec.from_grid(
        "success-vs-rounds-abelian",
        "abelian_random",
        {"moduli": [(16, 9, 5)], "confidence": [1, 2, 4, 8, 16]},
        repeats=8,
        description="success probability vs stopping confidence on random "
        "Abelian instances (Theorem 3)",
    )
)

declare(
    SweepSpec.from_grid(
        "strategy-crossover",
        "dihedral_rotation",
        {"n": [8, 16, 32, 64, 128], "strategy": ["hidden_normal", "classical"]},
        repeats=4,
        description="query-count crossover of the quantum Theorem 8 path vs "
        "the exhaustive classical baseline as |G| grows",
    )
)

# -- noise workloads (success vs corruption rate) ----------------------------

declare(
    SweepSpec.from_grid(
        "success-vs-noise",
        "dihedral_rotation",
        {
            "n": [16],
            "noise": [
                "oracle-flip(0)",
                "oracle-flip(0.1)",
                "oracle-flip(0.25)",
                "oracle-flip(0.5)",
                "oracle-flip(1)",
            ],
            "strategy": ["hidden_normal", "classical_adaptive"],
        },
        repeats=16,
        description="success probability vs oracle-flip corruption rate on a "
        "Theorem 8 instance; the quantum path against the honest adaptive "
        "classical baseline under the same channel",
    )
)

declare(
    SweepSpec.from_grid(
        "success-vs-noise-abelian",
        "abelian_random",
        {
            "moduli": [(16, 9, 5)],
            "noise": [
                "sample-depolarise(0)",
                "sample-depolarise(0.02)",
                "sample-depolarise(0.05)",
                "sample-depolarise(0.1)",
                "sample-depolarise(0.25)",
            ],
        },
        repeats=8,
        description="success probability vs Fourier-sample depolarisation on "
        "random Abelian instances (Theorem 3)",
    )
)

# How the statistics workloads are post-processed (`summarise`/`plot`): the
# success-vs-rounds sweeps fit the saturation model along the confidence
# axis per group size; strategy-crossover interpolates the query-cost
# intersection of the two strategies along the group-size axis.

declare_analysis(AnalysisDirective("success-vs-rounds", "saturation", x_axis="confidence"))
declare_analysis(AnalysisDirective("success-vs-rounds-abelian", "saturation", x_axis="confidence"))
declare_analysis(
    AnalysisDirective("strategy-crossover", "crossover", x_axis="n", series_axis="strategy")
)
# The noise sweeps tabulate rates + Wilson intervals over the ε axis (the
# analysis layer parses noise-spec strings to their numeric ε); the dihedral
# sweep additionally splits the table by strategy.
declare_analysis(
    AnalysisDirective("success-vs-noise", "table", x_axis="noise", series_axis="strategy")
)
declare_analysis(AnalysisDirective("success-vs-noise-abelian", "table", x_axis="noise"))

# -- E4: hidden normal subgroups (Theorem 8) ---------------------------------

declare(
    SweepSpec.from_grid(
        "hidden-normal-dihedral",
        "dihedral_rotation",
        {"n": [8, 32, 128, 512]},
        description="N = <r> in D_n: Abelian quotient Z_2, scaling in log |G|",
    )
)

declare(
    SweepSpec.from_grid(
        "hidden-normal-metacyclic",
        "metacyclic_core",
        {"pq": [(7, 3), (31, 5), (127, 7)]},
        description="N = Z_p hidden in Z_p : Z_q (solvable, Abelian quotient Z_q)",
    )
)

declare(
    SweepSpec.from_grid(
        "hidden-normal-symmetric",
        "symmetric_alternating",
        {"n": [4, 5, 6]},
        description="permutation groups: N = A_n hidden in S_n",
    )
)

declare(
    SweepSpec.from_grid(
        "hidden-normal-extraspecial-center",
        "extraspecial_center",
        {"p": [3, 5, 7]},
        description="the center of the extraspecial group of order p^3",
    )
)

declare(
    SweepSpec.from_grid(
        "hidden-normal-bounded-quotient",
        "dihedral_bounded_quotient",
        {"d": [3, 5, 7]},
        description="the Schreier path: <r^d> in D_{11d} with dihedral quotient",
    )
)

# -- E6: extraspecial p-groups (Theorem 11 / Corollary 12) -------------------

declare(
    SweepSpec.from_grid(
        "extraspecial-prime",
        "extraspecial_random",
        {"p": [3, 5, 7, 11, 13]},
        description="Corollary 12 sweep: random H, |G'| = p grows",
    )
)

declare(
    SweepSpec.from_grid(
        "extraspecial-two-generators",
        "extraspecial_random",
        {"p": [5], "generators": [2]},
        description="a larger hidden subgroup (two random generators) at p = 5",
    )
)

declare(
    SweepSpec.from_grid(
        "extraspecial-heisenberg",
        "extraspecial_random",
        {"p": [3], "rank": [1, 2, 3]},
        description="H_3(n) of order 3^{2n+1}: p fixed, log |G| grows with rank",
    )
)

# -- Theorem 3 / Theorem 13 coverage -----------------------------------------

declare(
    SweepSpec.from_grid(
        "abelian-random",
        "abelian_random",
        {"moduli": [(8, 9), (16, 9, 5), (32, 27)]},
        repeats=2,
        description="random Abelian HSP instances (Theorem 3)",
    )
)

declare(
    SweepSpec.from_grid(
        "wreath-theorem13",
        "wreath_random",
        {"k": [2, 3]},
        description="Z_2^k wr Z_2 with the Theorem 13 cyclic-quotient path",
    )
)

# -- engine-vs-scalar comparison pairs (bench_engine.py) ---------------------

#: Pairs of (engine configuration, scalar configuration) sweeps used by the
#: engine benchmark.  The scalar member disables the Cayley engine and the
#: batch sampler — the pre-engine execution profile — on identical instances
#: and seeds, so aggregate wall-clock ratios measure the engine alone.
ENGINE_COMPARISONS: List[Dict[str, str]] = []


def _declare_comparison(label: str, family: str, grid, repeats: int) -> None:
    engine_name = f"engine-{label}"
    scalar_name = f"scalar-{label}"
    declare(
        SweepSpec.from_grid(
            engine_name,
            family,
            grid,
            repeats=repeats,
            description=f"engine configuration of the {label} comparison",
        )
    )
    declare(
        SweepSpec.from_grid(
            scalar_name,
            family,
            grid,
            repeats=repeats,
            engine=False,
            sampler=SamplerSpec(batch=False),
            description=f"scalar (pre-engine) configuration of the {label} comparison",
        )
    )
    ENGINE_COMPARISONS.append({"label": label, "engine": engine_name, "scalar": scalar_name})


_declare_comparison("extraspecial", "extraspecial_random", {"p": [7]}, repeats=3)
_declare_comparison("hidden-normal", "dihedral_rotation", {"n": [128]}, repeats=3)

# -- scaling trajectory (bench_scaling.py, BENCH_scaling.json) ----------------

#: Axes of the dense-kernel scaling benchmark: per family, group sizes from
#: comfortably-enumerable up to well past the Cayley-table limit (dihedral
#: reaches |G| = 16384 and extraspecial |G| = 24389, an order of magnitude
#: beyond the largest group in any other committed BENCH).
#: ``bench_scaling.py`` times each point cold (fresh group, fresh engine,
#: fresh oracle caches) with the dense kernels on and with
#: :func:`repro.groups.engine.kernel_disabled` — the pre-kernel engine
#: path — and asserts the two query reports are identical per point.  The
#: first point of each family doubles as the CI ``scaling-smoke`` subset.
SCALING_AXES: List[Dict[str, object]] = [
    {"label": "dihedral", "family": "dihedral_rotation", "grid": {"n": [512, 2048, 8192]}},
    {"label": "metacyclic", "family": "metacyclic_core", "grid": {"pq": [(31, 5), (127, 7), (1999, 3)]}},
    {"label": "extraspecial", "family": "extraspecial_random", "grid": {"p": [7, 13, 29]}},
]

for _axis in SCALING_AXES:
    declare(
        SweepSpec.from_grid(
            f"scaling-{_axis['label']}",
            str(_axis["family"]),
            dict(_axis["grid"]),  # type: ignore[arg-type]
            repeats=1,
            description=f"scaling trajectory of the {_axis['label']} family "
            "(dense-kernel engine; timed against kernel_disabled() by bench_scaling.py)",
        )
    )
