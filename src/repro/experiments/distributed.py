"""The queue-backed distributed runner (``enqueue`` / ``work`` / ``collect``).

The PR 3 journal made run state externally visible; this module makes it the
*shared ledger* of a work queue, so any number of worker processes — on one
machine or on many — can execute one sweep cooperatively and the merged
result is testable to byte-identity against a single-process ``run``.

The coordination backend is pluggable (:mod:`repro.experiments.transports`):
tasks, leases and shard records are JSON round-trippable, so the lifecycle
here is written against the eight-operation
:class:`~repro.experiments.transports.base.Transport` protocol — enqueue,
claim, heartbeat, release, reclaim, shard append, shard enumerate, status —
and three backends ship:

* the **directory** transport (``QUEUE_<name>/`` of task files, atomic
  ``os.rename`` leases, mtime heartbeats, ``.jsonl`` shards) for any shared
  filesystem, NFS included;
* the **sqlite** transport (``QUEUE_<name>.sqlite``, WAL mode, ``BEGIN
  IMMEDIATE`` claim transactions over a pending/running/done status table,
  heartbeats as row-timestamp updates, shards as a records table keyed by
  worker id) for single-file queues on one host;
* the **http** transport (``http://coordinator:8765``), the client half of
  ``python -m repro.experiments serve QUEUE.sqlite`` — the same operations
  as JSON POSTs against a coordinator wrapping a SQLite queue, so workers
  need only a URL, not a shared mount (no auth; trusted networks only).

The lease protocol, for either backend:

* **claim** — exactly one contender wins each task; the losers move on.  A
  task whose payload will not parse is *quarantined* at claim time (never
  leased, reported once) — a worker must never die holding the lease of an
  unknowable task, or the lease goes stale, the next worker reclaims it and
  dies too, forever.
* **heartbeat** — while executing, a daemon thread refreshes the lease's
  liveness stamp every few seconds (default ``min(stale_after / 10, 5)``
  seconds).  No wall-clock value ever enters the results; time is only
  compared *observer-now vs lease-stamp* to judge staleness.
* **reclaim** — a lease idle longer than ``stale_after`` belongs to a dead
  worker; any worker returns it to the pending set.  If the dead worker had
  already journaled the record (died between append and release), the
  re-execution produces a duplicate — harmless, because records are
  deterministic and ``collect`` deduplicates by ``(index, seed)``,
  ranked ``ok > no_convergence > error``.
* **complete** — the worker appends the record to *its own* shard (no two
  workers ever write the same shard) and releases the lease.

``collect`` merges every shard through the validated record streams
(:meth:`~repro.experiments.transports.base.Transport.record_streams`, then
:func:`~repro.experiments.results.merge_record_streams`), refuses an
incomplete queue loudly, refuses quarantined-corrupt tasks loudly, refuses
(without ``force``) a queue whose expansion is covered while a live lease is
still outstanding, and writes ``BENCH_<name>.json`` whose deterministic rows
are byte-identical to a single-process ``run`` of the same spec (the
``rows_bytes`` canonical serialization; wall-times are machine-dependent by
design and live outside the rows).
"""

from __future__ import annotations

import os
import re
import socket
import threading
import uuid
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import obs
from repro.experiments.results import (
    RunRecord,
    bench_payload,
    merge_record_streams,
    write_bench,
)
from repro.experiments.runner import execute_run_safe
from repro.experiments.specs import RunSpec, SweepSpec
from repro.experiments.transports import (
    QUEUE_VERSION,
    TRANSPORT_KINDS,
    Claim,
    CorruptTask,
    HttpTransport,
    QueueBusy,
    QueueCorrupt,
    QueueIncomplete,
    Transport,
    make_server,
    queue_db_path,
    queue_dir,
    resolve_transport,
    shard_path,
)
from repro.experiments.transports.http import DEFAULT_PORT as DEFAULT_HTTP_PORT

__all__ = [
    "DEFAULT_HTTP_PORT",
    "QUEUE_VERSION",
    "TRANSPORT_KINDS",
    "Claim",
    "CorruptTask",
    "HttpTransport",
    "QueueBusy",
    "QueueCorrupt",
    "QueueIncomplete",
    "claim_next",
    "collect_queue",
    "corrupt_report",
    "default_worker_id",
    "enqueue_sweep",
    "lease_report",
    "load_queue_spec",
    "make_server",
    "queue_db_path",
    "queue_dir",
    "queue_progress",
    "queue_status",
    "reclaim_stale",
    "resolve_transport",
    "shard_path",
    "work_queue",
]

#: Heartbeats default to a tenth of the staleness threshold, capped at five
#: seconds — "every few seconds", an order of magnitude inside the reclaim
#: margin, however generously ``stale_after`` is chosen.
HEARTBEAT_CAP_SECONDS = 5.0

_WORKER_ID_BAD = re.compile(r"[^A-Za-z0-9_.-]")

QueueLike = Union[str, Transport]


def default_worker_id() -> str:
    """A filesystem-safe worker id unique across hosts and processes."""
    host = _WORKER_ID_BAD.sub("-", socket.gethostname()) or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _sanitize_worker_id(worker_id: str) -> str:
    cleaned = _WORKER_ID_BAD.sub("-", worker_id)
    if not cleaned:
        raise ValueError(f"worker id {worker_id!r} has no filesystem-safe characters")
    return cleaned


def default_heartbeat(stale_after: float) -> float:
    """The default heartbeat interval: ``min(stale_after / 10, 5.0)`` seconds."""
    return min(stale_after / 10.0, HEARTBEAT_CAP_SECONDS)


def validate_lease_timings(
    stale_after: float, poll: float, heartbeat: Optional[float]
) -> None:
    """Reject lease timings that break the protocol, before any work starts.

    ``stale_after <= 0`` makes every live lease instantly reclaimable (the
    queue thrashes, re-executing everything forever); ``poll <= 0`` spins;
    a heartbeat at or beyond ``stale_after`` guarantees live leases go
    stale between touches.
    """
    if stale_after <= 0:
        raise ValueError(f"--stale-after must be positive, got {stale_after}")
    if poll <= 0:
        raise ValueError(f"--poll must be positive, got {poll}")
    if heartbeat is not None and not 0 < heartbeat < stale_after:
        raise ValueError(
            f"--heartbeat must satisfy 0 < heartbeat < stale-after "
            f"(got heartbeat={heartbeat}, stale-after={stale_after})"
        )


@contextmanager
def _opened(queue: QueueLike, kind: str = "auto") -> Iterator[Transport]:
    """Resolve ``queue`` to a transport, closing it afterwards if owned.

    Every lifecycle helper routes through this so no path leaks backend
    resources — a SQLite connection left open keeps the WAL
    ``-wal``/``-shm`` sidecar files alive, an HTTP session keeps a socket.
    A caller-supplied :class:`Transport` instance is *not* closed: its
    owner manages that lifecycle.
    """
    transport = resolve_transport(queue, kind)
    try:
        yield transport
    finally:
        if not isinstance(queue, Transport):
            transport.close()


def load_queue_spec(queue: QueueLike) -> SweepSpec:
    """The pinned sweep spec of a queue (validated header)."""
    with _opened(queue) as transport:
        return transport.load_spec()


def queue_status(queue: QueueLike) -> Dict[str, int]:
    """Pending task, outstanding lease, shard and quarantined-corrupt counts."""
    with _opened(queue) as transport:
        return transport.status()


def corrupt_report(queue: QueueLike) -> List[CorruptTask]:
    """The quarantined-corrupt tasks of a queue (empty for a healthy queue)."""
    with _opened(queue) as transport:
        return transport.corrupt_tasks()


def lease_report(queue: QueueLike) -> List[Dict[str, object]]:
    """Live leases with holder and heartbeat age (seconds since last beat)."""
    with _opened(queue) as transport:
        return transport.lease_details()


def _shard_worker_name(shard_id: str) -> str:
    """The worker id behind a shard id (directory shards are file paths)."""
    base = os.path.basename(str(shard_id))
    if base.startswith("shard-") and base.endswith(".jsonl"):
        return base[len("shard-") : -len(".jsonl")]
    return str(shard_id)


def queue_progress(queue: QueueLike) -> Dict[str, object]:
    """Per-worker progress over the queue's record shards.

    Returns ``{"name", "expected", "covered", "errors", "workers": [{"worker",
    "records", "errors"}, ...]}`` where ``covered`` counts distinct
    ``(index, seed)`` keys of the pinned expansion with at least one record.
    """
    with _opened(queue) as transport:
        spec = transport.load_spec()
        streams = transport.record_streams(spec)
    expected = {(run.index, run.seed) for run in spec.expand()}
    merged = merge_record_streams(records for _, records in streams)
    workers = [
        {
            "worker": _shard_worker_name(shard_id),
            "records": len(records),
            "errors": sum(1 for r in records.values() if r.status == "error"),
        }
        for shard_id, records in streams
    ]
    return {
        "name": spec.name,
        "expected": len(expected),
        "covered": sum(1 for key in merged if key in expected),
        "errors": sum(1 for record in merged.values() if record.status == "error"),
        "workers": workers,
    }


def claim_next(queue: QueueLike, worker_id: str):
    """Atomically claim the lowest-numbered pending task, if any.

    Returns a :class:`Claim` (``.run`` to execute, ``.handle`` for the
    transport), a :class:`CorruptTask` when the claimed payload was
    quarantined as unparseable, or ``None`` when nothing is claimable.
    """
    with _opened(queue) as transport:
        return transport.claim_next(worker_id)


def reclaim_stale(queue: QueueLike, stale_after: float) -> int:
    """Return leases idle for over ``stale_after`` seconds to the pending set.

    Staleness is judged by the lease's liveness stamp — refreshed by the
    holder's heartbeat thread while it is alive, frozen the moment it dies.
    Contending reclaimers race on the same atomic primitive (rename or
    ``BEGIN IMMEDIATE`` transaction), so each stale lease is reclaimed
    exactly once.  Returns the number reclaimed.
    """
    with _opened(queue) as transport:
        return transport.reclaim_stale(stale_after)


def enqueue_sweep(spec: SweepSpec, queue: QueueLike, kind: str = "auto") -> Dict[str, int]:
    """Materialise the sweep's pending runs as claimable tasks.

    A fresh queue gets the full expansion.  Re-enqueueing an existing
    *drained* queue (no tasks, no leases — e.g. after a ``collect`` refused
    errored rows) materialises only the runs without an ok record in the
    shards: errored, quarantined-corrupt and never-executed runs become
    claimable again, exactly like ``run --resume`` retries journaled
    errors.  A queue with tasks or leases still outstanding is refused —
    two enqueues racing each other would double-issue work.
    """
    with _opened(queue, kind) as transport:
        done: Dict[Tuple[int, int], RunRecord] = {}
        if transport.exists():
            existing = transport.load_spec()
            if existing != spec:
                raise ValueError(
                    f"queue {transport.location!r} already pins a different sweep "
                    f"configuration (name/seed/grid/sampler mismatch); use a fresh queue"
                )
            status = transport.status()
            if status["tasks"] or status["leases"]:
                raise ValueError(
                    f"queue {transport.location!r} still has {status['tasks']} task(s) and "
                    f"{status['leases']} lease(s) outstanding; drain it (or delete the "
                    f"queue) before enqueueing again"
                )
            transport.clear_corrupt()
            done = {
                key: record
                for key, record in merge_record_streams(
                    records for _, records in transport.record_streams(spec)
                ).items()
                if record.status != "error"
            }
        else:
            transport.initialise(spec)
        pending = [run for run in spec.expand() if (run.index, run.seed) not in done]
        transport.enqueue(pending)
        return {"enqueued": len(pending), "already_done": len(done)}


class _Heartbeat:
    """A daemon thread refreshing the lease's liveness stamp while its task
    executes; stops quietly when the lease was reclaimed from under us
    (collect dedups the re-execution)."""

    def __init__(self, transport: Transport, claim: Claim, interval: float):
        self._transport = transport
        self._claim = claim
        self._interval = max(float(interval), 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._transport.heartbeat(self._claim):
                    return
            except Exception:
                return


def work_queue(
    queue: QueueLike,
    worker_id: Optional[str] = None,
    stale_after: float = 300.0,
    poll: float = 1.0,
    heartbeat: Optional[float] = None,
    max_tasks: Optional[int] = None,
    trace: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> Dict[str, int]:
    """Claim and execute tasks until the queue drains (or ``max_tasks``).

    The worker loop: claim a task, execute it through the shared
    :func:`~repro.experiments.runner.execute_run_safe` core (errors become
    ``status="error"`` records, exactly as in ``run``), append the record
    to this worker's own shard, release the lease.  A claim that surfaces
    a quarantined-corrupt task is counted and skipped — the queue keeps
    draining.  When nothing is claimable the worker reclaims stale leases;
    while *live* leases are outstanding it polls — the holder may die and
    its lease go stale — and exits only once the queue has neither tasks
    nor leases.

    Returns ``{"executed": ..., "errors": ..., "reclaimed": ..., "corrupt": ...}``.

    ``trace`` appends this worker's JSONL span/metrics events to the given
    sidecar path (workers sharing one path interleave whole lines, each
    tagged with its worker id); ``profile_dir`` dumps one cProfile
    ``.pstats`` file per executed task.  Neither changes shard records or
    the collected BENCH payload in any byte.
    """
    validate_lease_timings(stale_after, poll, heartbeat)
    with _opened(queue) as transport:
        return _work_loop(
            transport, stale_after, poll, heartbeat, max_tasks, trace, profile_dir, worker_id
        )


def _work_loop(
    transport: Transport,
    stale_after: float,
    poll: float,
    heartbeat: Optional[float],
    max_tasks: Optional[int],
    trace: Optional[str],
    profile_dir: Optional[str],
    worker_id: Optional[str],
) -> Dict[str, int]:
    spec = transport.load_spec()
    worker = _sanitize_worker_id(worker_id) if worker_id else default_worker_id()
    transport.prepare_shard(spec, worker)
    interval = heartbeat if heartbeat is not None else default_heartbeat(stale_after)
    executed = errors = reclaimed = corrupt = 0
    with obs.observed(trace_path=trace, profile_dir=profile_dir, worker=worker):
        # Delta-snapshot the registry so two worker loops in one process
        # (tests, sequential drains) never double-report shared metrics.
        metrics_before = obs.get_metrics().snapshot()
        with obs.span("worker", queue=transport.describe(), sweep=spec.name) as worker_span:
            while max_tasks is None or executed < max_tasks:
                claim = transport.claim_next(worker)
                if isinstance(claim, CorruptTask):
                    corrupt += 1
                    obs.count("worker.corrupt")
                    continue
                if claim is None:
                    got_back = transport.reclaim_stale(stale_after)
                    if got_back:
                        reclaimed += got_back
                        obs.count("worker.reclaimed", got_back)
                        continue
                    if transport.status()["leases"]:
                        time.sleep(poll)
                        continue
                    break  # no tasks, no leases: the queue is drained
                with obs.span("task", task=claim.task_id):
                    with _Heartbeat(transport, claim, interval):
                        record = execute_run_safe(claim.run)
                transport.append_record(spec, worker, record)
                transport.release(claim)
                executed += 1
                obs.count("worker.executed")
                if record.status == "error":
                    errors += 1
                    obs.count("worker.errors")
            worker_span.add("executed", executed)
            worker_span.add("errors", errors)
            worker_span.add("reclaimed", reclaimed)
            worker_span.add("corrupt", corrupt)
        obs.event(
            "worker_summary",
            queue=transport.describe(),
            sweep=spec.name,
            executed=executed,
            errors=errors,
            reclaimed=reclaimed,
            corrupt=corrupt,
            metrics=obs.get_metrics().diff(metrics_before),
        )
    return {"executed": executed, "errors": errors, "reclaimed": reclaimed, "corrupt": corrupt}


def collect_queue(
    queue: QueueLike, out_dir: str = ".", force: bool = False
) -> Tuple[str, Dict[str, object]]:
    """Merge the shards of a drained queue into ``BENCH_<name>.json``.

    Every shard is validated against the queue's pinned spec and merged by
    ``(index, seed)`` (ranked ``ok > no_convergence > error``, see
    :func:`~repro.experiments.results.merge_record_streams`).  The merge
    must cover the full expansion — an unclaimed task, an outstanding lease
    or a shard torn short of a record makes the queue *incomplete* and the
    collect refuses loudly (:class:`QueueIncomplete`) instead of writing a
    silently partial BENCH.  Quarantined-corrupt tasks refuse the collect
    too (:class:`QueueCorrupt` naming them — re-enqueue to reissue), and a
    fully covered queue with live leases still outstanding (a worker
    re-executing a reclaimed task) refuses with :class:`QueueBusy` unless
    ``force`` — the covered rows are deterministic either way.  The
    resulting rows are byte-identical to a single-process ``run``.
    """
    with _opened(queue) as transport:
        spec = transport.load_spec()
        quarantined = transport.corrupt_tasks()
        if quarantined:
            shown = "; ".join(f"{item.task_id}: {item.reason}" for item in quarantined[:3])
            suffix = "; ..." if len(quarantined) > 3 else ""
            raise QueueCorrupt(
                f"queue {transport.location!r} quarantined {len(quarantined)} corrupt "
                f"task(s) ({shown}{suffix}); re-enqueue the sweep to reissue them"
            )
        merged = merge_record_streams(
            records for _, records in transport.record_streams(spec)
        )
        expected = {(run.index, run.seed) for run in spec.expand()}
        unexpected = sorted(set(merged) - expected)
        if unexpected:
            raise QueueCorrupt(
                f"queue {transport.location!r} shards hold {len(unexpected)} record(s) "
                f"outside the pinned sweep expansion (e.g. (index, seed) "
                f"{unexpected[0]}); the shards were edited or mixed from another queue"
            )
        missing = sorted(expected - set(merged))
        status = transport.status()
        if missing:
            raise QueueIncomplete(transport.location, missing, status["tasks"], status["leases"])
        if status["leases"] and not force:
            raise QueueBusy(transport.location, status["leases"])
    records = list(merged.values())
    # workers=0 marks externally-executed sweeps (as journal payloads do);
    # the deterministic rows never depend on the worker topology.
    payload = bench_payload(spec, 0, records)
    path = write_bench(out_dir, spec.name, payload)
    return path, payload
