"""The queue-backed distributed runner (``enqueue`` / ``work`` / ``collect``).

The PR 3 journal made run state externally visible; this module makes it the
*shared ledger* of a filesystem queue, so any number of worker processes —
on one machine or on many machines sharing a directory — can execute one
sweep cooperatively and the merged result is testable to byte-identity
against a single-process ``run``.

Queue layout (``QUEUE_<name>/`` next to the BENCH files by default)::

    QUEUE_<name>/
        spec.json                    the queue header: pinned SweepSpec
        tasks/task-<index>.json      claimable work: one serialized RunSpec
        leases/task-<index>.json@<worker>
                                     claimed work; mtime is the heartbeat
        shards/shard-<worker>.jsonl  per-worker journal (PR 3 line format)

The coordination protocol uses nothing but atomic ``os.rename`` and mtimes:

* **claim** — a worker renames ``tasks/task-i.json`` into ``leases/`` with
  its worker id appended.  Rename of an existing source is atomic; exactly
  one contender wins, the losers get ``FileNotFoundError`` and move on.
* **heartbeat** — while executing, a daemon thread touches the lease file
  every few seconds.  No wall-clock value ever enters the results; time is
  only compared *observer-now vs lease-mtime* to judge staleness.
* **reclaim** — a lease whose mtime is older than ``stale_after`` belongs
  to a dead worker; any worker renames it back into ``tasks/``, making the
  run claimable again.  If the dead worker had already journaled the record
  (died between append and lease removal), the re-execution produces a
  duplicate — harmless, because records are deterministic and ``collect``
  deduplicates by ``(index, seed)``, preferring ok over error.
* **complete** — the worker appends the record to *its own* shard (no two
  processes ever append to the same file) and removes its lease.

``collect`` merges every shard through the validated journal readers
(:func:`~repro.experiments.results.load_journal` per shard, then
:func:`~repro.experiments.results.merge_journal_records`), refuses an
incomplete queue loudly, and writes ``BENCH_<name>.json`` whose
deterministic rows are byte-identical to a single-process ``run`` of the
same spec (the ``rows_bytes`` canonical serialization; wall-times are
machine-dependent by design and live outside the rows).

NFS caveat: the protocol relies on ``rename`` atomicity (guaranteed by NFS
within one directory) and on mtime comparisons between the *server's*
timestamp and the *observer's* clock — pick ``stale_after`` generously
(minutes, and always several multiples of the heartbeat interval) when
clocks may skew.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
import uuid
from typing import Dict, List, Optional, Tuple

from repro.experiments.results import (
    RunRecord,
    append_journal,
    atomic_write_json,
    bench_payload,
    load_journal,
    merge_journal_records,
    rewrite_journal,
    write_bench,
    write_journal_header,
    _safe_name,
)
from repro.experiments.runner import execute_run_safe
from repro.experiments.specs import RunSpec, SweepSpec

__all__ = [
    "QueueCorrupt",
    "QueueIncomplete",
    "claim_next",
    "collect_queue",
    "default_worker_id",
    "enqueue_sweep",
    "load_queue_spec",
    "queue_dir",
    "queue_status",
    "reclaim_stale",
    "shard_path",
    "work_queue",
]

#: Queue layout version; bumped if the directory protocol ever changes so a
#: worker from an older build refuses the queue rather than misreading it.
QUEUE_VERSION = 1

#: The lease filename separator between task name and worker id.  Worker ids
#: are sanitised to never contain it, so parsing is unambiguous.
_LEASE_SEP = "@"

_WORKER_ID_BAD = re.compile(r"[^A-Za-z0-9_.-]")


class QueueIncomplete(RuntimeError):
    """``collect`` was asked to merge a queue that still has unfinished work."""

    def __init__(self, queue: str, missing: List[Tuple[int, int]], tasks: int, leases: int):
        self.queue = queue
        self.missing = missing
        shown = ", ".join(str(key) for key in missing[:5])
        suffix = ", ..." if len(missing) > 5 else ""
        super().__init__(
            f"queue {queue!r} is incomplete: {len(missing)} run(s) have no journaled "
            f"record ((index, seed) pairs {shown}{suffix}); {tasks} unclaimed task(s) "
            f"and {leases} outstanding lease(s) remain — run more workers (or wait "
            f"for stale leases to be reclaimed) before collecting"
        )


class QueueCorrupt(RuntimeError):
    """A queue file (header or claimed task) could not be parsed.

    A torn task file means ``enqueue`` was interrupted mid-write on a
    filesystem without atomic rename semantics, or the file was edited;
    either way the unit of work is unknowable and the queue must be
    re-enqueued rather than guessed at.
    """


def queue_dir(out_dir: str, name: str) -> str:
    """The queue directory of a sweep: ``<out_dir>/QUEUE_<name>``."""
    return os.path.join(out_dir, f"QUEUE_{_safe_name(name)}")


def _tasks_dir(queue: str) -> str:
    return os.path.join(queue, "tasks")


def _leases_dir(queue: str) -> str:
    return os.path.join(queue, "leases")


def _shards_dir(queue: str) -> str:
    return os.path.join(queue, "shards")


def shard_path(queue: str, worker_id: str) -> str:
    """The journal shard a worker appends its completed records to."""
    return os.path.join(_shards_dir(queue), f"shard-{worker_id}.jsonl")


def default_worker_id() -> str:
    """A filesystem-safe worker id unique across hosts and processes."""
    host = _WORKER_ID_BAD.sub("-", socket.gethostname()) or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _sanitize_worker_id(worker_id: str) -> str:
    cleaned = _WORKER_ID_BAD.sub("-", worker_id)
    if not cleaned:
        raise ValueError(f"worker id {worker_id!r} has no filesystem-safe characters")
    return cleaned


def _spec_path(queue: str) -> str:
    return os.path.join(queue, "spec.json")


def load_queue_spec(queue: str) -> SweepSpec:
    """The pinned sweep spec of a queue directory (validated header)."""
    path = _spec_path(queue)
    if not os.path.exists(path):
        raise QueueCorrupt(f"{queue!r} has no spec.json header; not a sweep queue")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            header = json.load(handle)
    except (json.JSONDecodeError, OSError) as error:
        raise QueueCorrupt(f"queue header {path!r} is unreadable: {error}") from None
    if header.get("queue_version") != QUEUE_VERSION:
        raise QueueCorrupt(
            f"queue {queue!r} has layout version {header.get('queue_version')!r}, "
            f"expected {QUEUE_VERSION}; re-enqueue with this build"
        )
    try:
        return SweepSpec.from_json_dict(header["sweep"])
    except (KeyError, TypeError, ValueError) as error:
        raise QueueCorrupt(f"queue header {path!r} does not pin a sweep spec: {error}") from None


def _task_name(run: RunSpec) -> str:
    return f"task-{run.index:06d}.json"


def enqueue_sweep(spec: SweepSpec, queue: str) -> Dict[str, int]:
    """Materialise the sweep's pending runs as claimable task files.

    A fresh directory gets the full expansion.  Re-enqueueing an existing
    *drained* queue (no tasks, no leases — e.g. after a `collect` refused
    errored rows) materialises only the runs without an ok record in the
    shards: errored and never-executed runs become claimable again, exactly
    like ``run --resume`` retries journaled errors.  A queue with tasks or
    leases still outstanding is refused — two enqueues racing each other
    would double-issue work.
    """
    spec_file = _spec_path(queue)
    done: Dict[Tuple[int, int], RunRecord] = {}
    if os.path.exists(spec_file):
        existing = load_queue_spec(queue)
        if existing != spec:
            raise ValueError(
                f"queue {queue!r} already pins a different sweep configuration "
                f"(name/seed/grid/sampler mismatch); use a fresh queue directory"
            )
        status = queue_status(queue)
        if status["tasks"] or status["leases"]:
            raise ValueError(
                f"queue {queue!r} still has {status['tasks']} task(s) and "
                f"{status['leases']} lease(s) outstanding; drain it (or delete the "
                f"directory) before enqueueing again"
            )
        done = {
            key: record
            for key, record in merge_journal_records(_shard_files(queue), spec).items()
            if record.status != "error"
        }
    for sub in (_tasks_dir(queue), _leases_dir(queue), _shards_dir(queue)):
        os.makedirs(sub, exist_ok=True)
    if not os.path.exists(spec_file):
        header = {"queue_version": QUEUE_VERSION, "sweep": spec.to_json_dict()}
        atomic_write_json(spec_file, header)
    pending = [run for run in spec.expand() if (run.index, run.seed) not in done]
    for run in pending:
        # Tasks materialise atomically (the shared tmp + os.replace
        # protocol) so a worker can never claim a half-written file — the
        # "torn claim" failure mode exists only on filesystems without
        # rename semantics, and there it is caught by QueueCorrupt at parse
        # time rather than silently executed.
        atomic_write_json(os.path.join(_tasks_dir(queue), _task_name(run)), run.to_json_dict())
    return {"enqueued": len(pending), "already_done": len(done)}


def _shard_files(queue: str) -> List[str]:
    shards = _shards_dir(queue)
    if not os.path.isdir(shards):
        return []
    return sorted(
        os.path.join(shards, name)
        for name in os.listdir(shards)
        if name.startswith("shard-") and name.endswith(".jsonl")
    )


def queue_status(queue: str) -> Dict[str, int]:
    """Unclaimed task, outstanding lease and shard counts of a queue."""
    def _count(path: str, predicate) -> int:
        if not os.path.isdir(path):
            return 0
        return sum(1 for name in os.listdir(path) if predicate(name))

    return {
        "tasks": _count(_tasks_dir(queue), lambda name: name.endswith(".json")),
        "leases": _count(_leases_dir(queue), lambda name: _LEASE_SEP in name),
        "shards": len(_shard_files(queue)),
    }


def _parse_task(path: str) -> RunSpec:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return RunSpec.from_json_dict(json.load(handle))
    except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError) as error:
        raise QueueCorrupt(
            f"task file {path!r} is corrupt ({error}); re-enqueue the sweep"
        ) from None


def claim_next(queue: str, worker_id: str) -> Optional[Tuple[str, RunSpec]]:
    """Atomically claim the lowest-numbered unclaimed task, if any.

    Returns ``(lease_path, run)`` or ``None`` when no task could be
    claimed.  The claim is the ``os.rename`` into ``leases/`` — atomic on
    the source, so under contention exactly one worker wins each task and
    the losers simply try the next file.
    """
    tasks = _tasks_dir(queue)
    try:
        names = sorted(name for name in os.listdir(tasks) if name.endswith(".json"))
    except FileNotFoundError:
        return None
    for name in names:
        lease = os.path.join(_leases_dir(queue), f"{name}{_LEASE_SEP}{worker_id}")
        try:
            os.rename(os.path.join(tasks, name), lease)
        except FileNotFoundError:
            continue  # another worker won this task; try the next one
        # The rename preserves the *task's* enqueue-time mtime; the lease
        # clock starts at the claim, so touch it now — otherwise any task
        # claimed later than stale_after past enqueue would be born stale
        # and reclaimed out from under its live holder.
        os.utime(lease)
        return lease, _parse_task(lease)
    return None


def reclaim_stale(queue: str, stale_after: float) -> int:
    """Move leases older than ``stale_after`` seconds back into ``tasks/``.

    Staleness is judged by the lease file's mtime — refreshed by the
    holder's heartbeat thread while it is alive, frozen the moment it dies.
    Contending reclaimers race on the same atomic rename, so each stale
    lease is reclaimed exactly once.  Returns the number reclaimed.
    """
    leases = _leases_dir(queue)
    try:
        names = list(os.listdir(leases))
    except FileNotFoundError:
        return 0
    reclaimed = 0
    now = time.time()
    for name in names:
        if _LEASE_SEP not in name:
            continue
        path = os.path.join(leases, name)
        try:
            mtime = os.stat(path).st_mtime
        except FileNotFoundError:
            continue  # completed or reclaimed while we were scanning
        if now - mtime <= stale_after:
            continue
        task_name = name.split(_LEASE_SEP, 1)[0]
        try:
            os.rename(path, os.path.join(_tasks_dir(queue), task_name))
        except FileNotFoundError:
            continue
        reclaimed += 1
    return reclaimed


class _Heartbeat:
    """A daemon thread touching the lease file while its task executes."""

    def __init__(self, path: str, interval: float):
        self._path = path
        self._interval = max(float(interval), 0.01)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()

    def _beat(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                os.utime(self._path)
            except OSError:
                return  # lease reclaimed from under us; dedup handles the rest


def work_queue(
    queue: str,
    worker_id: Optional[str] = None,
    stale_after: float = 300.0,
    poll: float = 1.0,
    heartbeat: Optional[float] = None,
    max_tasks: Optional[int] = None,
) -> Dict[str, int]:
    """Claim and execute tasks until the queue drains (or ``max_tasks``).

    The worker loop: claim a task, execute it through the shared
    :func:`~repro.experiments.runner.execute_run_safe` core (errors become
    ``status="error"`` records, exactly as in ``run``), append the record
    to this worker's own journal shard, release the lease.  When nothing is
    claimable the worker reclaims stale leases; while *live* leases are
    outstanding it polls — the holder may die and its lease go stale — and
    exits only once the queue has neither tasks nor leases.

    Returns ``{"executed": ..., "errors": ..., "reclaimed": ...}``.
    """
    spec = load_queue_spec(queue)
    worker = _sanitize_worker_id(worker_id) if worker_id else default_worker_id()
    shard = shard_path(queue, worker)
    if os.path.exists(shard):
        # An existing shard must pin the same spec (load_journal refuses a
        # foreign header).  Compact it before appending: a crash may have
        # left the file headerless (died inside the header write) or with a
        # torn trailing fragment — appending after either would make every
        # later record unreadable at collect time.
        rewrite_journal(shard, spec, list(load_journal(shard, spec).values()))
    else:
        write_journal_header(shard, spec)
    interval = heartbeat if heartbeat is not None else max(stale_after / 4.0, 0.05)
    executed = errors = reclaimed = 0
    while max_tasks is None or executed < max_tasks:
        claim = claim_next(queue, worker)
        if claim is None:
            got_back = reclaim_stale(queue, stale_after)
            if got_back:
                reclaimed += got_back
                continue
            if queue_status(queue)["leases"]:
                time.sleep(poll)
                continue
            break  # no tasks, no leases: the queue is drained
        lease, run = claim
        with _Heartbeat(lease, interval):
            record = execute_run_safe(run)
        append_journal(shard, record)
        try:
            os.remove(lease)
        except FileNotFoundError:
            pass  # reclaimed from under us; collect dedups the re-execution
        executed += 1
        if record.status == "error":
            errors += 1
    return {"executed": executed, "errors": errors, "reclaimed": reclaimed}


def collect_queue(queue: str, out_dir: str = ".") -> Tuple[str, Dict[str, object]]:
    """Merge the shards of a drained queue into ``BENCH_<name>.json``.

    Every shard is validated against the queue's pinned spec and merged by
    ``(index, seed)`` (ok preferred over error, see
    :func:`~repro.experiments.results.merge_journal_records`).  The merge
    must cover the full expansion — an unclaimed task, an outstanding lease
    or a shard torn short of a record makes the queue *incomplete* and the
    collect refuses loudly (:class:`QueueIncomplete`) instead of writing a
    silently partial BENCH.  The resulting deterministic rows are
    byte-identical to a single-process ``run`` of the same spec.
    """
    spec = load_queue_spec(queue)
    merged = merge_journal_records(_shard_files(queue), spec)
    expected = {(run.index, run.seed) for run in spec.expand()}
    unexpected = sorted(set(merged) - expected)
    if unexpected:
        raise QueueCorrupt(
            f"queue {queue!r} shards hold {len(unexpected)} record(s) outside the "
            f"pinned sweep expansion (e.g. (index, seed) {unexpected[0]}); the "
            f"shards were edited or mixed from another queue"
        )
    missing = sorted(expected - set(merged))
    if missing:
        status = queue_status(queue)
        raise QueueIncomplete(queue, missing, status["tasks"], status["leases"])
    records = list(merged.values())
    # workers=0 marks externally-executed sweeps (as journal payloads do);
    # the deterministic rows never depend on the worker topology.
    payload = bench_payload(spec, 0, records)
    path = write_bench(out_dir, spec.name, payload)
    return path, payload
