"""The ``python -m repro.experiments`` command line.

Three subcommands make sweeps reproducible from a shell:

``list``
    the declared workloads and registered instance families;
``run NAME``
    expand and execute a declared sweep (optionally on a process pool) and
    write ``BENCH_<name>.json``;
``report NAME-or-PATH``
    print the per-run rows and the aggregate of a produced BENCH file.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run smoke --workers 2 --out .benchmarks
    python -m repro.experiments report smoke --out .benchmarks
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.registry import families
from repro.experiments.results import bench_path, load_bench
from repro.experiments.runner import run_sweep
from repro.experiments.workloads import WORKLOADS, get_workload

__all__ = ["main", "run_sweeps"]


def run_sweeps(names: List[str], argv: Optional[List[str]] = None, description: str = "") -> int:
    """Run a fixed list of declared sweeps with shared ``--workers``/``--out`` flags.

    The entry point behind the ``benchmarks/bench_*.py`` script wrappers:
    parses the common options once and executes each named sweep through the
    ``run`` subcommand, stopping at the first failure.
    """
    parser = argparse.ArgumentParser(description=description or f"run sweeps: {', '.join(names)}")
    parser.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument("--out", default=".", help="output directory for the BENCH files")
    args = parser.parse_args(argv)
    for name in names:
        status = main(["run", name, "--workers", str(args.workers), "--out", args.out])
        if status:
            return status
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="declarative, parallel, persistent HSP experiment sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a declared sweep and write BENCH_<name>.json")
    run_parser.add_argument("name", help="a workload name from `list`")
    run_parser.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    run_parser.add_argument("--out", default=".", help="output directory for the BENCH file")
    run_parser.add_argument("--seed", type=int, default=None, help="override the sweep master seed")
    run_parser.add_argument("--repeats", type=int, default=None, help="override the repeats per grid point")

    sub.add_parser("list", help="list declared workloads and instance families")

    report_parser = sub.add_parser("report", help="summarise a produced BENCH_<name>.json")
    report_parser.add_argument("target", help="a workload name (resolved inside --out) or a path to a BENCH file")
    report_parser.add_argument("--out", default=".", help="directory searched for BENCH_<name>.json")
    return parser


def _command_run(args) -> int:
    try:
        spec = get_workload(args.name).with_overrides(seed=args.seed, repeats=args.repeats)
    except (KeyError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    path, payload = run_sweep(spec, workers=args.workers, out_dir=args.out)
    aggregate = payload["aggregate"]
    print(f"sweep {spec.name!r}: {aggregate['runs']} runs on {payload['workers']} worker(s)")
    print(
        f"  successes: {aggregate['successes']}/{aggregate['runs']}"
        f"  wall time: {aggregate['wall_time_seconds']:.3f}s"
    )
    totals = aggregate["query_totals"]
    for key in ("classical_queries", "quantum_queries", "group_multiplications"):
        if key in totals:
            print(f"  {key}: {totals[key]}")
    print(f"  wrote {path}")
    if aggregate["successes"] != aggregate["runs"]:
        print(
            f"  FAILED: {aggregate['runs'] - aggregate['successes']} run(s) recovered a wrong subgroup",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_list() -> int:
    print("declared workloads:")
    width = max(len(name) for name in WORKLOADS)
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        runs = len(spec.expand())
        print(f"  {name:<{width}}  [{spec.family}, {runs} runs]  {spec.description}")
    print("\ninstance families:")
    registered = families()
    width = max(len(name) for name in registered)
    for name, description in registered.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _command_report(args) -> int:
    target = args.target
    path = target if os.path.exists(target) else bench_path(args.out, target)
    if not os.path.exists(path):
        print(f"no BENCH file at {target!r} or {path!r}; run the sweep first", file=sys.stderr)
        return 1
    payload = load_bench(path)
    if "sweep" not in payload or "rows" not in payload:
        # e.g. BENCH_engine.json, written by benchmarks/bench_engine.py with
        # its own comparison schema rather than the sweep-payload schema.
        print(
            f"{path} is not a sweep BENCH file (missing 'sweep'/'rows'); "
            f"it reports {payload.get('benchmark', 'an unknown benchmark')!r}",
            file=sys.stderr,
        )
        return 1
    spec = payload["sweep"]
    print(f"sweep {spec['name']!r} (family {spec['family']}, seed {spec['seed']}, workers {payload['workers']})")
    timings = {entry["index"]: entry["wall_time_seconds"] for entry in payload["timings"]}
    header = f"  {'idx':>3}  {'params':<28}  {'strategy':<22}  {'ok':<3}  {'quantum':>7}  {'classical':>9}  {'time':>8}"
    print(header)
    for row in payload["rows"]:
        report = row["query_report"]
        params = ", ".join(f"{key}={value}" for key, value in sorted(row["params"].items())) or "-"
        print(
            f"  {row['index']:>3}  {params:<28.28}  {row['strategy']:<22.22}  "
            f"{'yes' if row['success'] else 'NO':<3}  {report.get('quantum_queries', 0):>7}  "
            f"{report.get('classical_queries', 0):>9}  {timings.get(row['index'], 0.0) * 1e3:>6.1f}ms"
        )
    aggregate = payload["aggregate"]
    print(
        f"  aggregate: {aggregate['successes']}/{aggregate['runs']} ok, "
        f"quantum={aggregate['query_totals'].get('quantum_queries', 0)}, "
        f"classical={aggregate['query_totals'].get('classical_queries', 0)}, "
        f"wall={aggregate['wall_time_seconds']:.3f}s"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "list":
        return _command_list()
    return _command_report(args)
