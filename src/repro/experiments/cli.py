"""The ``python -m repro.experiments`` command line.

Twelve subcommands make sweeps reproducible (and analysable) from a shell:

``list``
    the declared workloads and registered instance families;
``run NAME``
    expand and execute a declared sweep (optionally on a process pool) and
    write ``BENCH_<name>.json``.  ``--max-failures`` bounds how many runs
    may error before the sweep aborts, and ``--resume`` continues an
    interrupted sweep from its ``BENCH_<name>.partial.jsonl`` journal;
``enqueue NAME``
    materialise a sweep's pending runs as claimable tasks on a queue
    transport — ``--transport dir`` (a ``QUEUE_<name>/`` directory of task
    files, the default), ``--transport sqlite`` (a single
    ``QUEUE_<name>.sqlite`` WAL database; ``--queue-db`` names it
    explicitly) or ``--transport http`` (a running coordinator named by
    ``--queue-url http://host:port``);
``serve QUEUE.sqlite``
    the HTTP queue coordinator: serve a local SQLite queue database to
    remote workers, so a ``work``/``collect``/``status`` process needs
    only a URL, not a shared mount.  Plain HTTP with **no
    authentication** — bind to localhost or a trusted network only;
``work QUEUE``
    claim and execute queue tasks until the queue drains — any number of
    ``work`` processes sharing the queue (a directory, a database file, or
    a coordinator ``http://`` URL, auto-detected) cooperate via leased
    claims with heartbeat-based stale reclamation; corrupt tasks are
    quarantined and reported, never crash-looped;
``collect QUEUE``
    merge the per-worker record shards of a drained queue into a
    ``BENCH_<name>.json`` whose deterministic rows are byte-identical to a
    single-process ``run`` (``--force`` overrides the live-lease refusal);
``status QUEUE``
    a live look at a queue: pending/lease/shard counts, per-worker
    progress, and every outstanding lease with its heartbeat age
    (leases older than ``--stale-after`` are flagged STALE);
``trace summarise PATH...``
    per-phase time/query breakdown of the JSONL trace files written by
    ``run``/``work`` ``--trace`` (telemetry is sidecar-only — BENCH rows
    are byte-identical with tracing on or off);
``report NAME-or-PATH``
    print the per-run rows and the aggregate of a produced BENCH file;
``summarise NAME-or-PATH``
    statistics post-processing: per-cell success rates with Wilson score
    intervals, saturation fits (``success-vs-rounds*``), crossover location
    (``strategy-crossover``); writes a deterministic ``ANALYSIS_<name>.json``;
``plot NAME-or-PATH``
    the same statistics as an ASCII chart on stdout (``--svg FILE`` writes
    a dependency-free SVG as well);
``cache ls|prune``
    inspect or LRU-evict the persistent Cayley-table cache written by
    ``CayleyBackend(cache_dir=...)`` / the ``engine_cache_dir`` solver
    option.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run smoke --workers 2 --out .benchmarks
    python -m repro.experiments run smoke --resume --out .benchmarks
    python -m repro.experiments enqueue queue-smoke --out .benchmarks
    python -m repro.experiments work .benchmarks/QUEUE_queue-smoke &
    python -m repro.experiments work .benchmarks/QUEUE_queue-smoke
    python -m repro.experiments collect .benchmarks/QUEUE_queue-smoke --out .benchmarks
    python -m repro.experiments enqueue queue-smoke --transport sqlite --out .benchmarks
    python -m repro.experiments work .benchmarks/QUEUE_queue-smoke.sqlite
    python -m repro.experiments status .benchmarks/QUEUE_queue-smoke
    python -m repro.experiments serve .benchmarks/QUEUE_queue-smoke.sqlite --port 8765 &
    python -m repro.experiments enqueue queue-smoke --queue-url http://127.0.0.1:8765
    python -m repro.experiments work http://127.0.0.1:8765
    python -m repro.experiments collect http://127.0.0.1:8765 --out .benchmarks
    python -m repro.experiments run smoke --trace .benchmarks/trace.jsonl --out .benchmarks
    python -m repro.experiments trace summarise .benchmarks/trace.jsonl
    python -m repro.experiments report smoke --out .benchmarks
    python -m repro.experiments summarise success-vs-rounds
    python -m repro.experiments plot strategy-crossover --svg crossover.svg
    python -m repro.experiments cache ls .cayley-cache
    python -m repro.experiments cache prune .cayley-cache --max-bytes 1000000
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional

from repro.experiments import analysis as analysis_mod
from repro.experiments import distributed
from repro.experiments.registry import families
from repro.experiments.results import (
    LedgerDivergence,
    SpecMismatch,
    check_journal_agreement,
    error_rows,
    journal_path,
    load_journal_payload,
    load_validated_bench,
    resolve_bench,
    validate_rows,
)
from repro.experiments.runner import SweepAborted, run_sweep
from repro.experiments.workloads import WORKLOADS, get_workload
from repro.groups.engine import cache_entries, prune_cache

__all__ = ["main", "run_sweeps"]


def run_sweeps(names: List[str], argv: Optional[List[str]] = None, description: str = "") -> int:
    """Run a fixed list of declared sweeps with shared ``--workers``/``--out`` flags.

    The entry point behind the ``benchmarks/bench_*.py`` script wrappers:
    parses the common options once and executes *every* named sweep through
    the ``run`` subcommand — a failing sweep (wrong subgroups, errored runs)
    no longer aborts the remaining sweeps; the combined status is non-zero
    if any sweep failed.
    """
    parser = argparse.ArgumentParser(description=description or f"run sweeps: {', '.join(names)}")
    parser.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    parser.add_argument("--out", default=".", help="output directory for the BENCH files")
    parser.add_argument("--resume", action="store_true", help="resume each sweep from its journal")
    parser.add_argument(
        "--max-failures", type=int, default=None, help="abort a sweep after this many errored runs"
    )
    args = parser.parse_args(argv)
    combined = 0
    for name in names:
        forwarded = ["run", name, "--workers", str(args.workers), "--out", args.out]
        if args.resume:
            forwarded.append("--resume")
        if args.max_failures is not None:
            forwarded.extend(["--max-failures", str(args.max_failures)])
        combined = max(combined, main(forwarded))
    return combined


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="declarative, parallel, persistent HSP experiment sweeps",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="execute a declared sweep and write BENCH_<name>.json")
    run_parser.add_argument("name", help="a workload name from `list`")
    run_parser.add_argument("--workers", type=int, default=1, help="worker processes (default 1)")
    run_parser.add_argument("--out", default=".", help="output directory for the BENCH file")
    run_parser.add_argument("--seed", type=int, default=None, help="override the sweep master seed")
    run_parser.add_argument("--repeats", type=int, default=None, help="override the repeats per grid point")
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="skip runs already journaled in BENCH_<name>.partial.jsonl and execute the remainder",
    )
    run_parser.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help="abort the sweep once more than this many runs have errored "
        "(default: capture all errors as rows and finish)",
    )
    _add_observability_options(run_parser)

    enqueue_parser = sub.add_parser(
        "enqueue", help="materialise a sweep's pending runs as claimable queue tasks"
    )
    enqueue_parser.add_argument("name", help="a workload name from `list`")
    enqueue_parser.add_argument(
        "--out", default=".", help="directory the queue (QUEUE_<name> or QUEUE_<name>.sqlite) is created in"
    )
    enqueue_parser.add_argument(
        "--transport",
        choices=list(distributed.TRANSPORT_KINDS),
        default="dir",
        help="queue backend: a shared directory of task files (dir, the default), "
        "a single-file SQLite WAL database (sqlite), or a running coordinator "
        "(http; requires --queue-url)",
    )
    enqueue_parser.add_argument(
        "--queue", default=None, metavar="DIR", help="explicit queue directory (overrides --out; implies --transport dir)"
    )
    enqueue_parser.add_argument(
        "--queue-db",
        default=None,
        metavar="PATH",
        help="explicit queue database path (overrides --out; implies --transport sqlite)",
    )
    enqueue_parser.add_argument(
        "--queue-url",
        default=None,
        metavar="URL",
        help="a running coordinator's http://host:port (see `serve`; overrides "
        "--out; implies --transport http)",
    )
    enqueue_parser.add_argument("--seed", type=int, default=None, help="override the sweep master seed")
    enqueue_parser.add_argument(
        "--repeats", type=int, default=None, help="override the repeats per grid point"
    )

    serve_parser = sub.add_parser(
        "serve",
        help="HTTP queue coordinator: serve a local SQLite queue database to "
        "remote workers (no auth — trusted networks only)",
    )
    serve_parser.add_argument(
        "queue",
        help="the QUEUE_<name>.sqlite database to serve (created by a remote "
        "`enqueue --queue-url` if it does not exist yet)",
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; the coordinator speaks plain "
        "HTTP with no authentication — expose it to trusted networks only)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"port to bind (default {distributed.DEFAULT_HTTP_PORT}; 0 picks an "
        f"ephemeral port, printed on startup)",
    )

    work_parser = sub.add_parser(
        "work", help="claim and execute queue tasks until the queue drains"
    )
    work_parser.add_argument(
        "queue",
        help="the shared queue: a QUEUE_<name> directory, a QUEUE_<name>.sqlite "
        "database, or a coordinator http://host:port URL (auto-detected)",
    )
    work_parser.add_argument(
        "--worker-id", default=None, help="stable worker id (default: host-pid-random)"
    )
    work_parser.add_argument(
        "--stale-after",
        type=_stale_after_seconds,
        default=300.0,
        help="seconds without a heartbeat before a lease is reclaimed (default 300)",
    )
    work_parser.add_argument(
        "--poll",
        type=_positive_seconds,
        default=1.0,
        help="seconds between checks while waiting on other workers' leases (default 1)",
    )
    work_parser.add_argument(
        "--heartbeat",
        type=_positive_seconds,
        default=None,
        help="seconds between lease liveness touches "
        "(default: min(stale-after / 10, 5); must be < stale-after)",
    )
    work_parser.add_argument(
        "--max-tasks", type=int, default=None, help="stop after executing this many tasks"
    )
    _add_observability_options(work_parser)

    collect_parser = sub.add_parser(
        "collect", help="merge a drained queue's record shards into BENCH_<name>.json"
    )
    collect_parser.add_argument(
        "queue",
        help="the queue: a QUEUE_<name> directory, a QUEUE_<name>.sqlite database, "
        "or a coordinator http://host:port URL",
    )
    collect_parser.add_argument("--out", default=".", help="output directory for the BENCH file")
    collect_parser.add_argument(
        "--force",
        action="store_true",
        help="collect even while live leases are outstanding (the covered rows are "
        "deterministic; the still-running worker's re-execution is a harmless duplicate)",
    )

    status_parser = sub.add_parser(
        "status",
        help="pending/lease/shard counts, per-worker progress and heartbeat ages of a queue",
    )
    status_parser.add_argument(
        "queue",
        help="the queue: a QUEUE_<name> directory, a QUEUE_<name>.sqlite database, "
        "or a coordinator http://host:port URL",
    )
    status_parser.add_argument(
        "--stale-after",
        type=_stale_after_seconds,
        default=300.0,
        help="heartbeat age after which a lease is flagged STALE (default 300; "
        "match the workers' --stale-after)",
    )

    trace_parser = sub.add_parser(
        "trace", help="inspect the JSONL trace files written by run/work --trace"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)
    trace_summarise = trace_sub.add_parser(
        "summarise",
        aliases=["summarize"],
        help="per-phase time/query breakdown aggregated over trace file(s)",
    )
    trace_summarise.add_argument("paths", nargs="+", help="trace JSONL file(s) to aggregate")

    sub.add_parser("list", help="list declared workloads and instance families")

    report_parser = sub.add_parser("report", help="print the rows and aggregate of a BENCH_<name>.json")
    report_parser.add_argument("target", help="a workload name (resolved inside --out) or a path to a BENCH file")
    report_parser.add_argument("--out", default=".", help="directory searched for BENCH_<name>.json")

    summarise_parser = sub.add_parser(
        "summarise",
        help="statistics post-processing: Wilson intervals, saturation fits, "
        "crossover location; writes ANALYSIS_<name>.json",
        aliases=["summarize"],
    )
    summarise_parser.add_argument(
        "target", help="a workload name (resolved inside --out) or a path to a BENCH file"
    )
    summarise_parser.add_argument(
        "--out",
        default=".",
        help="directory searched for BENCH_<name>.json and written with ANALYSIS_<name>.json",
    )

    plot_parser = sub.add_parser(
        "plot", help="ASCII chart of a sweep's statistics (optionally an SVG)"
    )
    plot_parser.add_argument(
        "target", help="a workload name (resolved inside --out) or a path to a BENCH file"
    )
    plot_parser.add_argument("--out", default=".", help="directory searched for BENCH_<name>.json")
    plot_parser.add_argument(
        "--svg", default=None, metavar="FILE", help="also write a dependency-free SVG chart"
    )

    cache_parser = sub.add_parser("cache", help="inspect or prune the persistent Cayley-table cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    ls_parser = cache_sub.add_parser("ls", help="list cache entries, least recently used first")
    ls_parser.add_argument("cache_dir", help="the CayleyBackend cache directory")
    prune_parser = cache_sub.add_parser("prune", help="LRU-evict entries until the cache fits a size cap")
    prune_parser.add_argument("cache_dir", help="the CayleyBackend cache directory")
    prune_parser.add_argument(
        "--max-bytes",
        type=_non_negative_bytes,
        required=True,
        help="target total cache size in bytes (0 empties the cache)",
    )
    return parser


def _add_observability_options(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace``/``--profile`` sidecar-telemetry options.

    Both are strictly additive: traces and profiles land only in their own
    files, and the BENCH rows / journal lines a traced invocation produces
    are byte-identical to an untraced one.
    """
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append JSONL span/metric trace events to PATH (sidecar only; "
        "BENCH output is byte-identical with or without it)",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help="write a cProfile .pstats file per run into DIR",
    )


def _positive_seconds(text: str) -> float:
    """argparse type for lease timings: rejects zero/negative durations at
    parse time — ``--stale-after 0`` would make every live lease instantly
    reclaimable and the queue would thrash re-executing work forever."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a duration in seconds, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"duration must be positive, got {value}")
    return value


def _stale_after_seconds(text: str) -> float:
    """argparse type for ``--stale-after``: the protocol check the worker
    loop enforces (:func:`~repro.experiments.distributed.validate_lease_timings`),
    applied at parse time for ``work`` and ``status`` alike — ``status
    --stale-after 0`` would flag every live lease STALE, the observational
    twin of the reclaim-thrash the worker check prevents."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a duration in seconds, got {text!r}")
    try:
        distributed.validate_lease_timings(value, poll=1.0, heartbeat=None)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))
    return value


def _non_negative_bytes(text: str) -> int:
    """argparse type for ``--max-bytes``: rejects negatives at parse time so
    ``prune`` can never be reached with an ambiguous cap (0 is valid and
    means "evict everything")."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer byte count, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"--max-bytes must be non-negative, got {value}")
    return value


def _load_target(target: str, out_dir: str):
    """Resolve and load a BENCH target through the shared validated loader.

    Accepts a workload name, a BENCH file path, or a ``.partial.jsonl``
    journal path; a name whose BENCH file does not exist yet falls back to
    its journal, so an interrupted sweep's completed rows are analysable
    before the sweep finishes.  When the BENCH file *and* its journal both
    survive, the two ledgers must agree — rows disagreeing on the same
    ``(index, seed)`` key fail loudly (:class:`LedgerDivergence`) instead
    of one source being silently preferred.  Returns ``(path, payload)`` or
    ``None`` after printing the failure — missing file, non-sweep payload,
    rows disagreeing with the recorded spec header (:class:`SpecMismatch`),
    or a diverging journal.
    """
    path = resolve_bench(target, out_dir)
    journal = None
    if target.endswith(".partial.jsonl") and os.path.exists(target):
        journal = target
    elif not os.path.exists(path):
        candidate = journal_path(out_dir, target)
        if os.path.exists(candidate):
            journal = candidate
    try:
        if journal is not None:
            payload = load_journal_payload(journal)
            validate_rows(payload, path=journal)
            print(
                f"note: analysing the in-progress journal {journal} "
                f"({len(payload['rows'])} completed row(s)); the sweep has not finished",
                file=sys.stderr,
            )
            return journal, payload
        if not os.path.exists(path):
            print(
                f"no BENCH file at {target!r} or {path!r}; run the sweep first",
                file=sys.stderr,
            )
            return None
        payload = load_validated_bench(path)
        sibling = f"{path[:-len('.json')]}.partial.jsonl" if path.endswith(".json") else None
        if sibling and os.path.exists(sibling):
            check_journal_agreement(payload, sibling, path=path)
    except (LedgerDivergence, SpecMismatch, ValueError) as error:
        print(str(error), file=sys.stderr)
        return None
    return path, payload


def _reject_all_errors(payload, path: str) -> bool:
    """True (after printing the message) when every row of the file errored.

    An all-error BENCH has no statistics to report — rendering an empty
    table or dividing by zero would both be wrong; the caller exits
    non-zero instead.
    """
    rows = payload.get("rows", [])
    errored = error_rows(payload)
    if rows and len(errored) == len(rows):
        print(
            f"{path}: all {len(rows)} run(s) errored (status=\"error\"); nothing to "
            f"analyse — inspect the 'error' fields and re-run the sweep",
            file=sys.stderr,
        )
        return True
    return False


def _command_run(args) -> int:
    try:
        spec = get_workload(args.name).with_overrides(seed=args.seed, repeats=args.repeats)
    except (KeyError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    try:
        path, payload = run_sweep(
            spec,
            workers=args.workers,
            out_dir=args.out,
            max_failures=args.max_failures,
            resume=args.resume,
            trace=args.trace,
            profile_dir=args.profile,
        )
    except (SweepAborted, ValueError) as error:
        # SweepAborted: the --max-failures budget ran out (journal kept for
        # --resume).  ValueError: a journal/spec mismatch on --resume.
        print(str(error), file=sys.stderr)
        return 1
    return _print_sweep_summary(spec.name, path, payload)


def _print_sweep_summary(name: str, path: str, payload) -> int:
    """The shared completion summary (and exit code) of ``run``/``collect``.

    Non-zero when the sweep produced no runs, any run errored, or any run
    recovered a wrong subgroup — the same acceptance bar however the rows
    were executed.
    """
    aggregate = payload["aggregate"]
    print(f"sweep {name!r}: {aggregate['runs']} runs on {payload['workers']} worker(s)")
    rate = aggregate["success_rate"]
    rate_text = "n/a (no runs)" if rate is None else f"{rate:.3f}"
    print(
        f"  successes: {aggregate['successes']}/{aggregate['runs']}"
        f"  errors: {aggregate.get('errors', 0)}"
        f"  success rate: {rate_text}"
        f"  wall time: {aggregate['wall_time_seconds']:.3f}s"
    )
    totals = aggregate["query_totals"]
    for key in ("classical_queries", "quantum_queries", "group_multiplications"):
        if key in totals:
            print(f"  {key}: {totals[key]}")
    print(f"  wrote {path}")
    if aggregate["runs"] == 0:
        print("  FAILED: the sweep produced no runs", file=sys.stderr)
        return 1
    no_convergence = sum(
        1 for row in payload.get("rows", []) if row.get("status") == "no_convergence"
    )
    if no_convergence:
        print(f"  no_convergence: {no_convergence} run(s) (noisy solve failed gracefully)")
    if aggregate.get("errors"):
        print(f"  FAILED: {aggregate['errors']} run(s) raised (status=\"error\" rows)", file=sys.stderr)
        return 1
    if aggregate["successes"] != aggregate["runs"]:
        wrong = aggregate["runs"] - aggregate["successes"] - no_convergence
        detail = f"{wrong} run(s) recovered a wrong subgroup"
        if no_convergence:
            detail += f", {no_convergence} run(s) did not converge"
        print(f"  FAILED: {detail}", file=sys.stderr)
        return 1
    return 0


def _command_enqueue(args) -> int:
    try:
        spec = get_workload(args.name).with_overrides(seed=args.seed, repeats=args.repeats)
    except (KeyError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.queue_url:
        queue, kind = args.queue_url, "http"
    elif args.queue_db:
        queue, kind = args.queue_db, "sqlite"
    elif args.queue:
        queue, kind = args.queue, "dir"
    elif args.transport == "http":
        print(
            "--transport http needs --queue-url URL (a running coordinator's "
            "address; start one with `python -m repro.experiments serve "
            "QUEUE_<name>.sqlite`)",
            file=sys.stderr,
        )
        return 1
    elif args.transport == "sqlite":
        queue, kind = distributed.queue_db_path(args.out, spec.name), "sqlite"
    else:
        queue, kind = distributed.queue_dir(args.out, spec.name), "dir"
    try:
        counts = distributed.enqueue_sweep(spec, queue, kind=kind)
    except (distributed.QueueCorrupt, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    done_note = (
        f" ({counts['already_done']} run(s) already ok in the shards)"
        if counts["already_done"]
        else ""
    )
    print(f"enqueued {counts['enqueued']} task(s) into {queue}{done_note}")
    print(f"  start workers with: python -m repro.experiments work {queue}")
    return 0


def _report_corrupt_tasks(queue: str) -> int:
    """Print the loud quarantined-corrupt report once; the count reported.

    The report names every quarantined task and its parse error, so a
    torn/edited task file surfaces as one actionable message instead of the
    old crash-holding-the-lease reclaim ping-pong.
    """
    try:
        quarantined = distributed.corrupt_report(queue)
    except distributed.QueueCorrupt:
        return 0  # the queue itself is unreadable; the caller already reported that
    if quarantined:
        print(
            f"CORRUPT: {len(quarantined)} task(s) quarantined in {queue} — the queue "
            f"drained around them; re-enqueue the sweep to reissue them:",
            file=sys.stderr,
        )
        for item in quarantined:
            print(f"  {item.task_id}: {item.reason}", file=sys.stderr)
    return len(quarantined)


def _command_work(args) -> int:
    try:
        stats = distributed.work_queue(
            args.queue,
            worker_id=args.worker_id,
            stale_after=args.stale_after,
            poll=args.poll,
            heartbeat=args.heartbeat,
            max_tasks=args.max_tasks,
            trace=args.trace,
            profile_dir=args.profile,
        )
    except (distributed.QueueCorrupt, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    print(
        f"worker drained {args.queue}: executed {stats['executed']} task(s), "
        f"{stats['errors']} error(s), reclaimed {stats['reclaimed']} stale lease(s)"
    )
    if _report_corrupt_tasks(args.queue):
        return 1
    return 0


def _command_serve(args) -> int:
    """Run the HTTP queue coordinator until interrupted.

    Wraps a local SQLite queue database in a threading HTTP server so
    remote ``work``/``collect``/``status`` processes need only the printed
    URL.  Plain HTTP, no authentication — trusted networks only.
    """
    port = distributed.DEFAULT_HTTP_PORT if args.port is None else args.port
    try:
        server = distributed.make_server(args.queue, args.host, port)
    except (distributed.QueueCorrupt, ValueError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 1
    host, bound_port = server.server_address[:2]
    print(
        f"serving queue {args.queue} at http://{host}:{bound_port} "
        f"(no auth — trusted networks only; Ctrl-C to stop)",
        flush=True,
    )
    # SIGTERM (systemd stop, docker stop, CI cleanup `kill`) gets the same
    # clean shutdown as Ctrl-C: close the listener, sever keep-alive
    # sessions, and close the SQLite connection so its WAL sidecars merge.
    previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
    return 0


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def _command_status(args) -> int:
    """A live, read-only look at a queue: counts, progress, heartbeat ages.

    Purely observational — it never touches lease liveness, so running it
    while workers drain the queue is always safe.  The transport is
    resolved once and closed via try/finally, so the status probe itself
    never leaves a connection (or WAL sidecar files) behind.
    """
    try:
        transport = distributed.resolve_transport(args.queue)
    except (distributed.QueueCorrupt, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    try:
        counts = distributed.queue_status(transport)
        progress = distributed.queue_progress(transport)
        leases = distributed.lease_report(transport)
    except (distributed.QueueCorrupt, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 1
    finally:
        transport.close()
    print(f"queue {args.queue} (sweep {progress['name']!r})")
    print(
        f"  progress: {progress['covered']}/{progress['expected']} run(s) journaled, "
        f"{progress['errors']} error(s)"
    )
    print(
        f"  pending tasks: {counts['tasks']}   live leases: {counts['leases']}   "
        f"worker shards: {counts['shards']}   quarantined: {counts['corrupt']}"
    )
    if progress["workers"]:
        print("  workers:")
        for entry in progress["workers"]:
            error_note = f", {entry['errors']} error(s)" if entry["errors"] else ""
            print(f"    {entry['worker']}: {entry['records']} record(s){error_note}")
    if leases:
        print("  leases:")
        for lease in leases:
            age = lease["age_seconds"]
            stale_note = "  STALE (reclaimable)" if age > args.stale_after else ""
            print(
                f"    {lease['task_id']} held by {lease['worker']}: "
                f"last heartbeat {age:.1f}s ago{stale_note}"
            )
    _report_corrupt_tasks(args.queue)
    return 0


def _command_trace(args) -> int:
    from repro.obs import format_trace_summary, load_trace_events, summarise_trace

    try:
        events = load_trace_events(args.paths)
    except OSError as error:
        print(str(error), file=sys.stderr)
        return 1
    if not events:
        print(f"no trace events in {', '.join(args.paths)}", file=sys.stderr)
        return 1
    print(format_trace_summary(summarise_trace(events)))
    return 0


def _command_collect(args) -> int:
    try:
        path, payload = distributed.collect_queue(args.queue, args.out, force=args.force)
    except distributed.QueueBusy as error:
        print(str(error), file=sys.stderr)
        return 1
    except (distributed.QueueCorrupt, distributed.QueueIncomplete, ValueError) as error:
        print(str(error), file=sys.stderr)
        _report_corrupt_tasks(args.queue)
        return 1
    if args.force:
        status = distributed.queue_status(args.queue)
        if status["leases"]:
            print(
                f"warning: collected with {status['leases']} live lease(s) outstanding; "
                f"the still-running worker's append will be a harmless duplicate",
                file=sys.stderr,
            )
    name = payload["sweep"]["name"]
    return _print_sweep_summary(name, path, payload)


def _command_list() -> int:
    print("declared workloads:")
    if not WORKLOADS:
        print("  (none declared)")
    else:
        width = max(len(name) for name in WORKLOADS)
        for name in sorted(WORKLOADS):
            spec = WORKLOADS[name]
            runs = len(spec.expand())
            print(f"  {name:<{width}}  [{spec.family}, {runs} runs]  {spec.description}")
    print("\ninstance families:")
    registered = families()
    if not registered:
        print("  (none registered)")
    else:
        width = max(len(name) for name in registered)
        for name, description in registered.items():
            print(f"  {name:<{width}}  {description}")
    return 0


def _command_report(args) -> int:
    loaded = _load_target(args.target, args.out)
    if loaded is None:
        return 1
    path, payload = loaded
    if _reject_all_errors(payload, path):
        return 1
    spec = payload["sweep"]
    print(f"sweep {spec['name']!r} (family {spec['family']}, seed {spec['seed']}, workers {payload['workers']})")
    timings = {entry["index"]: entry["wall_time_seconds"] for entry in payload["timings"]}
    header = f"  {'idx':>3}  {'params':<28}  {'strategy':<22}  {'ok':<3}  {'quantum':>7}  {'classical':>9}  {'time':>8}"
    print(header)
    for row in payload["rows"]:
        report = row["query_report"]
        params = ", ".join(f"{key}={value}" for key, value in sorted(row["params"].items())) or "-"
        status = row.get("status", "ok")
        ok = "ERR" if status == "error" else ("yes" if row["success"] else "NO")
        time_text = f"{timings.get(row['index'], 0.0) * 1e3:.1f}ms"
        print(
            f"  {row['index']:>3}  {params:<28.28}  {row['strategy']:<22.22}  "
            f"{ok:<3}  {report.get('quantum_queries', 0):>7}  "
            f"{report.get('classical_queries', 0):>9}  {time_text:>8}"
        )
    by_strategy: dict = {}
    for row in payload["rows"]:
        by_strategy.setdefault(row["strategy"], []).append(timings.get(row["index"], 0.0))
    if by_strategy:
        print("  per-strategy timings:")
        width = max(len(name) for name in by_strategy)
        for strategy in sorted(by_strategy):
            times = by_strategy[strategy]
            total = sum(times)
            print(
                f"    {strategy:<{width}}  runs={len(times):>3}  total={total:.3f}s  "
                f"mean={total / len(times) * 1e3:.1f}ms  max={max(times) * 1e3:.1f}ms"
            )
    aggregate = payload["aggregate"]
    print(
        f"  aggregate: {aggregate['successes']}/{aggregate['runs']} ok, "
        f"errors={aggregate.get('errors', 0)}, "
        f"quantum={aggregate['query_totals'].get('quantum_queries', 0)}, "
        f"classical={aggregate['query_totals'].get('classical_queries', 0)}, "
        f"wall={aggregate['wall_time_seconds']:.3f}s"
    )
    return 0


def _command_summarise(args) -> int:
    loaded = _load_target(args.target, args.out)
    if loaded is None:
        return 1
    path, payload = loaded
    if _reject_all_errors(payload, path):
        return 1
    analysis = analysis_mod.analyse(payload, source=path)
    name = analysis["sweep"]["name"]
    out_path = analysis_mod.write_analysis(args.out, name, analysis)
    print(
        f"sweep {name!r}: {analysis['runs']} completed run(s), "
        f"{analysis['errors']} error(s), {len(analysis['cells'])} grid cell(s)"
    )
    print(analysis_mod.format_table(analysis))
    print(analysis_mod.format_summary(analysis))
    print(f"  wrote {out_path}")
    return 0


def _command_plot(args) -> int:
    loaded = _load_target(args.target, args.out)
    if loaded is None:
        return 1
    path, payload = loaded
    if _reject_all_errors(payload, path):
        return 1
    analysis = analysis_mod.analyse(payload, source=path)
    print(f"sweep {analysis['sweep']['name']!r} ({analysis['kind']})")
    print(analysis_mod.ascii_plot(analysis))
    print(analysis_mod.format_summary(analysis))
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as handle:
            handle.write(analysis_mod.render_svg(analysis))
        print(f"  wrote {args.svg}")
    return 0


def _command_cache(args) -> int:
    if args.cache_command == "ls":
        entries = cache_entries(args.cache_dir)
        if not entries:
            print(f"no Cayley cache entries under {args.cache_dir!r}")
            return 0
        total = sum(entry["bytes"] for entry in entries)
        print(f"{len(entries)} entries, {total} bytes (least recently used first):")
        for entry in entries:
            print(f"  {entry['digest']}  {entry['bytes']:>12} bytes  {len(entry['files'])} file(s)")
        return 0
    try:
        evicted = prune_cache(args.cache_dir, args.max_bytes)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 1
    remaining = cache_entries(args.cache_dir)
    print(
        f"evicted {len(evicted)} entries ({sum(e['bytes'] for e in evicted)} bytes); "
        f"{len(remaining)} entries ({sum(e['bytes'] for e in remaining)} bytes) remain"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "enqueue":
        return _command_enqueue(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "work":
        return _command_work(args)
    if args.command == "collect":
        return _command_collect(args)
    if args.command == "status":
        return _command_status(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "list":
        return _command_list()
    if args.command == "cache":
        return _command_cache(args)
    if args.command in ("summarise", "summarize"):
        return _command_summarise(args)
    if args.command == "plot":
        return _command_plot(args)
    return _command_report(args)
