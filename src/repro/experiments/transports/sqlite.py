"""The single-file SQLite queue transport.

One database file replaces the ``QUEUE_<name>/`` directory tree: a
``meta`` table pins the sweep spec, a ``tasks`` status table
(pending/running/done/failed) replaces the ``tasks/``/``leases/``
directories and the ``os.rename`` lease, and a ``records`` table keyed by
worker id replaces the ``.jsonl`` shards.  Serialized forms are identical
to the directory transport's — each record row stores the exact
sorted-key JSON line a journal shard would hold — so the byte-identity
contract (``collect`` == single-process ``run``) carries over unchanged.

Claiming is the ``BEGIN IMMEDIATE`` transactional idiom: the claim
transaction takes the database write lock up front, selects the
lowest-indexed pending task, flips it to ``running`` and commits — under
contention exactly one worker wins each task, the others are serialized
behind the lock (with ``busy_timeout`` retries, never an error).
Heartbeats are row-timestamp updates on the running row; a dead worker's
row stops updating and ``reclaim_stale`` flips it back to ``pending``
inside the same kind of transaction.  A task whose stored payload will
not parse back into a ``RunSpec`` is flipped to ``failed`` (quarantined)
at claim time with the parse error in its ``note`` column.

The database runs in WAL mode: readers never block the single writer, a
SIGKILLed worker's half-finished transaction rolls back on the next open,
and the file is safe for concurrent processes *on one host*.  WAL
explicitly does not work across network filesystems — use the directory
transport for NFS-style multi-machine sweeps, or give every machine its
own queue.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.results import RunRecord, _safe_name
from repro.experiments.specs import RunSpec, SweepSpec
from repro.experiments.transports.base import (
    QUEUE_VERSION,
    Claim,
    CorruptTask,
    QueueCorrupt,
    Transport,
)

__all__ = ["SqliteTransport", "SQLITE_MAGIC", "queue_db_path"]

#: The 16-byte header every SQLite database file starts with; used by the
#: transport auto-detection to tell a queue database from a queue directory.
SQLITE_MAGIC = b"SQLite format 3\x00"


def _now() -> float:
    """Wall-clock source for lease timing; an indirection so tests can mock
    a clock step without patching the global ``time`` module."""
    return time.time()

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    idx          INTEGER PRIMARY KEY,
    -- TEXT: per-run seeds are unsigned 64-bit and can overflow SQLite's
    -- signed INTEGER; the JSON payload is the authoritative value anyway.
    seed         TEXT NOT NULL,
    run_json     TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending'
                 CHECK (status IN ('pending', 'running', 'done', 'failed')),
    worker       TEXT,
    heartbeat_at REAL,
    note         TEXT
);
CREATE INDEX IF NOT EXISTS tasks_by_status ON tasks(status, idx);
CREATE TABLE IF NOT EXISTS records (
    shard       TEXT NOT NULL,
    seq         INTEGER NOT NULL,
    idx         INTEGER NOT NULL,
    seed        TEXT NOT NULL,
    status      TEXT NOT NULL,
    record_json TEXT NOT NULL,
    PRIMARY KEY (shard, seq)
);
"""


def queue_db_path(out_dir: str, name: str) -> str:
    """The queue database of a sweep: ``<out_dir>/QUEUE_<name>.sqlite``."""
    return os.path.join(out_dir, f"QUEUE_{_safe_name(name)}.sqlite")


class SqliteTransport(Transport):
    """WAL-mode SQLite with ``BEGIN IMMEDIATE`` claim transactions."""

    kind = "sqlite"

    def __init__(self, path: str):
        self.location = path
        self._con: Optional[sqlite3.Connection] = None
        # One connection shared between the worker loop and its heartbeat
        # thread; the lock serialises statements (sqlite3 connections are
        # not thread-safe under concurrent use even with
        # check_same_thread=False).
        self._lock = threading.RLock()

    # -- connection ---------------------------------------------------------

    def _connect(self, create: bool = False) -> sqlite3.Connection:
        if self._con is not None:
            return self._con
        if not create and not os.path.exists(self.location):
            raise QueueCorrupt(
                f"{self.location!r} does not exist; not a sweep queue database"
            )
        if create:
            os.makedirs(os.path.dirname(self.location) or ".", exist_ok=True)
        try:
            con = sqlite3.connect(
                self.location,
                timeout=30.0,
                check_same_thread=False,
                isolation_level=None,  # autocommit; transactions are explicit
            )
            con.execute("PRAGMA journal_mode=WAL")
            con.execute("PRAGMA synchronous=NORMAL")
            con.execute("PRAGMA busy_timeout=30000")
        except sqlite3.Error as error:
            raise QueueCorrupt(
                f"queue database {self.location!r} is unreadable: {error}"
            ) from None
        self._con = con
        return con

    def close(self) -> None:
        """Close the connection (tests and long-lived callers)."""
        with self._lock:
            if self._con is not None:
                self._con.close()
                self._con = None

    def _query(self, sql: str, params: Tuple = ()) -> List[Tuple]:
        with self._lock:
            try:
                return self._connect().execute(sql, params).fetchall()
            except sqlite3.Error as error:
                raise QueueCorrupt(
                    f"queue database {self.location!r} is unusable: {error}"
                ) from None

    # -- queue lifecycle ----------------------------------------------------

    def exists(self) -> bool:
        if not os.path.exists(self.location):
            return False
        try:
            return bool(self._query("SELECT 1 FROM meta WHERE key = 'sweep'"))
        except QueueCorrupt:
            return False

    def initialise(self, spec: SweepSpec) -> None:
        with self._lock:
            con = self._connect(create=True)
            try:
                con.executescript(_SCHEMA)
                con.execute("BEGIN IMMEDIATE")
                have = con.execute("SELECT 1 FROM meta WHERE key = 'sweep'").fetchone()
                if have is None:
                    con.execute(
                        "INSERT INTO meta (key, value) VALUES ('queue_version', ?)",
                        (str(QUEUE_VERSION),),
                    )
                    con.execute(
                        "INSERT INTO meta (key, value) VALUES ('sweep', ?)",
                        (json.dumps(spec.to_json_dict(), sort_keys=True),),
                    )
                con.execute("COMMIT")
            except sqlite3.Error as error:
                con.execute("ROLLBACK")
                raise QueueCorrupt(
                    f"queue database {self.location!r} could not be initialised: {error}"
                ) from None

    def load_spec(self) -> SweepSpec:
        rows = dict(self._query("SELECT key, value FROM meta WHERE key IN ('queue_version', 'sweep')"))
        if "sweep" not in rows:
            raise QueueCorrupt(
                f"{self.location!r} has no pinned sweep spec; not a sweep queue database"
            )
        if rows.get("queue_version") != str(QUEUE_VERSION):
            raise QueueCorrupt(
                f"queue {self.location!r} has layout version {rows.get('queue_version')!r}, "
                f"expected {QUEUE_VERSION!r}; re-enqueue with this build"
            )
        try:
            return SweepSpec.from_json_dict(json.loads(rows["sweep"]))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            raise QueueCorrupt(
                f"queue {self.location!r} does not pin a sweep spec: {error}"
            ) from None

    # -- tasks and leases ---------------------------------------------------

    def enqueue(self, runs: Sequence[RunSpec]) -> None:
        with self._lock:
            con = self._connect()
            con.execute("BEGIN IMMEDIATE")
            try:
                for run in runs:
                    # Re-enqueue resets a done/failed row back to a fresh
                    # pending task with a clean payload.
                    con.execute(
                        "INSERT OR REPLACE INTO tasks (idx, seed, run_json, status) "
                        "VALUES (?, ?, ?, 'pending')",
                        (run.index, str(run.seed), json.dumps(run.to_json_dict(), sort_keys=True)),
                    )
                con.execute("COMMIT")
            except sqlite3.Error as error:
                con.execute("ROLLBACK")
                raise QueueCorrupt(
                    f"queue database {self.location!r} refused the enqueue: {error}"
                ) from None

    def claim_next(self, worker_id: str) -> Optional[Union[Claim, CorruptTask]]:
        with self._lock:
            con = self._connect()
            # BEGIN IMMEDIATE takes the write lock before the SELECT, so the
            # select-lowest-pending + flip-to-running pair is one atomic
            # claim: under contention exactly one worker wins each task, the
            # rest serialize behind the lock.
            con.execute("BEGIN IMMEDIATE")
            try:
                row = con.execute(
                    "SELECT idx, run_json FROM tasks WHERE status = 'pending' "
                    "ORDER BY idx LIMIT 1"
                ).fetchone()
                if row is None:
                    con.execute("COMMIT")
                    return None
                idx, run_json = row
                task_id = f"task #{idx}"
                try:
                    run = RunSpec.from_json_dict(json.loads(run_json))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                    # Quarantine inside the claim transaction: the task goes
                    # to 'failed' without ever being leased, so no worker can
                    # die holding it and no reclaim ping-pong can start.
                    reason = str(error)
                    con.execute(
                        "UPDATE tasks SET status = 'failed', worker = ?, "
                        "heartbeat_at = NULL, note = ? WHERE idx = ?",
                        (worker_id, reason, idx),
                    )
                    con.execute("COMMIT")
                    return CorruptTask(task_id=task_id, reason=reason)
                con.execute(
                    "UPDATE tasks SET status = 'running', worker = ?, "
                    "heartbeat_at = ?, note = NULL WHERE idx = ?",
                    (worker_id, _now(), idx),
                )
                con.execute("COMMIT")
                return Claim(task_id=task_id, run=run, handle=(idx, worker_id))
            except sqlite3.Error as error:
                con.execute("ROLLBACK")
                raise QueueCorrupt(
                    f"queue database {self.location!r} refused the claim: {error}"
                ) from None

    def heartbeat(self, claim: Claim) -> bool:
        idx, worker = claim.handle
        with self._lock:
            # MAX(...) clamps the stamp monotonically non-decreasing per row:
            # if the wall clock steps backwards between beats, the row keeps
            # its newest stamp instead of rewinding into reclaim_stale's
            # stale window — a live lease must never look abandoned because
            # of NTP.  (A forward step is already safe: the lease just looks
            # fresher.)
            try:
                cursor = self._connect().execute(
                    "UPDATE tasks SET heartbeat_at = MAX(COALESCE(heartbeat_at, 0), ?) "
                    "WHERE idx = ? AND worker = ? AND status = 'running'",
                    (_now(), idx, worker),
                )
            except sqlite3.Error as error:
                raise QueueCorrupt(
                    f"queue database {self.location!r} refused the heartbeat: {error}"
                ) from None
            return cursor.rowcount == 1

    def release(self, claim: Claim) -> None:
        idx, worker = claim.handle
        with self._lock:
            # rowcount 0 means the lease was reclaimed from under us while we
            # executed; harmless — collect dedups the re-execution.
            try:
                self._connect().execute(
                    "UPDATE tasks SET status = 'done', heartbeat_at = NULL "
                    "WHERE idx = ? AND worker = ? AND status = 'running'",
                    (idx, worker),
                )
            except sqlite3.Error as error:
                raise QueueCorrupt(
                    f"queue database {self.location!r} refused the release: {error}"
                ) from None

    def reclaim_stale(self, stale_after: float) -> int:
        with self._lock:
            con = self._connect()
            con.execute("BEGIN IMMEDIATE")
            try:
                cursor = con.execute(
                    "UPDATE tasks SET status = 'pending', worker = NULL, "
                    "heartbeat_at = NULL WHERE status = 'running' AND heartbeat_at < ?",
                    (_now() - stale_after,),
                )
                con.execute("COMMIT")
                return cursor.rowcount
            except sqlite3.Error as error:
                con.execute("ROLLBACK")
                raise QueueCorrupt(
                    f"queue database {self.location!r} refused the reclaim: {error}"
                ) from None

    # -- shards -------------------------------------------------------------

    def prepare_shard(self, spec: SweepSpec, worker_id: str) -> None:
        # Record inserts are transactional — a SIGKILL mid-insert rolls back
        # on the next open — so there is never a torn tail to compact and no
        # per-shard header to write: the spec is pinned once in `meta` for
        # the whole database.
        self._connect()

    def append_record(self, spec: SweepSpec, worker_id: str, record: RunRecord) -> None:
        # The stored line is byte-identical to a directory-shard journal
        # line, so both transports merge through the same record parser.
        line = json.dumps(record.to_json_dict(), sort_keys=True)
        with self._lock:
            con = self._connect()
            con.execute("BEGIN IMMEDIATE")
            try:
                (seq,) = con.execute(
                    "SELECT COALESCE(MAX(seq), -1) + 1 FROM records WHERE shard = ?",
                    (worker_id,),
                ).fetchone()
                con.execute(
                    "INSERT INTO records (shard, seq, idx, seed, status, record_json) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (worker_id, seq, record.index, str(record.seed), record.status, line),
                )
                con.execute("COMMIT")
            except sqlite3.Error as error:
                con.execute("ROLLBACK")
                raise QueueCorrupt(
                    f"queue database {self.location!r} refused the record append: {error}"
                ) from None

    def record_streams(self, spec: SweepSpec) -> List[Tuple[str, Mapping[Tuple[int, int], RunRecord]]]:
        rows = self._query(
            "SELECT shard, record_json FROM records ORDER BY shard, seq"
        )
        streams: Dict[str, Dict[Tuple[int, int], RunRecord]] = {}
        dead: set = set()
        for shard, line in rows:
            if shard in dead:
                continue
            records = streams.setdefault(shard, {})
            try:
                record = RunRecord.from_json_dict(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Mirror the journal-reader contract: a hand-edited or
                # unparseable entry stops that shard's stream at the last
                # good record instead of crashing the merge or guessing.
                dead.add(shard)
                continue
            records[(record.index, record.seed)] = record
        return sorted(streams.items())

    # -- status -------------------------------------------------------------

    def status(self) -> Dict[str, int]:
        counts = dict(self._query("SELECT status, COUNT(*) FROM tasks GROUP BY status"))
        (shards,) = self._query("SELECT COUNT(DISTINCT shard) FROM records")[0]
        return {
            "tasks": int(counts.get("pending", 0)),
            "leases": int(counts.get("running", 0)),
            "shards": int(shards),
            "corrupt": int(counts.get("failed", 0)),
        }

    def lease_details(self) -> List[Dict[str, object]]:
        now = _now()
        return [
            {
                "task_id": f"task #{idx}",
                "worker": str(worker or "?"),
                "age_seconds": max(0.0, now - float(heartbeat_at or 0.0)),
            }
            for idx, worker, heartbeat_at in self._query(
                "SELECT idx, worker, heartbeat_at FROM tasks "
                "WHERE status = 'running' ORDER BY idx"
            )
        ]

    def corrupt_tasks(self) -> List[CorruptTask]:
        return [
            CorruptTask(task_id=f"task #{idx}", reason=str(note or "unparseable task payload"))
            for idx, note in self._query(
                "SELECT idx, note FROM tasks WHERE status = 'failed' ORDER BY idx"
            )
        ]

    def clear_corrupt(self) -> int:
        with self._lock:
            cursor = self._connect().execute("DELETE FROM tasks WHERE status = 'failed'")
            return cursor.rowcount
