"""Pluggable queue transports for the distributed runner.

The :class:`~repro.experiments.transports.base.Transport` protocol is the
seam between the ``enqueue``/``work``/``collect`` lifecycle (which lives
in :mod:`repro.experiments.distributed`) and the coordination backend.
Three backends ship — the shared-directory queue, a single-file SQLite
database, and an HTTP client speaking to a coordinator serving one —
and :func:`resolve_transport` picks one from a queue location: an
explicit ``kind``, an ``http://``/``https://`` URL, an existing
directory vs an existing file with the SQLite magic header, or (for
paths that do not exist yet) the file extension.
"""

from __future__ import annotations

import os
from typing import Union

from repro.experiments.transports.base import (
    QUEUE_VERSION,
    Claim,
    CorruptTask,
    QueueBusy,
    QueueCorrupt,
    QueueIncomplete,
    Transport,
)
from repro.experiments.transports.directory import DirectoryTransport, queue_dir, shard_path
from repro.experiments.transports.http import (
    HTTP_PROTOCOL_VERSION,
    HttpTransport,
    make_server,
    serve,
)
from repro.experiments.transports.sqlite import SQLITE_MAGIC, SqliteTransport, queue_db_path

__all__ = [
    "HTTP_PROTOCOL_VERSION",
    "QUEUE_VERSION",
    "Claim",
    "CorruptTask",
    "DirectoryTransport",
    "HttpTransport",
    "QueueBusy",
    "QueueCorrupt",
    "QueueIncomplete",
    "SqliteTransport",
    "TRANSPORT_KINDS",
    "Transport",
    "make_server",
    "queue_db_path",
    "queue_dir",
    "resolve_transport",
    "serve",
    "shard_path",
]

#: The selectable backend names (the CLI ``--transport`` choices).
TRANSPORT_KINDS = ("dir", "sqlite", "http")

#: File extensions treated as SQLite queue databases when the path does
#: not exist yet (an existing file is sniffed by its magic header instead).
_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")


def resolve_transport(queue: Union[str, Transport], kind: str = "auto") -> Transport:
    """Resolve a queue location (or a ready transport) to a transport.

    ``kind`` may force a backend (``"dir"`` / ``"sqlite"`` / ``"http"``);
    ``"auto"`` detects one: an ``http://``/``https://`` location is a
    coordinator URL, an existing directory is a directory queue, an
    existing file must carry the SQLite magic header, and a path that
    does not exist yet is routed by its extension
    (``.sqlite``/``.sqlite3``/``.db`` mean SQLite, anything else a
    directory).
    """
    if isinstance(queue, Transport):
        return queue
    if kind == "dir":
        return DirectoryTransport(queue)
    if kind == "sqlite":
        return SqliteTransport(queue)
    if kind == "http":
        return HttpTransport(queue)
    if kind != "auto":
        raise ValueError(f"unknown transport kind {kind!r}; expected one of {TRANSPORT_KINDS}")
    if queue.startswith(("http://", "https://")):
        return HttpTransport(queue)
    if os.path.isdir(queue):
        return DirectoryTransport(queue)
    if os.path.isfile(queue):
        with open(queue, "rb") as handle:
            magic = handle.read(len(SQLITE_MAGIC))
        if magic == SQLITE_MAGIC or (not magic and queue.endswith(_SQLITE_SUFFIXES)):
            return SqliteTransport(queue)
        raise QueueCorrupt(
            f"{queue!r} is neither a queue directory nor a SQLite queue database"
        )
    if queue.endswith(_SQLITE_SUFFIXES):
        return SqliteTransport(queue)
    return DirectoryTransport(queue)
