"""The HTTP queue coordinator: workers need a URL, not a mount.

The directory and SQLite transports both require every worker to share a
filesystem with the queue.  This module removes that constraint with two
halves speaking one tiny JSON-over-HTTP protocol:

* the **server** (``python -m repro.experiments serve QUEUE.sqlite``) — a
  stdlib :class:`~http.server.ThreadingHTTPServer` wrapping a local
  :class:`~repro.experiments.transports.sqlite.SqliteTransport`.  Every
  :class:`~repro.experiments.transports.base.Transport` operation is one
  ``POST /api/<operation>`` endpoint taking and returning JSON; the
  SQLite transport's own lock serialises concurrent handler threads, so
  claims stay exactly-once under contention exactly as they are locally.
* the **client** (:class:`HttpTransport`) — a full ``Transport``
  implementation over a persistent :mod:`http.client` connection, so
  ``work http://coordinator:8765`` and ``collect http://coordinator:8765``
  behave byte-for-byte like a worker on the coordinator's own disk.

The wire protocol is pinned by :data:`HTTP_PROTOCOL_VERSION`: the client
performs a ``handshake`` exchange before its first real operation and
refuses a coordinator speaking a different protocol (or serving a
different :data:`~repro.experiments.transports.base.QUEUE_VERSION`
layout); the server independently rejects requests whose
``X-Queue-Protocol`` header disagrees, so a mixed-build fleet fails
loudly at the first request instead of corrupting the queue.

**Restart resilience**: every client call retries connection-level
failures (refused, reset, dropped mid-response) with exponential backoff
before giving up, so restarting the coordinator does not kill live
workers mid-lease — they stall for the gap and carry on.  The retry is
safe for every operation because the lease protocol already tolerates
replays: a ``claim_next`` whose response was lost leaves a dangling lease
that stale-reclamation returns to the pending set, a replayed
``append_record`` is deduplicated by ``(index, seed)`` at collect time,
and ``release``/``heartbeat`` are idempotent.

**Security caveat**: the coordinator speaks plain HTTP with **no
authentication** — anyone who can reach the port can claim tasks and
append records.  Bind it to localhost or a trusted network only.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import sys
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.results import RunRecord
from repro.experiments.specs import RunSpec, SweepSpec
from repro.experiments.transports.base import (
    QUEUE_VERSION,
    Claim,
    CorruptTask,
    QueueCorrupt,
    Transport,
)
from repro.experiments.transports.sqlite import SqliteTransport

__all__ = [
    "HTTP_PROTOCOL_VERSION",
    "DEFAULT_PORT",
    "MAX_REQUEST_BYTES",
    "HttpTransport",
    "make_server",
    "serve",
]

#: Wire-protocol version of the coordinator's JSON API; bumped on any
#: incompatible change so mismatched builds refuse each other at the
#: handshake instead of misreading requests.
HTTP_PROTOCOL_VERSION = 1

#: Default coordinator port of the ``serve`` CLI subcommand.
DEFAULT_PORT = 8765

#: Hard cap on a request body.  The largest legitimate payload is a full
#: ``enqueue`` expansion (a few KB per run); anything past this is a
#: stuck client or junk traffic and is rejected with 413 unread.
MAX_REQUEST_BYTES = 16 * 1024 * 1024

#: Exception names the server reports that the client re-raises as the
#: same type; anything unrecognised degrades to :class:`QueueCorrupt`.
_ERROR_TYPES = {
    "QueueCorrupt": QueueCorrupt,
    "ValueError": ValueError,
}


def _encode_handle(handle: object) -> object:
    """A lease handle as JSON (tuples survive as lists, see ``_decode``)."""
    if isinstance(handle, tuple):
        return list(handle)
    return handle


def _decode_handle(handle: object) -> object:
    if isinstance(handle, list):
        return tuple(handle)
    return handle


# -- server-side operation table --------------------------------------------
#
# One entry per Transport operation: (transport, request payload) -> a
# JSON-serializable result.  The handler wraps these uniformly (errors
# become typed JSON error bodies), so adding an operation is one line
# here plus one client method below.


def _spec_from(payload: Dict[str, object]) -> SweepSpec:
    return SweepSpec.from_json_dict(payload["spec"])


def _claim_from(payload: Dict[str, object]) -> Claim:
    return Claim(
        task_id=str(payload["task_id"]),
        run=None,  # heartbeat/release only touch the handle
        handle=_decode_handle(payload["handle"]),
    )


def _op_handshake(transport: Transport, payload: Dict[str, object]) -> Dict[str, object]:
    return {
        "protocol": HTTP_PROTOCOL_VERSION,
        "queue_version": QUEUE_VERSION,
        "backend": transport.kind,
    }


def _op_exists(transport: Transport, payload: Dict[str, object]) -> bool:
    return transport.exists()


def _op_initialise(transport: Transport, payload: Dict[str, object]) -> None:
    transport.initialise(_spec_from(payload))


def _op_load_spec(transport: Transport, payload: Dict[str, object]) -> Dict[str, object]:
    return transport.load_spec().to_json_dict()


def _op_enqueue(transport: Transport, payload: Dict[str, object]) -> None:
    transport.enqueue([RunSpec.from_json_dict(run) for run in payload["runs"]])


def _op_claim_next(transport: Transport, payload: Dict[str, object]) -> Dict[str, object]:
    claim = transport.claim_next(str(payload["worker_id"]))
    if claim is None:
        return {"outcome": "none"}
    if isinstance(claim, CorruptTask):
        return {"outcome": "corrupt", "task_id": claim.task_id, "reason": claim.reason}
    return {
        "outcome": "claim",
        "task_id": claim.task_id,
        "run": claim.run.to_json_dict(),
        "handle": _encode_handle(claim.handle),
    }


def _op_heartbeat(transport: Transport, payload: Dict[str, object]) -> bool:
    return transport.heartbeat(_claim_from(payload))


def _op_release(transport: Transport, payload: Dict[str, object]) -> None:
    transport.release(_claim_from(payload))


def _op_reclaim_stale(transport: Transport, payload: Dict[str, object]) -> int:
    return transport.reclaim_stale(float(payload["stale_after"]))


def _op_prepare_shard(transport: Transport, payload: Dict[str, object]) -> None:
    spec = _spec_from(payload)
    if transport.exists() and transport.load_spec() != spec:
        raise ValueError(
            "shard refused: the worker's sweep is a different sweep configuration "
            "(name/seed/grid/sampler mismatch) than the one this queue pins"
        )
    transport.prepare_shard(spec, str(payload["worker_id"]))


def _op_append_record(transport: Transport, payload: Dict[str, object]) -> None:
    transport.append_record(
        _spec_from(payload),
        str(payload["worker_id"]),
        RunRecord.from_json_dict(payload["record"]),
    )


def _op_record_streams(transport: Transport, payload: Dict[str, object]) -> List[List[object]]:
    # Each stream's mapping iterates in append order (deduplicated
    # last-wins by the backend), so serializing the values as an ordered
    # list preserves exactly the semantics the client must rebuild.
    return [
        [shard_id, [record.to_json_dict() for record in records.values()]]
        for shard_id, records in transport.record_streams(_spec_from(payload))
    ]


def _op_status(transport: Transport, payload: Dict[str, object]) -> Dict[str, int]:
    return transport.status()


def _op_lease_details(transport: Transport, payload: Dict[str, object]) -> List[Dict[str, object]]:
    return transport.lease_details()


def _op_corrupt_tasks(transport: Transport, payload: Dict[str, object]) -> List[Dict[str, str]]:
    return [
        {"task_id": task.task_id, "reason": task.reason}
        for task in transport.corrupt_tasks()
    ]


def _op_clear_corrupt(transport: Transport, payload: Dict[str, object]) -> int:
    return transport.clear_corrupt()


_OPERATIONS = {
    "handshake": _op_handshake,
    "exists": _op_exists,
    "initialise": _op_initialise,
    "load_spec": _op_load_spec,
    "enqueue": _op_enqueue,
    "claim_next": _op_claim_next,
    "heartbeat": _op_heartbeat,
    "release": _op_release,
    "reclaim_stale": _op_reclaim_stale,
    "prepare_shard": _op_prepare_shard,
    "append_record": _op_append_record,
    "record_streams": _op_record_streams,
    "status": _op_status,
    "lease_details": _op_lease_details,
    "corrupt_tasks": _op_corrupt_tasks,
    "clear_corrupt": _op_clear_corrupt,
}


class QueueRequestHandler(BaseHTTPRequestHandler):
    """One ``POST /api/<operation>`` endpoint per Transport operation."""

    # HTTP/1.1 keeps worker connections persistent: one TCP session per
    # worker instead of a connect per heartbeat.
    protocol_version = "HTTP/1.1"
    server_version = "repro-queue-coordinator"

    def log_message(self, format, *args):  # noqa: A002 - BaseHTTPRequestHandler API
        pass  # the coordinator is silent; failures surface as JSON errors

    def setup(self) -> None:
        super().setup()
        self.server.track_connection(self.connection)

    def finish(self) -> None:
        super().finish()
        self.server.untrack_connection(self.connection)

    def _reply(self, status: int, payload: Dict[str, object], close: bool = False) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, status: int, error: BaseException, close: bool = False) -> None:
        self._reply(
            status,
            {"error": {"type": type(error).__name__, "message": str(error)}},
            close=close,
        )

    def do_GET(self) -> None:
        self.send_response(405)
        self.send_header("Allow", "POST")
        self.send_header("Content-Length", "0")
        self.end_headers()

    def do_POST(self) -> None:
        if not self.path.startswith("/api/"):
            self._reply_error(404, QueueCorrupt(f"unknown endpoint {self.path!r}"), close=True)
            return
        operation = _OPERATIONS.get(self.path[len("/api/"):])
        if operation is None:
            self._reply_error(404, QueueCorrupt(f"unknown operation {self.path!r}"), close=True)
            return
        spoken = self.headers.get("X-Queue-Protocol")
        if spoken is not None and spoken != str(HTTP_PROTOCOL_VERSION):
            self._reply_error(
                400,
                QueueCorrupt(
                    f"client speaks queue protocol {spoken}, this coordinator speaks "
                    f"{HTTP_PROTOCOL_VERSION}; run matching builds on both ends"
                ),
                close=True,
            )
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply_error(
                411, QueueCorrupt("request needs a valid Content-Length"), close=True
            )
            return
        if length > MAX_REQUEST_BYTES:
            # Reject unread: draining an adversarially huge body would be
            # the denial of service it claims to prevent.
            self._reply_error(
                413,
                QueueCorrupt(
                    f"request body of {length} bytes exceeds the {MAX_REQUEST_BYTES}-byte cap"
                ),
                close=True,
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError(f"expected a JSON object, got {type(payload).__name__}")
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as error:
            self._reply_error(
                400, QueueCorrupt(f"malformed request body: {error}"), close=True
            )
            return
        try:
            result = operation(self.server.queue_transport, payload)
        except (KeyError, TypeError) as error:
            # A structurally wrong payload (missing field, bad shape) is a
            # client bug, not a queue fault.
            self._reply_error(400, QueueCorrupt(f"malformed request payload: {error!r}"))
            return
        except (QueueCorrupt, ValueError) as error:
            self._reply_error(400, error)
            return
        except Exception as error:  # pragma: no cover - defensive
            self._reply_error(500, error)
            return
        self._reply(200, {"result": result})


class QueueHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one local queue transport."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], transport: Transport):
        self._connections: set = set()
        self._connections_lock = threading.Lock()
        super().__init__(address, QueueRequestHandler)
        self.queue_transport = transport

    def track_connection(self, connection) -> None:
        with self._connections_lock:
            self._connections.add(connection)

    def untrack_connection(self, connection) -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    def handle_error(self, request, client_address) -> None:
        # A worker SIGKILLed mid-request, or a connection dropped while the
        # reply was in flight, is a normal lease-protocol event (the stale
        # reclaim heals it) — not a coordinator fault worth a traceback.
        error = sys.exc_info()[1]
        if isinstance(error, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)

    def server_close(self) -> None:
        super().server_close()
        # Sever live keep-alive sessions too: handler threads are daemonic,
        # so without this a "stopped" coordinator would keep answering the
        # workers already connected to it.
        with self._connections_lock:
            live, self._connections = list(self._connections), set()
        for connection in live:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass  # already torn down by its handler thread
        self.queue_transport.close()


def make_server(
    queue: Union[str, Transport], host: str = "127.0.0.1", port: int = 0
) -> QueueHTTPServer:
    """Build (but do not run) a coordinator over a local SQLite queue.

    ``queue`` is the ``QUEUE_<name>.sqlite`` path (it need not exist yet —
    a remote ``enqueue`` initialises it) or an already-constructed local
    transport.  ``port=0`` binds an ephemeral port; read the actual
    address back from ``server.server_address``.
    """
    if isinstance(queue, Transport):
        transport = queue
    else:
        location = str(queue)
        if location.startswith(("http://", "https://")):
            raise ValueError(
                "the coordinator serves a *local* queue database — pass the "
                "QUEUE_<name>.sqlite path, not a URL (coordinators do not chain)"
            )
        if os.path.isdir(location):
            raise ValueError(
                f"{location!r} is a directory queue; the HTTP coordinator serves a "
                f"SQLite queue database (enqueue with --transport sqlite, or pass "
                f"the QUEUE_<name>.sqlite path)"
            )
        transport = SqliteTransport(location)
    if isinstance(transport, HttpTransport):
        raise ValueError("cannot chain one HTTP coordinator behind another")
    return QueueHTTPServer((host, port), transport)


def serve(queue: Union[str, Transport], host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> None:
    """Run a coordinator until interrupted (the ``serve`` CLI body)."""
    server = make_server(queue, host, port)
    try:
        server.serve_forever()
    finally:
        server.server_close()


class HttpTransport(Transport):
    """The client half: the full Transport protocol over JSON POSTs.

    Every call retries connection-level failures with exponential backoff
    (``retries`` attempts beyond the first, delays doubling from
    ``backoff`` up to ``backoff_cap`` seconds), so a coordinator restart
    stalls live workers for the gap instead of killing them.  The
    connection is a persistent keep-alive session shared between the
    worker loop and its heartbeat thread (serialised by a lock) and must
    be released with :meth:`close`; a closed transport transparently
    reconnects if used again.
    """

    kind = "http"

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retries: int = 8,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ):
        parts = urllib.parse.urlsplit(url)
        if parts.scheme not in ("http", "https") or not parts.netloc:
            raise ValueError(
                f"{url!r} is not an http(s) queue coordinator URL "
                f"(expected e.g. http://coordinator:8765)"
            )
        self.location = url.rstrip("/")
        self._scheme = parts.scheme
        self._netloc = parts.netloc
        self._base_path = parts.path.rstrip("/")
        self._timeout = float(timeout)
        self._retries = max(0, int(retries))
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        # One keep-alive connection shared between the worker loop and its
        # heartbeat daemon thread; http.client connections are not
        # thread-safe, so the lock serialises whole request/response pairs.
        self._lock = threading.RLock()
        self._conn: Optional[http.client.HTTPConnection] = None
        self._handshaken = False

    # -- wire ---------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            factory = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            self._conn = factory(self._netloc, timeout=self._timeout)
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
            self._conn = None

    def _rpc(self, operation: str, payload: Optional[Dict[str, object]] = None):
        if operation != "handshake":
            self._ensure_handshake()
        body = json.dumps(payload or {}, sort_keys=True).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "X-Queue-Protocol": str(HTTP_PROTOCOL_VERSION),
        }
        with self._lock:
            delay = self._backoff
            for attempt in range(self._retries + 1):
                try:
                    conn = self._connection()
                    conn.request("POST", f"{self._base_path}/api/{operation}", body, headers)
                    response = conn.getresponse()
                    data = response.read()
                    status = response.status
                    break
                except (http.client.HTTPException, OSError) as error:
                    # Connection refused/reset/dropped: the coordinator is
                    # restarting (or the network blipped).  Reconnect with
                    # backoff; the lease protocol tolerates the replay.
                    self._drop_connection()
                    if attempt == self._retries:
                        raise QueueCorrupt(
                            f"queue coordinator {self.location!r} is unreachable "
                            f"after {attempt + 1} attempt(s): {error}"
                        ) from None
                    time.sleep(delay)
                    delay = min(delay * 2.0, self._backoff_cap)
        try:
            parsed = json.loads(data.decode("utf-8"))
            if not isinstance(parsed, dict):
                raise ValueError(f"expected a JSON object, got {type(parsed).__name__}")
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as error:
            raise QueueCorrupt(
                f"queue coordinator {self.location!r} returned an unparseable "
                f"response to {operation!r} (HTTP {status}): {error}"
            ) from None
        if status == 200:
            return parsed.get("result")
        error_info = parsed.get("error") or {}
        message = str(error_info.get("message") or f"HTTP {status}")
        raise _ERROR_TYPES.get(str(error_info.get("type")), QueueCorrupt)(message)

    def _ensure_handshake(self) -> None:
        with self._lock:
            if self._handshaken:
                return
            info = self._rpc("handshake")
            if info.get("protocol") != HTTP_PROTOCOL_VERSION:
                raise QueueCorrupt(
                    f"queue coordinator {self.location!r} speaks wire protocol "
                    f"{info.get('protocol')!r}, this build speaks {HTTP_PROTOCOL_VERSION}; "
                    f"run matching builds on both ends"
                )
            if info.get("queue_version") != QUEUE_VERSION:
                raise QueueCorrupt(
                    f"queue coordinator {self.location!r} serves layout version "
                    f"{info.get('queue_version')!r}, expected {QUEUE_VERSION}; "
                    f"re-enqueue with this build"
                )
            self._handshaken = True

    def close(self) -> None:
        """Release the keep-alive session (reconnects lazily if reused)."""
        with self._lock:
            self._drop_connection()

    # -- queue lifecycle ----------------------------------------------------

    def exists(self) -> bool:
        return bool(self._rpc("exists"))

    def initialise(self, spec: SweepSpec) -> None:
        self._rpc("initialise", {"spec": spec.to_json_dict()})

    def load_spec(self) -> SweepSpec:
        return SweepSpec.from_json_dict(self._rpc("load_spec"))

    # -- tasks and leases ---------------------------------------------------

    def enqueue(self, runs: Sequence[RunSpec]) -> None:
        self._rpc("enqueue", {"runs": [run.to_json_dict() for run in runs]})

    def claim_next(self, worker_id: str) -> Optional[Union[Claim, CorruptTask]]:
        result = self._rpc("claim_next", {"worker_id": worker_id})
        outcome = result.get("outcome")
        if outcome == "none":
            return None
        if outcome == "corrupt":
            return CorruptTask(task_id=str(result["task_id"]), reason=str(result["reason"]))
        if outcome != "claim":
            raise QueueCorrupt(
                f"queue coordinator {self.location!r} returned an unknown claim "
                f"outcome {outcome!r}"
            )
        return Claim(
            task_id=str(result["task_id"]),
            run=RunSpec.from_json_dict(result["run"]),
            handle=_decode_handle(result["handle"]),
        )

    def _claim_payload(self, claim: Claim) -> Dict[str, object]:
        return {"task_id": claim.task_id, "handle": _encode_handle(claim.handle)}

    def heartbeat(self, claim: Claim) -> bool:
        return bool(self._rpc("heartbeat", self._claim_payload(claim)))

    def release(self, claim: Claim) -> None:
        self._rpc("release", self._claim_payload(claim))

    def reclaim_stale(self, stale_after: float) -> int:
        return int(self._rpc("reclaim_stale", {"stale_after": float(stale_after)}))

    # -- shards -------------------------------------------------------------

    def prepare_shard(self, spec: SweepSpec, worker_id: str) -> None:
        self._rpc("prepare_shard", {"spec": spec.to_json_dict(), "worker_id": worker_id})

    def append_record(self, spec: SweepSpec, worker_id: str, record: RunRecord) -> None:
        self._rpc(
            "append_record",
            {
                "spec": spec.to_json_dict(),
                "worker_id": worker_id,
                "record": record.to_json_dict(),
            },
        )

    def record_streams(self, spec: SweepSpec) -> List[Tuple[str, Mapping[Tuple[int, int], RunRecord]]]:
        streams = []
        for shard_id, entries in self._rpc("record_streams", {"spec": spec.to_json_dict()}):
            records: Dict[Tuple[int, int], RunRecord] = {}
            for entry in entries:
                record = RunRecord.from_json_dict(entry)
                records[(record.index, record.seed)] = record
            streams.append((str(shard_id), records))
        return streams

    # -- status -------------------------------------------------------------

    def status(self) -> Dict[str, int]:
        return {key: int(value) for key, value in self._rpc("status").items()}

    def lease_details(self) -> List[Dict[str, object]]:
        return list(self._rpc("lease_details"))

    def corrupt_tasks(self) -> List[CorruptTask]:
        return [
            CorruptTask(task_id=str(entry["task_id"]), reason=str(entry["reason"]))
            for entry in self._rpc("corrupt_tasks")
        ]

    def clear_corrupt(self) -> int:
        return int(self._rpc("clear_corrupt"))
