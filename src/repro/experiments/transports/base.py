"""The queue transport protocol.

A *transport* is the coordination backend of the distributed runner: it
stores the pinned sweep spec, the claimable tasks, the leases of running
tasks and the per-worker record shards, and exposes the eight operations
the ``enqueue``/``work``/``collect`` lifecycle is written against —
enqueue, claim, heartbeat, release, reclaim, shard append, shard
enumerate, status.  ``RunSpec`` tasks and ``RunRecord`` shard entries are
JSON round-trippable, so every backend speaks the same serialized forms
and the byte-identity contract (``collect`` == single-process ``run``)
holds per transport.

Three backends ship:

* :class:`~repro.experiments.transports.directory.DirectoryTransport` —
  the original shared-directory queue (atomic ``os.rename`` leases,
  mtime heartbeats, ``.jsonl`` journal shards); works on any shared
  filesystem including NFS.
* :class:`~repro.experiments.transports.sqlite.SqliteTransport` — a
  single-file SQLite database in WAL mode with ``BEGIN IMMEDIATE``
  transactional claims over a pending/running/done status table; one
  file instead of a directory tree, safe multi-process access on one
  host (WAL does not support network filesystems).
* :class:`~repro.experiments.transports.http.HttpTransport` — the
  client half of the HTTP coordinator (``python -m repro.experiments
  serve QUEUE.sqlite``): the same operations as JSON POSTs against a
  ``ThreadingHTTPServer`` wrapping a ``SqliteTransport``, so workers
  need only a URL, not a shared mount.

The corrupt-task contract is part of the protocol: a task whose payload
cannot be parsed back into a :class:`RunSpec` is *quarantined* by
``claim_next`` (moved out of the claimable set, never leased) and
surfaced as a :class:`CorruptTask` so the worker reports it once and
keeps draining — it must never die holding the lease, which would put
the task into an infinite stale-reclaim/crash ping-pong between workers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.results import RunRecord
from repro.experiments.specs import RunSpec, SweepSpec

__all__ = [
    "Claim",
    "CorruptTask",
    "QueueBusy",
    "QueueCorrupt",
    "QueueIncomplete",
    "Transport",
    "QUEUE_VERSION",
]

#: Queue layout version; bumped if a transport's on-disk protocol ever
#: changes so a worker from an older build refuses the queue rather than
#: misreading it.  Shared by every transport.
QUEUE_VERSION = 1


class QueueIncomplete(RuntimeError):
    """``collect`` was asked to merge a queue that still has unfinished work."""

    def __init__(self, queue: str, missing: List[Tuple[int, int]], tasks: int, leases: int):
        self.queue = queue
        self.missing = missing
        shown = ", ".join(str(key) for key in missing[:5])
        suffix = ", ..." if len(missing) > 5 else ""
        super().__init__(
            f"queue {queue!r} is incomplete: {len(missing)} run(s) have no journaled "
            f"record ((index, seed) pairs {shown}{suffix}); {tasks} unclaimed task(s) "
            f"and {leases} outstanding lease(s) remain — run more workers (or wait "
            f"for stale leases to be reclaimed) before collecting"
        )


class QueueCorrupt(RuntimeError):
    """A queue artifact (header, task payload or quarantine) is unusable.

    A torn task payload means ``enqueue`` was interrupted mid-write on a
    filesystem without atomic rename semantics, or the task was edited;
    either way the unit of work is unknowable.  The transport quarantines
    it at claim time and ``collect`` raises this error naming the
    quarantined tasks — re-enqueue the sweep to reissue them.
    """


class QueueBusy(RuntimeError):
    """``collect`` found live leases outstanding on an otherwise covered queue.

    Reclaim-after-append duplicates can fully cover the expansion while a
    worker holding a re-claimed lease is still executing (and will append
    to its shard when it finishes).  Collecting mid-flight reads a
    moving ledger, so ``collect`` refuses unless forced.
    """

    def __init__(self, queue: str, leases: int):
        self.queue = queue
        self.leases = leases
        super().__init__(
            f"queue {queue!r} still has {leases} live lease(s) outstanding; the "
            f"expansion is covered but a worker is still executing — wait for it "
            f"to drain (or pass --force to collect the covered rows anyway)"
        )


@dataclass(frozen=True)
class Claim:
    """A successfully claimed task: the run to execute plus the lease handle.

    ``handle`` is transport-private (a lease file path, a task row key);
    callers only pass it back to :meth:`Transport.heartbeat` /
    :meth:`Transport.release`.
    """

    task_id: str
    run: RunSpec
    handle: object


@dataclass(frozen=True)
class CorruptTask:
    """A task quarantined at claim time because its payload would not parse."""

    task_id: str
    reason: str


class Transport(abc.ABC):
    """The eight-operation coordination protocol behind the distributed queue.

    Implementations must make :meth:`claim_next` exactly-once under
    contention (two workers can never both claim one task), must never
    let a worker die holding the lease of an unparseable task (quarantine
    instead), and must store records in append order per shard so the
    last record for an ``(index, seed)`` key within a shard wins — the
    same semantics :func:`~repro.experiments.results.load_journal` gives
    the directory shards.
    """

    #: Short backend name (``"dir"`` / ``"sqlite"`` / ``"http"``), used by the CLI.
    kind: str = "?"

    #: Human-readable queue location (a directory or a database path).
    location: str = "?"

    # -- queue lifecycle ----------------------------------------------------

    @abc.abstractmethod
    def exists(self) -> bool:
        """True when the queue has been initialised (a spec is pinned)."""

    @abc.abstractmethod
    def initialise(self, spec: SweepSpec) -> None:
        """Create the queue layout and pin ``spec`` as its header."""

    @abc.abstractmethod
    def load_spec(self) -> SweepSpec:
        """The pinned sweep spec (validated header); :class:`QueueCorrupt` if unusable."""

    # -- tasks and leases ---------------------------------------------------

    @abc.abstractmethod
    def enqueue(self, runs: Sequence[RunSpec]) -> None:
        """Materialise ``runs`` as claimable (pending) tasks."""

    @abc.abstractmethod
    def claim_next(self, worker_id: str) -> Optional[Union[Claim, CorruptTask]]:
        """Atomically claim the lowest-indexed pending task, if any.

        Returns a :class:`Claim` on success, a :class:`CorruptTask` when
        the claimed payload would not parse (the task is quarantined, not
        leased — the caller reports it and keeps going), or ``None`` when
        nothing is claimable.
        """

    @abc.abstractmethod
    def heartbeat(self, claim: Claim) -> bool:
        """Refresh the lease's liveness stamp; False when the lease is gone."""

    @abc.abstractmethod
    def release(self, claim: Claim) -> None:
        """Complete the task: drop the lease (idempotent if already reclaimed)."""

    @abc.abstractmethod
    def reclaim_stale(self, stale_after: float) -> int:
        """Return leases idle for more than ``stale_after`` seconds to the
        pending set; returns the number reclaimed."""

    # -- shards -------------------------------------------------------------

    @abc.abstractmethod
    def prepare_shard(self, spec: SweepSpec, worker_id: str) -> None:
        """Make the worker's shard appendable (head a fresh one, recover a
        torn one); raises ``ValueError`` when an existing shard pins a
        different spec."""

    @abc.abstractmethod
    def append_record(self, spec: SweepSpec, worker_id: str, record: RunRecord) -> None:
        """Append one completed record to the worker's own shard."""

    @abc.abstractmethod
    def record_streams(self, spec: SweepSpec) -> List[Tuple[str, Mapping[Tuple[int, int], RunRecord]]]:
        """Enumerate every shard as ``(shard_id, records-by-(index, seed))``,
        each shard validated against ``spec`` and deduplicated last-wins in
        append order."""

    # -- status -------------------------------------------------------------

    @abc.abstractmethod
    def status(self) -> Dict[str, int]:
        """``{"tasks": pending, "leases": running, "shards": n, "corrupt": quarantined}``."""

    @abc.abstractmethod
    def lease_details(self) -> List[Dict[str, object]]:
        """One entry per live lease, sorted by task id:
        ``{"task_id": str, "worker": str, "age_seconds": float}`` where
        ``age_seconds`` is the time since the last heartbeat (>= 0).  A
        purely observational read — it must not touch lease liveness."""

    @abc.abstractmethod
    def corrupt_tasks(self) -> List[CorruptTask]:
        """The quarantined tasks, oldest first."""

    @abc.abstractmethod
    def clear_corrupt(self) -> int:
        """Drop the quarantine (a re-enqueue reissues the runs); returns the
        number cleared."""

    def close(self) -> None:
        """Release any backend resources (connections, file handles).

        A no-op by default — the directory transport holds nothing open
        between operations.  Backends with persistent state override it:
        the SQLite transport closes its connection (letting SQLite remove
        the WAL ``-wal``/``-shm`` sidecar files), the HTTP transport drops
        its keep-alive session.  Idempotent; the transport may be used
        again afterwards (backends reconnect lazily).
        """

    def describe(self) -> str:
        """``kind:location``, for log lines and error messages."""
        return f"{self.kind}:{self.location}"
