"""The shared-directory queue transport (the original PR 5 protocol).

Queue layout (``QUEUE_<name>/`` next to the BENCH files by default)::

    QUEUE_<name>/
        spec.json                    the queue header: pinned SweepSpec
        tasks/task-<index>.json      claimable work: one serialized RunSpec
        leases/task-<index>.json@<worker>
                                     claimed work; mtime is the heartbeat
        corrupt/task-<index>.json    quarantined unparseable tasks
        shards/shard-<worker>.jsonl  per-worker journal (PR 3 line format)

The coordination protocol uses nothing but atomic ``os.rename`` and mtimes:

* **claim** — a worker renames ``tasks/task-i.json`` into ``leases/`` with
  its worker id appended.  Rename of an existing source is atomic; exactly
  one contender wins, the losers get ``FileNotFoundError`` and move on.
  A claimed file that does not parse back into a ``RunSpec`` is renamed
  into ``corrupt/`` (quarantined) instead of being executed or crashed
  on — the worker never dies holding the lease of an unknowable task.
* **heartbeat** — while executing, the lease file's mtime is touched
  every few seconds.  No wall-clock value ever enters the results; time
  is only compared *observer-now vs lease-mtime* to judge staleness.
* **reclaim** — a lease whose mtime is older than ``stale_after`` belongs
  to a dead worker; any worker renames it back into ``tasks/``, making the
  run claimable again.  If the dead worker had already journaled the record
  (died between append and lease removal), the re-execution produces a
  duplicate — harmless, because records are deterministic and ``collect``
  deduplicates by ``(index, seed)``, preferring ok over error.
* **complete** — the worker appends the record to *its own* shard (no two
  processes ever append to the same file) and removes its lease.

NFS caveat: the protocol relies on ``rename`` atomicity (guaranteed by NFS
within one directory) and on mtime comparisons between the *server's*
timestamp and the *observer's* clock — pick ``stale_after`` generously
(minutes, and always several multiples of the heartbeat interval) when
clocks may skew.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.results import (
    RunRecord,
    append_journal,
    atomic_write_json,
    load_journal,
    rewrite_journal,
    write_journal_header,
    _safe_name,
)
from repro.experiments.specs import RunSpec, SweepSpec
from repro.experiments.transports.base import (
    QUEUE_VERSION,
    Claim,
    CorruptTask,
    QueueCorrupt,
    Transport,
)

__all__ = ["DirectoryTransport", "queue_dir", "shard_path"]

#: The lease filename separator between task name and worker id.  Worker ids
#: are sanitised to never contain it, so parsing is unambiguous.
_LEASE_SEP = "@"


def queue_dir(out_dir: str, name: str) -> str:
    """The queue directory of a sweep: ``<out_dir>/QUEUE_<name>``."""
    return os.path.join(out_dir, f"QUEUE_{_safe_name(name)}")


def shard_path(queue: str, worker_id: str) -> str:
    """The journal shard a worker appends its completed records to."""
    return os.path.join(queue, "shards", f"shard-{worker_id}.jsonl")


def _task_name(run: RunSpec) -> str:
    return f"task-{run.index:06d}.json"


class DirectoryTransport(Transport):
    """Atomic-rename leases and ``.jsonl`` shards in a shared directory."""

    kind = "dir"

    def __init__(self, queue: str):
        self.location = queue

    # -- layout helpers -----------------------------------------------------

    @property
    def _tasks(self) -> str:
        return os.path.join(self.location, "tasks")

    @property
    def _leases(self) -> str:
        return os.path.join(self.location, "leases")

    @property
    def _shards(self) -> str:
        return os.path.join(self.location, "shards")

    @property
    def _corrupt(self) -> str:
        return os.path.join(self.location, "corrupt")

    @property
    def _spec_file(self) -> str:
        return os.path.join(self.location, "spec.json")

    def _shard_files(self) -> List[str]:
        if not os.path.isdir(self._shards):
            return []
        return sorted(
            os.path.join(self._shards, name)
            for name in os.listdir(self._shards)
            if name.startswith("shard-") and name.endswith(".jsonl")
        )

    # -- queue lifecycle ----------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self._spec_file)

    def initialise(self, spec: SweepSpec) -> None:
        for sub in (self._tasks, self._leases, self._shards):
            os.makedirs(sub, exist_ok=True)
        if not os.path.exists(self._spec_file):
            header = {"queue_version": QUEUE_VERSION, "sweep": spec.to_json_dict()}
            atomic_write_json(self._spec_file, header)

    def load_spec(self) -> SweepSpec:
        path = self._spec_file
        if not os.path.exists(path):
            raise QueueCorrupt(f"{self.location!r} has no spec.json header; not a sweep queue")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                header = json.load(handle)
        except (json.JSONDecodeError, OSError) as error:
            raise QueueCorrupt(f"queue header {path!r} is unreadable: {error}") from None
        if header.get("queue_version") != QUEUE_VERSION:
            raise QueueCorrupt(
                f"queue {self.location!r} has layout version "
                f"{header.get('queue_version')!r}, expected {QUEUE_VERSION}; "
                f"re-enqueue with this build"
            )
        try:
            return SweepSpec.from_json_dict(header["sweep"])
        except (KeyError, TypeError, ValueError) as error:
            raise QueueCorrupt(
                f"queue header {path!r} does not pin a sweep spec: {error}"
            ) from None

    # -- tasks and leases ---------------------------------------------------

    def enqueue(self, runs: Sequence[RunSpec]) -> None:
        for run in runs:
            # Tasks materialise atomically (the shared tmp + os.replace
            # protocol) so a worker can never claim a half-written file — the
            # "torn claim" failure mode exists only on filesystems without
            # rename semantics, and there it is quarantined at parse time
            # rather than silently executed.
            atomic_write_json(os.path.join(self._tasks, _task_name(run)), run.to_json_dict())

    def claim_next(self, worker_id: str) -> Optional[Union[Claim, CorruptTask]]:
        try:
            names = sorted(name for name in os.listdir(self._tasks) if name.endswith(".json"))
        except FileNotFoundError:
            return None
        for name in names:
            lease = os.path.join(self._leases, f"{name}{_LEASE_SEP}{worker_id}")
            try:
                os.rename(os.path.join(self._tasks, name), lease)
            except FileNotFoundError:
                continue  # another worker won this task; try the next one
            # The rename preserves the *task's* enqueue-time mtime; the lease
            # clock starts at the claim, so touch it now — otherwise any task
            # claimed later than stale_after past enqueue would be born stale
            # and reclaimed out from under its live holder.
            os.utime(lease)
            try:
                with open(lease, "r", encoding="utf-8") as handle:
                    run = RunSpec.from_json_dict(json.load(handle))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError) as error:
                # Quarantine, never crash while holding the lease: a worker
                # dying here would leave the lease to go stale, the next
                # worker would reclaim and die too — an infinite ping-pong.
                os.makedirs(self._corrupt, exist_ok=True)
                reason = str(error)
                os.rename(lease, os.path.join(self._corrupt, name))
                self._write_corrupt_note(name, reason)
                return CorruptTask(task_id=name, reason=reason)
            return Claim(task_id=name, run=run, handle=lease)
        return None

    def _write_corrupt_note(self, task_name: str, reason: str) -> None:
        note = os.path.join(self._corrupt, f"{task_name}.reason")
        try:
            atomic_write_json(note, {"task": task_name, "reason": reason})
        except OSError:
            pass  # the quarantined payload itself is the authoritative artifact

    def heartbeat(self, claim: Claim) -> bool:
        try:
            os.utime(claim.handle)
        except OSError:
            return False  # lease reclaimed from under us; dedup handles the rest
        return True

    def release(self, claim: Claim) -> None:
        try:
            os.remove(claim.handle)
        except FileNotFoundError:
            pass  # reclaimed from under us; collect dedups the re-execution

    def reclaim_stale(self, stale_after: float) -> int:
        try:
            names = list(os.listdir(self._leases))
        except FileNotFoundError:
            return 0
        reclaimed = 0
        now = time.time()
        for name in names:
            if _LEASE_SEP not in name:
                continue
            path = os.path.join(self._leases, name)
            try:
                mtime = os.stat(path).st_mtime
            except FileNotFoundError:
                continue  # completed or reclaimed while we were scanning
            if now - mtime <= stale_after:
                continue
            task_name = name.split(_LEASE_SEP, 1)[0]
            try:
                os.rename(path, os.path.join(self._tasks, task_name))
            except FileNotFoundError:
                continue
            reclaimed += 1
        return reclaimed

    # -- shards -------------------------------------------------------------

    def prepare_shard(self, spec: SweepSpec, worker_id: str) -> None:
        shard = shard_path(self.location, worker_id)
        if os.path.exists(shard):
            # An existing shard must pin the same spec (load_journal refuses a
            # foreign header).  Compact it before appending: a crash may have
            # left the file headerless (died inside the header write) or with a
            # torn trailing fragment — appending after either would make every
            # later record unreadable at collect time.
            rewrite_journal(shard, spec, list(load_journal(shard, spec).values()))
        else:
            write_journal_header(shard, spec)

    def append_record(self, spec: SweepSpec, worker_id: str, record: RunRecord) -> None:
        append_journal(shard_path(self.location, worker_id), record)

    def record_streams(self, spec: SweepSpec) -> List[Tuple[str, Mapping[Tuple[int, int], RunRecord]]]:
        return [(path, load_journal(path, spec)) for path in self._shard_files()]

    # -- status -------------------------------------------------------------

    def status(self) -> Dict[str, int]:
        def _count(path: str, predicate) -> int:
            if not os.path.isdir(path):
                return 0
            return sum(1 for name in os.listdir(path) if predicate(name))

        return {
            "tasks": _count(self._tasks, lambda name: name.endswith(".json")),
            "leases": _count(self._leases, lambda name: _LEASE_SEP in name),
            "shards": len(self._shard_files()),
            "corrupt": _count(self._corrupt, lambda name: name.endswith(".json")),
        }

    def lease_details(self) -> List[Dict[str, object]]:
        try:
            names = sorted(os.listdir(self._leases))
        except FileNotFoundError:
            return []
        details: List[Dict[str, object]] = []
        now = time.time()
        for name in names:
            if _LEASE_SEP not in name:
                continue
            try:
                mtime = os.stat(os.path.join(self._leases, name)).st_mtime
            except FileNotFoundError:
                continue  # completed or reclaimed while we were scanning
            task_name, worker = name.split(_LEASE_SEP, 1)
            details.append(
                {
                    "task_id": task_name,
                    "worker": worker,
                    "age_seconds": max(0.0, now - mtime),
                }
            )
        return details

    def corrupt_tasks(self) -> List[CorruptTask]:
        if not os.path.isdir(self._corrupt):
            return []
        reports = []
        for name in sorted(os.listdir(self._corrupt)):
            if not name.endswith(".json"):
                continue
            reason = "unparseable task payload"
            note = os.path.join(self._corrupt, f"{name}.reason")
            try:
                with open(note, "r", encoding="utf-8") as handle:
                    reason = str(json.load(handle).get("reason", reason))
            except (OSError, json.JSONDecodeError, AttributeError):
                pass
            reports.append(CorruptTask(task_id=name, reason=reason))
        return reports

    def clear_corrupt(self) -> int:
        if not os.path.isdir(self._corrupt):
            return 0
        cleared = 0
        for name in os.listdir(self._corrupt):
            try:
                os.remove(os.path.join(self._corrupt, name))
            except FileNotFoundError:
                continue
            if name.endswith(".json"):
                cleared += 1
        return cleared
