"""Abstract finite groups.

Every concrete group in the reproduction (permutation groups, Abelian tuple
groups, matrix groups over GF(p), semidirect/wreath products, extraspecial
groups, quotients) implements the small :class:`FiniteGroup` interface below.
The black-box layer (:mod:`repro.blackbox`) then wraps any such group behind
the oracle interface of the paper, so the HSP solvers never see anything but
encoded strings and the multiplication oracle.

Elements are opaque *hashable, immutable* Python objects; the group object
owns all arithmetic.  Generic algorithms that only need the interface
(powers, element orders, subgroup closure, random elements via product
replacement) live here and in :mod:`repro.groups.subgroup`.
"""

from __future__ import annotations

import abc
import itertools
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.modular import element_order_from_exponent, factorint, lcm

__all__ = ["DenseKernel", "FiniteGroup", "GroupError", "product_replacement_sampler"]

Element = Any


class GroupError(Exception):
    """Raised for structurally invalid group operations."""


class DenseKernel:
    """Vectorized coordinate arithmetic over ``(n, width)`` int64 row arrays.

    A group that can represent its elements as fixed-width integer vectors
    (permutation images, Abelian coordinate tuples, Heisenberg triples,
    product concatenations) exposes one of these through
    :meth:`FiniteGroup.dense_kernel`.  The Cayley engine then computes whole
    blocks of products and inverses as single NumPy expressions instead of
    calling the scalar :meth:`FiniteGroup.multiply` per pair — this is the
    batch protocol behind the bulk table fills and the ``"kernel"`` engine
    mode.

    Contract: ``decode_many(encode_many(xs)) == xs`` for group elements, and
    ``compose_many``/``inverse_many`` agree row-for-row with the group's
    scalar ``multiply``/``inverse`` (property-tested per group).  Kernels
    perform *no query accounting* — counted wrappers bump their counters in
    bulk before any kernel runs, exactly as for the scalar engine paths.
    """

    #: Number of int64 coordinates per element row.
    width: int = 0

    def encode_many(self, elements: Sequence[Element]) -> np.ndarray:
        """Encode elements into an ``(n, width)`` int64 row array."""
        raise NotImplementedError

    def decode_many(self, rows: np.ndarray) -> List[Element]:
        """Decode an ``(n, width)`` row array back into element objects."""
        raise NotImplementedError

    def compose_many(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        """Row-wise products ``a_i * b_i`` of two row arrays."""
        raise NotImplementedError

    def inverse_many(self, rows: np.ndarray) -> np.ndarray:
        """Row-wise inverses of a row array."""
        raise NotImplementedError


class FiniteGroup(abc.ABC):
    """Interface for a finite group given by generators.

    Subclasses must implement the primitive operations; the base class
    provides generic powers, orders, enumeration and random sampling.  The
    ``name`` attribute is cosmetic and used in benchmark reports.
    """

    name: str = "G"

    # -- primitive operations -------------------------------------------------
    @abc.abstractmethod
    def identity(self) -> Element:
        """The identity element."""

    @abc.abstractmethod
    def multiply(self, a: Element, b: Element) -> Element:
        """The product ``a * b``."""

    @abc.abstractmethod
    def inverse(self, a: Element) -> Element:
        """The inverse ``a**-1``."""

    @abc.abstractmethod
    def generators(self) -> List[Element]:
        """A generating set for the group."""

    # -- encoding (black-box plumbing) ----------------------------------------
    def encode(self, a: Element) -> bytes:
        """A canonical byte-string encoding of ``a`` (unique by default)."""
        return repr(a).encode()

    def decode(self, code: bytes) -> Element:
        """Inverse of :meth:`encode`; optional, used only by diagnostics."""
        raise NotImplementedError

    def equal(self, a: Element, b: Element) -> bool:
        """Equality of group elements (identity test of the black box)."""
        return a == b

    def is_identity(self, a: Element) -> bool:
        return self.equal(a, self.identity())

    # -- optional structural data ----------------------------------------------
    def order(self) -> int:
        """Group order.  Default: enumerate (exponential; small groups only)."""
        return len(self.element_list())

    def exponent_bound(self) -> Optional[int]:
        """A known multiple of every element order, or ``None``.

        Concrete groups override this when a cheap bound exists (e.g. the
        group order for permutation groups, ``p * |N|`` for extensions).  The
        bound lets :meth:`element_order` avoid brute-force iteration, in the
        same way the paper's algorithms use a superset of the primes dividing
        ``|G|`` (hypothesis (a) of Theorem 4).
        """
        return None

    def dense_kernel(self) -> Optional["DenseKernel"]:
        """A :class:`DenseKernel` for this group, or ``None``.

        Groups with a natural fixed-width integer coordinate representation
        override this; the default keeps the scalar path.  The returned
        kernel must agree with the scalar ``multiply``/``inverse`` on every
        pair of elements.
        """
        return None

    # -- derived operations -----------------------------------------------------
    def power(self, a: Element, k: int) -> Element:
        """``a**k`` by binary exponentiation (``k`` may be negative)."""
        engine = getattr(self, "_cayley_engine", None)
        if engine is not None and engine.mode in ("table", "kernel"):
            return engine.element_of(engine.power(engine.intern(a), k))
        if k < 0:
            return self.power(self.inverse(a), -k)
        result = self.identity()
        base = a
        while k:
            if k & 1:
                result = self.multiply(result, base)
            base = self.multiply(base, base)
            k >>= 1
        return result

    def conjugate(self, g: Element, h: Element) -> Element:
        """``g * h * g**-1``."""
        return self.multiply(self.multiply(g, h), self.inverse(g))

    # -- batch operations -------------------------------------------------------
    # The defaults are scalar loops; installing a Cayley engine on the group
    # (``repro.groups.engine.get_engine``) transparently accelerates them.
    # Counted wrappers (``BlackBoxGroup``) override these to bump their
    # counters in bulk before delegating, so batch and scalar executions
    # report identical query totals.
    def multiply_many(self, elements_a: Sequence[Element], elements_b: Sequence[Element]) -> List[Element]:
        """Componentwise products ``a_i * b_i`` of two equal-length sequences."""
        engine = getattr(self, "_cayley_engine", None)
        if engine is not None:
            return engine.multiply_elements(elements_a, elements_b)
        return [self.multiply(a, b) for a, b in zip(elements_a, elements_b)]

    def inverse_many(self, elements: Sequence[Element]) -> List[Element]:
        """Componentwise inverses of a sequence of elements."""
        engine = getattr(self, "_cayley_engine", None)
        if engine is not None:
            return engine.inverse_elements(elements)
        return [self.inverse(a) for a in elements]

    def commutator(self, a: Element, b: Element) -> Element:
        """``a * b * a**-1 * b**-1``."""
        return self.multiply(self.multiply(a, b), self.multiply(self.inverse(a), self.inverse(b)))

    def element_order(self, a: Element, exponent: Optional[int] = None) -> int:
        """Order of ``a``.

        If a multiple of the order is available (argument or
        :meth:`exponent_bound`), the order is computed by dividing out primes
        — the classical post-processing of Shor order finding.  Otherwise the
        element is iterated until the identity is reached.
        """
        if self.is_identity(a):
            return 1
        engine = getattr(self, "_cayley_engine", None)
        if engine is not None and engine.mode in ("table", "kernel"):
            return engine.element_order(engine.intern(a))
        bound = exponent if exponent is not None else self.exponent_bound()
        if bound is not None:
            return element_order_from_exponent(
                lambda k: self.power(a, k), self.is_identity, bound
            )
        current = a
        order = 1
        while not self.is_identity(current):
            current = self.multiply(current, a)
            order += 1
            if order > 10**7:
                raise GroupError("element order exceeds enumeration limit")
        return order

    def is_abelian(self) -> bool:
        """Whether all generators commute pairwise."""
        gens = self.generators()
        for i, a in enumerate(gens):
            for b in gens[i + 1 :]:
                if not self.equal(self.multiply(a, b), self.multiply(b, a)):
                    return False
        return True

    # -- enumeration --------------------------------------------------------------
    def element_list(self) -> List[Element]:
        """All group elements by breadth-first closure over the generators.

        Cached after the first call.  Only use on groups small enough to
        enumerate; the HSP solvers themselves never call this on the ambient
        group (it would defeat the point), but tests and instance builders do.
        """
        cached = getattr(self, "_element_cache", None)
        if cached is not None:
            return cached
        gens = list(self.generators())
        gens = gens + [self.inverse(g) for g in gens]
        seen: Dict[Element, None] = {self.identity(): None}
        frontier = [self.identity()]
        while frontier:
            nxt: List[Element] = []
            for x in frontier:
                for g in gens:
                    y = self.multiply(x, g)
                    if y not in seen:
                        seen[y] = None
                        nxt.append(y)
            frontier = nxt
        elements = list(seen)
        self._element_cache = elements
        return elements

    def __contains__(self, element: Element) -> bool:
        return element in set(self.element_list())

    # -- random sampling --------------------------------------------------------------
    def random_element(self, rng: np.random.Generator, mixing_steps: int = 50) -> Element:
        """A (nearly uniform) random element via product replacement.

        The sampler keeps a per-group cache of the product-replacement state
        so repeated draws are cheap.  For groups that expose
        ``uniform_random_element`` (e.g. Abelian tuple groups) that exact
        sampler is used instead.
        """
        exact = getattr(self, "uniform_random_element", None)
        if exact is not None:
            return exact(rng)
        sampler = getattr(self, "_pr_sampler", None)
        if sampler is None:
            sampler = product_replacement_sampler(self, rng, burn_in=max(mixing_steps, 50))
            self._pr_sampler = sampler
        return sampler(rng)

    def random_word(self, rng: np.random.Generator, length: int = 20) -> Element:
        """Product of ``length`` random generators/inverses (mixing helper)."""
        gens = self.generators()
        gens = gens + [self.inverse(g) for g in gens]
        x = self.identity()
        for _ in range(length):
            x = self.multiply(x, gens[int(rng.integers(0, len(gens)))])
        return x

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def product_replacement_sampler(group: FiniteGroup, rng: np.random.Generator, burn_in: int = 50, slots: int = 10):
    """Product replacement ("rattle") random element generator.

    Returns a closure drawing elements whose distribution rapidly approaches
    uniform; this is the standard black-box-group sampling technique used by
    the Beals--Babai algorithms (and by Babai's Monte Carlo normal closure
    algorithm, reference [1] of the paper).
    """
    gens = list(group.generators())
    if not gens:
        return lambda _rng: group.identity()
    state: List[Element] = [gens[i % len(gens)] for i in range(max(slots, len(gens)))]
    accumulator = group.identity()

    def step(local_rng: np.random.Generator) -> None:
        nonlocal accumulator
        i = int(local_rng.integers(0, len(state)))
        j = int(local_rng.integers(0, len(state)))
        while j == i and len(state) > 1:
            j = int(local_rng.integers(0, len(state)))
        factor = state[j] if local_rng.integers(0, 2) else group.inverse(state[j])
        if local_rng.integers(0, 2):
            state[i] = group.multiply(state[i], factor)
        else:
            state[i] = group.multiply(factor, state[i])
        accumulator = group.multiply(accumulator, state[i])

    for _ in range(burn_in):
        step(rng)

    def draw(local_rng: np.random.Generator) -> Element:
        for _ in range(3):
            step(local_rng)
        return accumulator

    return draw
