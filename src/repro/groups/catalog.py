"""A catalogue of the named group families used throughout the experiments.

Each factory returns a fully-formed :class:`~repro.groups.base.FiniteGroup`
together (where useful) with the structural data the corresponding theorem
needs (e.g. the generators of the distinguished elementary Abelian normal
2-subgroup for Theorem 13 instances).  Keeping the constructions in one place
makes the benchmark harness and the examples read like the paper's own list
of instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.abelian import AbelianTupleGroup, cyclic_group, elementary_abelian_group
from repro.groups.base import FiniteGroup, GroupError
from repro.groups.extraspecial import HeisenbergGroup, extraspecial_group
from repro.groups.matrix import GFMatrixGroup, affine_type_group, heisenberg_matrix_group
from repro.groups.perm import (
    PermutationGroup,
    alternating_group,
    cyclic_permutation_group,
    dihedral_group,
    symmetric_group,
)
from repro.groups.products import (
    SemidirectProduct,
    dihedral_semidirect,
    generalized_dihedral,
    metacyclic_group,
    wreath_product_z2,
)

__all__ = [
    "abelian_instance",
    "heisenberg_instance",
    "wreath_instance",
    "affine_gf2_instance",
    "elementary_abelian_semidirect_instance",
    "dihedral_instance",
    "metacyclic_instance",
    "named_group",
]


def abelian_instance(moduli: Sequence[int]) -> AbelianTupleGroup:
    """An Abelian tuple group (Theorem 3 / E1 instances)."""
    return AbelianTupleGroup(moduli)


def heisenberg_instance(p: int, n: int = 1) -> HeisenbergGroup:
    """An extraspecial group of order ``p^{2n+1}`` (Theorem 11 / Corollary 12)."""
    return extraspecial_group(p, n)


def wreath_instance(k: int) -> Tuple[SemidirectProduct, List]:
    """``Z_2^k wr Z_2`` together with generators of its base ``N = Z_2^{2k}``.

    The base group is the distinguished elementary Abelian normal 2-subgroup
    required by Theorem 13; the factor group is ``Z_2`` (cyclic), so the
    theorem's fully polynomial case applies.
    """
    group = wreath_product_z2(k)
    normal_gens = group.normal_part_generators()
    return group, normal_gens


def affine_gf2_instance(k: int, extra_translations: int = 1) -> Tuple[GFMatrixGroup, List]:
    """A Section-6 matrix group over GF(2) with its translation subgroup.

    Returns ``(G, N_generators)`` where ``N`` is the normal elementary
    Abelian 2-subgroup of translation matrices; ``G/N`` is cyclic, generated
    by the image of the type (a) matrix.  The returned generators generate
    ``N`` *as a subgroup* (the paper's Theorem 13 takes ``N`` given by
    generators), i.e. they are the normal closure of the type (b) generators
    under conjugation by the type (a) matrix.
    """
    translations = []
    for i in range(max(1, extra_translations)):
        vec = [0] * k
        vec[i % k] = 1
        translations.append(vec)
    group = affine_type_group(k, translations=translations)
    gens = group.generators()
    from repro.groups.subgroup import normal_closure

    normal_gens = normal_closure(group, gens[1:])
    return group, normal_gens


def elementary_abelian_semidirect_instance(
    k: int,
    top: str = "S3",
) -> Tuple[SemidirectProduct, List]:
    """``Z_2^k : K`` for a small non-cyclic ``K`` (general case of Theorem 13).

    The action permutes the coordinates of ``Z_2^k`` through a permutation
    representation of ``K``; ``K`` is either ``S_3`` (degree-3 coordinate
    permutation, requires ``k >= 3``) or ``V4`` (two commuting coordinate
    swaps, requires ``k >= 4``).
    """
    base = elementary_abelian_group(2, k)
    if top == "S3":
        if k < 3:
            raise GroupError("S3 action requires k >= 3")
        quotient = symmetric_group(3)

        def action(perm, vector):
            images = list(vector)
            for i in range(3):
                images[perm[i]] = vector[i]
            return tuple(images)

        name = f"Z_2^{k} : S_3"
    elif top == "V4":
        if k < 4:
            raise GroupError("V4 action requires k >= 4")
        quotient = AbelianTupleGroup([2, 2], name="V4")

        def action(bits, vector):
            out = list(vector)
            if bits[0] % 2:
                out[0], out[1] = out[1], out[0]
            if bits[1] % 2:
                out[2], out[3] = out[3], out[2]
            return tuple(out)

        name = f"Z_2^{k} : V4"
    else:
        raise GroupError(f"unknown top group {top!r}")
    group = SemidirectProduct(base, quotient, action, name=name)
    return group, group.normal_part_generators()


def dihedral_instance(n: int, as_permutation: bool = False) -> FiniteGroup:
    """The dihedral group ``D_n`` (semidirect form by default)."""
    return dihedral_group(n) if as_permutation else dihedral_semidirect(n)


def metacyclic_instance(p: int, q: int) -> SemidirectProduct:
    """The non-Abelian metacyclic group ``Z_p : Z_q`` (``q | p - 1``)."""
    return metacyclic_group(p, q)


def named_group(name: str, **params) -> FiniteGroup:
    """Look up a group family by name (used by the benchmark harness CLI).

    Supported names: ``abelian``, ``cyclic``, ``elementary_abelian``,
    ``heisenberg``, ``wreath``, ``affine_gf2``, ``dihedral``,
    ``dihedral_perm``, ``metacyclic``, ``symmetric``, ``alternating``,
    ``generalized_dihedral``.
    """
    name = name.lower()
    if name == "abelian":
        return abelian_instance(params["moduli"])
    if name == "cyclic":
        return cyclic_group(params["n"])
    if name == "elementary_abelian":
        return elementary_abelian_group(params["p"], params["k"])
    if name == "heisenberg":
        return heisenberg_instance(params["p"], params.get("n", 1))
    if name == "heisenberg_matrix":
        return heisenberg_matrix_group(params["p"])
    if name == "wreath":
        return wreath_instance(params["k"])[0]
    if name == "affine_gf2":
        return affine_gf2_instance(params["k"])[0]
    if name == "dihedral":
        return dihedral_instance(params["n"])
    if name == "dihedral_perm":
        return dihedral_instance(params["n"], as_permutation=True)
    if name == "metacyclic":
        return metacyclic_instance(params["p"], params["q"])
    if name == "symmetric":
        return symmetric_group(params["n"])
    if name == "alternating":
        return alternating_group(params["n"])
    if name == "generalized_dihedral":
        return generalized_dihedral(params["moduli"])
    raise GroupError(f"unknown group family {name!r}")
