"""Extraspecial p-groups (Heisenberg groups) in coordinates.

A group ``G`` is *extraspecial* if its commutator subgroup ``G'`` coincides
with its center, ``|G'| = p`` and ``G/G'`` is elementary Abelian.
Corollary 12 of the paper solves the HSP in such groups in time polynomial in
``input size + p`` by applying Theorem 11 (the commutator subgroup has only
``p`` elements).

The coordinate model used here is the (generalised) Heisenberg group
``H_p(n)`` of order ``p^{2n+1}``: elements are triples ``(a, b, c)`` with
``a, b`` in ``Z_p^n`` and ``c`` in ``Z_p``, and multiplication

``(a, b, c) * (a', b', c') = (a + a', b + b', c + c' + a . b')``.

Its center and commutator subgroup are both ``{(0, 0, c)}``, of order ``p``,
so the group is extraspecial of exponent ``p`` for odd ``p``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.base import DenseKernel, FiniteGroup, GroupError
from repro.linalg.modular import is_probable_prime

__all__ = ["HeisenbergGroup", "extraspecial_group"]

HeisElement = Tuple[Tuple[int, ...], Tuple[int, ...], int]


class _HeisenbergKernel(DenseKernel):
    """Rows are ``[a | b | c]`` concatenations of width ``2n + 1``."""

    def __init__(self, p: int, n: int):
        self.p = p
        self.n = n
        self.width = 2 * n + 1

    def encode_many(self, elements: Sequence[HeisElement]) -> np.ndarray:
        if not elements:
            return np.empty((0, self.width), dtype=np.int64)
        return np.asarray([list(a) + list(b) + [c] for a, b, c in elements], dtype=np.int64)

    def decode_many(self, rows: np.ndarray) -> List[HeisElement]:
        n = self.n
        return [
            (tuple(int(v) for v in row[:n]), tuple(int(v) for v in row[n : 2 * n]), int(row[2 * n]))
            for row in rows
        ]

    def compose_many(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        p, n = self.p, self.n
        out = (rows_a + rows_b) % p
        cross = np.einsum("ij,ij->i", rows_a[:, :n], rows_b[:, n : 2 * n])
        out[:, 2 * n] = (rows_a[:, 2 * n] + rows_b[:, 2 * n] + cross) % p
        return out

    def inverse_many(self, rows: np.ndarray) -> np.ndarray:
        p, n = self.p, self.n
        out = (-rows) % p
        cross = np.einsum("ij,ij->i", rows[:, :n], rows[:, n : 2 * n])
        out[:, 2 * n] = (-rows[:, 2 * n] + cross) % p
        return out


class HeisenbergGroup(FiniteGroup):
    """The generalised Heisenberg group ``H_p(n)`` of order ``p^{2n+1}``."""

    def __init__(self, p: int, n: int = 1):
        if not is_probable_prime(p):
            raise GroupError("HeisenbergGroup requires a prime p")
        if n < 1:
            raise GroupError("HeisenbergGroup requires n >= 1")
        self.p = p
        self.n = n
        self.name = f"Heisenberg(p={p}, n={n})"

    # -- FiniteGroup interface -------------------------------------------------
    def identity(self) -> HeisElement:
        zero = tuple(0 for _ in range(self.n))
        return (zero, zero, 0)

    def multiply(self, x: HeisElement, y: HeisElement) -> HeisElement:
        a1, b1, c1 = x
        a2, b2, c2 = y
        p = self.p
        a = tuple((u + v) % p for u, v in zip(a1, a2))
        b = tuple((u + v) % p for u, v in zip(b1, b2))
        cross = sum(u * v for u, v in zip(a1, b2)) % p
        c = (c1 + c2 + cross) % p
        return (a, b, c)

    def inverse(self, x: HeisElement) -> HeisElement:
        a, b, c = x
        p = self.p
        inv_a = tuple((-u) % p for u in a)
        inv_b = tuple((-v) % p for v in b)
        cross = sum(u * v for u, v in zip(a, b)) % p
        inv_c = (-c + cross) % p
        return (inv_a, inv_b, inv_c)

    def generators(self) -> List[HeisElement]:
        zero = tuple(0 for _ in range(self.n))
        gens: List[HeisElement] = []
        for i in range(self.n):
            e_i = tuple(1 if j == i else 0 for j in range(self.n))
            gens.append((e_i, zero, 0))
            gens.append((zero, e_i, 0))
        return gens

    def encode(self, x: HeisElement) -> bytes:
        a, b, c = x
        return (",".join(map(str, a)) + ";" + ",".join(map(str, b)) + ";" + str(c)).encode()

    def decode(self, code: bytes) -> HeisElement:
        part_a, part_b, part_c = code.decode().split(";")
        a = tuple(int(v) for v in part_a.split(","))
        b = tuple(int(v) for v in part_b.split(","))
        return (a, b, int(part_c))

    # -- structure ---------------------------------------------------------------
    def order(self) -> int:
        return self.p ** (2 * self.n + 1)

    def exponent_bound(self) -> int:
        # Exponent is p for odd p and 4 for p = 2.
        return self.p if self.p != 2 else 4

    def uniform_random_element(self, rng: np.random.Generator) -> HeisElement:
        a = tuple(int(rng.integers(0, self.p)) for _ in range(self.n))
        b = tuple(int(rng.integers(0, self.p)) for _ in range(self.n))
        c = int(rng.integers(0, self.p))
        return (a, b, c)

    def dense_kernel(self) -> Optional[_HeisenbergKernel]:
        # The cross-term dot products must stay inside int64.
        if self.p >= (1 << 31) or self.n * self.p * self.p >= (1 << 62):
            return None
        return _HeisenbergKernel(self.p, self.n)

    # -- extraspecial structure -----------------------------------------------------
    def center_generators(self) -> List[HeisElement]:
        """Generators of the center ``Z(G) = G' = {(0, 0, c)}``."""
        zero = tuple(0 for _ in range(self.n))
        return [(zero, zero, 1)]

    def commutator_subgroup_elements(self) -> List[HeisElement]:
        """All ``p`` elements of the commutator subgroup (used by Theorem 11)."""
        zero = tuple(0 for _ in range(self.n))
        return [(zero, zero, c) for c in range(self.p)]

    def random_subgroup_generators(self, rng: np.random.Generator, count: int = 2) -> List[HeisElement]:
        """Random elements generating a (random) subgroup, for HSP instances."""
        return [self.uniform_random_element(rng) for _ in range(count)]


def extraspecial_group(p: int, n: int = 1) -> HeisenbergGroup:
    """The extraspecial group of order ``p^{2n+1}`` and exponent ``p`` (odd ``p``)."""
    return HeisenbergGroup(p, n)
