"""Vectorized Cayley-table group engine.

The paper states its complexity bounds in oracle queries, but the wall-clock
cost of the *simulation* is dominated by per-element Python group arithmetic
in the Fourier-sampling and coset-enumeration hot paths.  This module provides
a :class:`CayleyBackend` that

* interns group elements to dense integer ids (a bijection between the
  elements touched so far and ``0..n-1``),
* memoizes products and inverses in a lazily filled NumPy Cayley table when
  the group is small enough (``order <= table_limit``), falling back to a
  sparse pair-cache for larger groups,
* exposes batch operations — :meth:`mul_many`, :meth:`inv_many`,
  :meth:`conj_many`, :meth:`orbit_closure` — that amortise Python dispatch
  over whole id arrays, and
* memoizes structure queries (:meth:`is_abelian`, the commutator subgroup,
  element orders) that the solvers ask for repeatedly.

The engine is *mathematically transparent*: every operation agrees with the
scalar :class:`~repro.groups.base.FiniteGroup` interface of the wrapped group
(the test-suite checks this property-based).  Query accounting is **not**
done here — counted groups (:class:`~repro.blackbox.oracle.BlackBoxGroup`)
bump their counters in bulk *before* delegating to the engine, so batch and
scalar executions report identical totals.

Use :func:`get_engine` to build-and-install an engine on a group instance
(subsequent ``multiply_many`` calls on the group are then engine-accelerated
automatically) and :func:`maybe_engine` for the guarded variant that returns
``None`` for groups without a usable dense encoding (unknown or huge order),
which keeps the per-element code path as the fallback.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.base import FiniteGroup, GroupError
from repro.obs import metrics as obs_metrics
from repro.obs import span as obs_span

__all__ = [
    "CayleyBackend",
    "get_engine",
    "maybe_engine",
    "engine_disabled",
    "kernel_disabled",
    "engine_cache",
    "cache_entries",
    "prune_cache",
]

#: Largest group order for which the dense (lazily filled) Cayley table is used.
DEFAULT_TABLE_LIMIT = 4096

#: Largest group order for which :func:`maybe_engine` engages at all; beyond
#: this the sparse pair-cache would still be correct but interning whole
#: orbits may not fit comfortably in memory.
DEFAULT_INTERN_LIMIT = 1 << 16

#: Safety cap for element-order iteration in sparse mode.
_ORDER_ITERATION_LIMIT = 10**7


class _RowIndex:
    """Row -> id lookup over an ``(n, w)`` int64 row matrix.

    Rows are compared as opaque byte strings through a void view — the
    classic unique-rows idiom — so a whole block of kernel-computed product
    rows resolves to ids with one ``searchsorted``.  Unknown rows (a kernel
    bug, or a foreign element) raise :class:`GroupError`.
    """

    def __init__(self, rows: np.ndarray):
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        self._rows = rows
        self._void = np.dtype((np.void, rows.dtype.itemsize * rows.shape[1]))
        keys = rows.view(self._void).ravel()
        self._order = np.argsort(keys)
        self._sorted = keys[self._order]

    def lookup(self, query: np.ndarray) -> np.ndarray:
        query = np.ascontiguousarray(query, dtype=np.int64)
        if query.size == 0:
            return np.empty(0, dtype=np.int64)
        qkeys = query.view(self._void).ravel()
        pos = np.minimum(np.searchsorted(self._sorted, qkeys), len(self._sorted) - 1)
        ids = self._order[pos].astype(np.int64)
        if not np.array_equal(self._rows[ids], query):
            raise GroupError("dense kernel produced a row outside the enumerated group")
        return ids


def _cheap_order(group: FiniteGroup) -> Optional[int]:
    """The group order if it is available without a fresh full enumeration.

    ``None`` means "unknown without enumeration": the base-class ``order``
    falls back to BFS over the whole group, which the engine must not trigger
    on a group that might be huge.  An already-populated element cache counts
    as cheap (the enumeration has been paid for).
    """
    cached = getattr(group, "_element_cache", None)
    if cached is not None:
        return len(cached)
    if type(group).order is not FiniteGroup.order:
        try:
            return int(group.order())
        except Exception:
            return None
    return None


def _row_keys(rows: np.ndarray) -> List[bytes]:
    """Hashable per-row keys of a contiguous int64 row block."""
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    stride = rows.shape[1] * rows.dtype.itemsize
    data = rows.tobytes()
    return [data[i * stride : (i + 1) * stride] for i in range(rows.shape[0])]


def _row_chain(kernel, identity_row: np.ndarray, gen_row: np.ndarray) -> np.ndarray:
    """Rows of the cyclic group ``<g>`` by shift doubling on kernel rows.

    Same invariant as :meth:`CayleyBackend._cyclic_power_ids` — ``powers =
    [g^0 .. g^{k-1}]`` with ``pivot = g^k`` — but over raw kernel rows, for
    use before any id assignment exists.  ``O(log ord g)`` kernel calls.
    """
    if bytes(np.ascontiguousarray(gen_row, dtype=np.int64).tobytes()) == bytes(
        np.ascontiguousarray(identity_row, dtype=np.int64).tobytes()
    ):
        return np.ascontiguousarray(identity_row, dtype=np.int64)[None, :]
    powers = np.ascontiguousarray(np.stack([identity_row, gen_row]), dtype=np.int64)
    seen = set(_row_keys(powers))
    pivot = kernel.compose_many(gen_row[None, :], gen_row[None, :])[0]
    while True:
        block = np.ascontiguousarray(
            kernel.compose_many(powers, np.tile(pivot, (powers.shape[0], 1))),
            dtype=np.int64,
        )
        keys = _row_keys(block)
        cut = next((i for i, k in enumerate(keys) if k in seen), None)
        if cut is not None:
            return np.concatenate([powers, block[:cut]])
        seen.update(keys)
        powers = np.concatenate([powers, block])
        pivot = kernel.compose_many(pivot[None, :], pivot[None, :])[0]


def _kernel_enumerate_rows(kernel, identity_row: np.ndarray, gen_rows: np.ndarray) -> np.ndarray:
    """Enumerate the group generated by ``gen_rows`` entirely in row space.

    Dimino-style closure: the first generator's cyclic chain is built by
    shift doubling, and every further generator extends the current
    subgroup ``K`` coset by coset — each new representative ``r``
    contributes the whole block ``K @ powers(r)`` in bulk kernel calls, and
    representatives are probed breadth-first with every generator processed
    so far.  No scalar ``multiply`` is ever called; the output order is
    deterministic (identity first), which fixes the dense id assignment.
    """
    blocks: List[np.ndarray] = []
    seen: set = set()

    def absorb(rows: np.ndarray) -> None:
        fresh_idx = []
        for i, row_key in enumerate(_row_keys(rows)):
            if row_key not in seen:
                seen.add(row_key)
                fresh_idx.append(i)
        if fresh_idx:
            blocks.append(np.ascontiguousarray(rows[np.asarray(fresh_idx)], dtype=np.int64))

    identity_row = np.ascontiguousarray(identity_row, dtype=np.int64)
    absorb(identity_row[None, :])
    processed: List[np.ndarray] = []
    for g_idx in range(gen_rows.shape[0]):
        gen_row = np.ascontiguousarray(gen_rows[g_idx], dtype=np.int64)
        processed.append(gen_row)
        if _row_keys(gen_row[None, :])[0] in seen:
            continue
        base = np.concatenate(blocks)
        pending: List[np.ndarray] = [gen_row]
        while pending:
            rep = pending.pop(0)
            if _row_keys(rep[None, :])[0] in seen:
                continue
            # powers = [e, r, r^2, ...]: the whole stack of cosets
            # K r^j lands in one bulk call, and every power is probed with
            # every processed generator so no coset of the closure is missed.
            shifts = _row_chain(kernel, identity_row, rep)[1:]
            coset = kernel.compose_many(
                np.repeat(base, shifts.shape[0], axis=0),
                np.tile(shifts, (base.shape[0], 1)),
            )
            absorb(np.asarray(coset))
            gen_stack = np.stack(processed)
            probes = np.asarray(
                kernel.compose_many(
                    np.repeat(shifts, gen_stack.shape[0], axis=0),
                    np.tile(gen_stack, (shifts.shape[0], 1)),
                )
            )
            fresh = [i for i, k in enumerate(_row_keys(probes)) if k not in seen]
            pending.extend(np.ascontiguousarray(probes[i], dtype=np.int64) for i in fresh)
    return np.concatenate(blocks)


class CayleyBackend:
    """Dense-id engine over a :class:`~repro.groups.base.FiniteGroup`.

    Parameters
    ----------
    group:
        The wrapped group.  Elements must be hashable (they are, for every
        concrete group in this reproduction).
    table_limit:
        Orders up to this use ``mode == "table"`` (a lazily filled dense
        NumPy Cayley table over the *full* element list); larger groups use
        ``mode == "kernel"`` when the group exposes a
        :class:`~repro.groups.base.DenseKernel` and ``kernel_limit`` allows
        it, and ``mode == "sparse"`` (per-pair memoisation, on-demand
        interning) otherwise.
    kernel_limit:
        Opt-in ceiling for ``mode == "kernel"``: orders in
        ``(table_limit, kernel_limit]`` with a dense kernel enumerate the
        whole group but skip the ``n^2`` table — products and inverses are
        computed array-at-a-time by the kernel and resolved back to ids via
        a sorted row index.  ``None`` (the default for direct construction)
        disables the mode; :func:`maybe_engine` passes its ``intern_limit``.
    cache_dir:
        Optional directory for *persistent* dense tables.  When set (and the
        group runs in table mode), the Cayley table and inverse table are
        memory-mapped files keyed by a digest of the group description (name,
        order and the canonical BFS element encodings), so a later process
        building an engine for the same group reopens the already-filled
        tables and skips the fill-in cost entirely.  ``None`` (the default)
        keeps everything in memory.
    """

    def __init__(
        self,
        group: FiniteGroup,
        table_limit: int = DEFAULT_TABLE_LIMIT,
        cache_dir: Optional[str] = None,
        kernel_limit: Optional[int] = None,
    ):
        self.group = group
        self.table_limit = table_limit
        self.cache_dir = cache_dir
        self.cache_key: Optional[str] = None
        self._elements: List = []
        self._ids: Dict = {}
        self._mul_cache: Dict[Tuple[int, int], int] = {}
        self._inv_cache: Dict[int, int] = {}
        self._order_cache: Dict[int, int] = {}
        self._table: Optional[np.ndarray] = None
        self._inv_table: Optional[np.ndarray] = None
        self._is_abelian: Optional[bool] = None
        self._commutator_ids: Optional[np.ndarray] = None
        self._subgroup_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        self.cache_reused: Optional[bool] = None
        self.full_enumeration = False
        self._kernel_rows: Optional[np.ndarray] = None
        self._row_index: Optional[_RowIndex] = None
        kernel = None
        if not _KERNEL_DISABLED:
            factory = getattr(group, "dense_kernel", None)
            kernel = factory() if factory is not None else None
        self.kernel = kernel
        order = _cheap_order(group)
        self.group_order = order
        if order is not None and order <= table_limit:
            self.mode = "table"
        elif (
            kernel is not None
            and kernel_limit is not None
            and order is not None
            and order <= kernel_limit
        ):
            self.mode = "kernel"
        else:
            self.mode = "sparse"
        with obs_span("engine.build", group=group.name, mode=self.mode) as build_span:
            if self.mode in ("table", "kernel"):
                if self.mode == "kernel":
                    # Row-space enumeration: the scalar element_list() BFS
                    # is the dominant cold cost past the table limit, so
                    # kernel mode enumerates by bulk kernel calls instead
                    # (table mode keeps element_list() order — its ids are
                    # shared with scalar paths and the persistent cache).
                    rows = _kernel_enumerate_rows(
                        self.kernel,
                        np.asarray(self.kernel.encode_many([group.identity()]))[0],
                        np.asarray(self.kernel.encode_many(group.generators())),
                    )
                    if order is not None and rows.shape[0] != order:
                        raise GroupError(
                            f"kernel enumeration found {rows.shape[0]} elements "
                            f"of {group.name}, expected {order}"
                        )
                    for element in self.kernel.decode_many(rows):
                        self.intern(element)
                else:
                    for element in group.element_list():
                        self.intern(element)
                n = len(self._elements)
                self.full_enumeration = True
                if self.mode == "table":
                    if cache_dir is not None:
                        self._attach_persistent_tables(cache_dir, n)
                        build_span.add(
                            "cache_hit" if self.cache_reused else "cache_miss"
                        )
                    if self._table is None:
                        self._table = np.full((n, n), -1, dtype=np.int32)
                        self._inv_table = np.full(n, -1, dtype=np.int32)
                if self.kernel is not None:
                    self._kernel_rows = np.ascontiguousarray(
                        self.kernel.encode_many(self._elements), dtype=np.int64
                    )
                    self._row_index = _RowIndex(self._kernel_rows)
                    if self.mode == "kernel":
                        # One bulk kernel pass replaces n lazy scalar fills.
                        self._inv_table = np.empty(n, dtype=np.int64)
                        self._inv_table[:] = self._bulk_inverses(
                            np.arange(n, dtype=np.int64)
                        )
            self.identity_id = self.intern(group.identity())
            build_span.add("interned", len(self._elements))

    # -- persistent dense tables -------------------------------------------------
    def _cache_digest(self) -> str:
        """A stable key for the group's dense id assignment.

        Hashes the group name, the order and every element encoding in
        interning (BFS) order; two processes that enumerate the same group
        the same way — enumeration is deterministic given the generators —
        agree on the digest and therefore share id semantics, while any
        drift in the element list changes the key and sidesteps the stale
        file.
        """
        hasher = hashlib.sha256()
        hasher.update(self.group.name.encode())
        hasher.update(str(len(self._elements)).encode())
        for element in self._elements:
            hasher.update(self.group.encode(element))
            hasher.update(b"\x00")
        return hasher.hexdigest()[:32]

    def _attach_persistent_tables(self, cache_dir: str, n: int) -> None:
        from numpy.lib.format import open_memmap

        os.makedirs(cache_dir, exist_ok=True)
        digest = self._cache_digest()
        self.cache_key = digest
        table_path = os.path.join(cache_dir, f"cayley-{digest}-table.npy")
        inv_path = os.path.join(cache_dir, f"cayley-{digest}-inv.npy")
        if os.path.exists(table_path) and os.path.exists(inv_path):
            table = open_memmap(table_path, mode="r+")
            inv_table = open_memmap(inv_path, mode="r+")
            if (
                table.shape == (n, n)
                and table.dtype == np.int32
                and inv_table.shape == (n,)
                and inv_table.dtype == np.int32
            ):
                # Mark the reuse so LRU eviction (prune_cache) sees these
                # files as recently used even when nothing is written back.
                # Best effort: a read-only cache (shared/baked image) or a
                # concurrent prune must not break the table load itself.
                for path in (table_path, inv_path):
                    try:
                        os.utime(path)
                    except OSError:
                        pass
                self._table = table
                self._inv_table = inv_table
                self.cache_reused = True
                obs_metrics.count("engine.cache.hit")
                return
            # Shape/dtype drift (e.g. a truncated write): fall through and
            # recreate the files from scratch.
        # Create atomically: initialise under a per-process temp name and
        # os.replace into place, so a concurrent builder of the same group
        # never maps a half-initialised file.  (The rename preserves our
        # inode, so this mapping keeps writing to the published file.)
        tmp_suffix = f".tmp-{os.getpid()}"
        table = open_memmap(table_path + tmp_suffix, mode="w+", dtype=np.int32, shape=(n, n))
        table[:] = -1
        table.flush()
        inv_table = open_memmap(inv_path + tmp_suffix, mode="w+", dtype=np.int32, shape=(n,))
        inv_table[:] = -1
        inv_table.flush()
        os.replace(table_path + tmp_suffix, table_path)
        os.replace(inv_path + tmp_suffix, inv_path)
        self._table = table
        self._inv_table = inv_table
        self.cache_reused = False
        obs_metrics.count("engine.cache.miss")

    def flush_cache(self) -> None:
        """Flush memory-mapped tables to disk (no-op for in-memory engines)."""
        for array in (self._table, self._inv_table):
            if isinstance(array, np.memmap):
                array.flush()

    # -- interning ------------------------------------------------------------
    def intern(self, element) -> int:
        """The dense id of ``element`` (allocating one on first sight)."""
        found = self._ids.get(element)
        if found is not None:
            return found
        if self.full_enumeration:
            raise GroupError(
                f"element {element!r} is not in the enumerated group {self.group.name}"
            )
        new_id = len(self._elements)
        self._ids[element] = new_id
        self._elements.append(element)
        return new_id

    def intern_many(self, elements: Iterable) -> np.ndarray:
        if isinstance(elements, np.ndarray):
            # Already an id array: the id-native fast path is a no-op.
            if elements.dtype == np.int64:
                return elements
            if np.issubdtype(elements.dtype, np.integer):
                return elements.astype(np.int64)
        size = len(elements) if hasattr(elements, "__len__") else None
        if size == 0:
            return np.empty(0, dtype=np.int64)
        if size is not None:
            return np.fromiter(
                (self.intern(e) for e in elements), dtype=np.int64, count=size
            )
        return np.asarray([self.intern(e) for e in elements], dtype=np.int64)

    def element_of(self, element_id: int):
        return self._elements[int(element_id)]

    def elements_of(self, ids: Iterable) -> List:
        return [self._elements[int(i)] for i in ids]

    @property
    def interned_count(self) -> int:
        return len(self._elements)

    # -- bulk kernel primitives ------------------------------------------------
    def _bulk_products(self, ids_a: np.ndarray, ids_b: np.ndarray) -> np.ndarray:
        """Products of id arrays through the dense kernel (no scalar multiply)."""
        start = time.perf_counter() if obs_metrics.collecting() else None
        rows = self.kernel.compose_many(self._kernel_rows[ids_a], self._kernel_rows[ids_b])
        ids = self._row_index.lookup(rows)
        if start is not None:
            obs_metrics.observe("engine.bulk.mul", time.perf_counter() - start)
        return ids

    def _bulk_inverses(self, ids: np.ndarray) -> np.ndarray:
        start = time.perf_counter() if obs_metrics.collecting() else None
        out = self._row_index.lookup(self.kernel.inverse_many(self._kernel_rows[ids]))
        if start is not None:
            obs_metrics.observe("engine.bulk.inv", time.perf_counter() - start)
        return out

    # -- scalar primitives ----------------------------------------------------
    def _fill_product(self, a: int, b: int) -> int:
        """Compute one uncached product; the miss path, timed when observed."""
        start = time.perf_counter() if obs_metrics.collecting() else None
        if self._kernel_rows is not None:
            value = int(
                self._bulk_products(
                    np.asarray([a], dtype=np.int64), np.asarray([b], dtype=np.int64)
                )[0]
            )
        else:
            value = self.intern(self.group.multiply(self._elements[a], self._elements[b]))
        if start is not None:
            obs_metrics.observe("engine.fill.mul", time.perf_counter() - start)
        return value

    def _fill_inverse(self, a: int) -> int:
        start = time.perf_counter() if obs_metrics.collecting() else None
        if self._kernel_rows is not None:
            value = int(self._bulk_inverses(np.asarray([a], dtype=np.int64))[0])
        else:
            value = self.intern(self.group.inverse(self._elements[a]))
        if start is not None:
            obs_metrics.observe("engine.fill.inv", time.perf_counter() - start)
        return value

    def mul(self, a: int, b: int) -> int:
        """Product of two interned elements, memoized."""
        a = int(a)
        b = int(b)
        if self._table is not None:
            value = int(self._table[a, b])
            if value < 0:
                value = self._fill_product(a, b)
                self._table[a, b] = value
            return value
        key = (a, b)
        value = self._mul_cache.get(key)
        if value is None:
            value = self._fill_product(a, b)
            self._mul_cache[key] = value
        return value

    def inv(self, a: int) -> int:
        a = int(a)
        if self._inv_table is not None:
            value = int(self._inv_table[a])
            if value < 0:
                value = self._fill_inverse(a)
                self._inv_table[a] = value
            return value
        value = self._inv_cache.get(a)
        if value is None:
            value = self._fill_inverse(a)
            self._inv_cache[a] = value
        return value

    def power(self, a: int, k: int) -> int:
        """``a**k`` by binary exponentiation over ids."""
        if k < 0:
            return self.power(self.inv(a), -k)
        result = self.identity_id
        base = int(a)
        while k:
            if k & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            k >>= 1
        return result

    # -- batch operations ------------------------------------------------------
    def mul_many(self, ids_a: Sequence[int], ids_b: Sequence[int]) -> np.ndarray:
        """Componentwise products ``a_i * b_i`` of two id arrays."""
        ids_a = np.asarray(ids_a, dtype=np.int64)
        ids_b = np.asarray(ids_b, dtype=np.int64)
        if ids_a.shape != ids_b.shape:
            raise ValueError("mul_many requires id arrays of equal length")
        if self._table is not None:
            out = self._table[ids_a, ids_b].astype(np.int64)
            missing = np.flatnonzero(out < 0)
            if missing.size:
                if self._kernel_rows is not None:
                    # Bulk fill: one kernel call computes every missing
                    # product and writes it back into the lazy table.
                    filled = self._bulk_products(ids_a[missing], ids_b[missing])
                    out[missing] = filled
                    self._table[ids_a[missing], ids_b[missing]] = filled
                else:
                    for idx in missing:
                        out[idx] = self.mul(int(ids_a[idx]), int(ids_b[idx]))
            return out
        if self.mode == "kernel":
            if ids_a.size == 0:
                return np.empty(0, dtype=np.int64)
            if ids_a.size > 8:
                return self._bulk_products(ids_a, ids_b)
            # Tiny batches (deep BFS levels degenerate to a few pairs) are
            # overhead-bound in the kernel: the memoized scalar path wins.
        return np.fromiter(
            (self.mul(a, b) for a, b in zip(ids_a, ids_b)), dtype=np.int64, count=len(ids_a)
        )

    def inv_many(self, ids: Sequence[int]) -> np.ndarray:
        """Componentwise inverses of an id array."""
        ids = np.asarray(ids, dtype=np.int64)
        if self._inv_table is not None:
            out = self._inv_table[ids].astype(np.int64)
            missing = np.flatnonzero(out < 0)
            if missing.size:
                if self._kernel_rows is not None:
                    filled = self._bulk_inverses(ids[missing])
                    out[missing] = filled
                    self._inv_table[ids[missing]] = filled
                else:
                    for idx in missing:
                        out[idx] = self.inv(int(ids[idx]))
            return out
        return np.fromiter((self.inv(a) for a in ids), dtype=np.int64, count=len(ids))

    def conj_many(self, ids_g: Sequence[int], ids_h: Sequence[int]) -> np.ndarray:
        """Componentwise conjugates ``g_i h_i g_i^{-1}``."""
        ids_g = np.asarray(ids_g, dtype=np.int64)
        return self.mul_many(self.mul_many(ids_g, ids_h), self.inv_many(ids_g))

    def orbit_closure(
        self,
        seed_ids: Sequence[int],
        generator_ids: Optional[Sequence[int]] = None,
        include_inverses: bool = True,
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Closure of ``seed_ids`` under right multiplication by the generators.

        With ``seed_ids == [identity]`` this is the subgroup generated by the
        generator ids.  Returns the sorted id array of the closure.  ``limit``
        aborts (``GroupError``) once the closure exceeds that many elements —
        the same guard the scalar BFS helpers use.
        """
        if generator_ids is None:
            generator_ids = self.intern_many(self.group.generators())
        gen_ids = np.asarray(generator_ids, dtype=np.int64)
        if include_inverses and gen_ids.size:
            gen_ids = np.unique(np.concatenate([gen_ids, self.inv_many(gen_ids)]))
        seed = np.unique(np.asarray(seed_ids, dtype=np.int64))
        if self.full_enumeration:
            # Dense membership: one boolean flag per group element, one
            # vectorised product block per BFS level.
            member = np.zeros(len(self._elements), dtype=bool)
            member[seed] = True
            frontier = seed
            while frontier.size and gen_ids.size:
                products = np.unique(
                    self.mul_many(np.repeat(frontier, gen_ids.size), np.tile(gen_ids, frontier.size))
                )
                fresh = products[~member[products]]
                member[fresh] = True
                if limit is not None and int(member.sum()) > limit:
                    raise GroupError(f"orbit closure exceeded limit {limit}")
                frontier = fresh
            return np.flatnonzero(member).astype(np.int64)
        seen = set(int(i) for i in seed)
        frontier = seed
        while frontier.size and gen_ids.size:
            products = self.mul_many(np.repeat(frontier, gen_ids.size), np.tile(gen_ids, frontier.size))
            fresh = [int(p) for p in np.unique(products) if int(p) not in seen]
            seen.update(fresh)
            if limit is not None and len(seen) > limit:
                raise GroupError(f"orbit closure exceeded limit {limit}")
            frontier = np.asarray(fresh, dtype=np.int64)
        return np.asarray(sorted(seen), dtype=np.int64)

    def _cyclic_power_ids(self, gen_id: int) -> np.ndarray:
        """Ids of the cyclic subgroup ``<g>`` by shift doubling.

        Maintains the invariant ``powers = [g^0, ..., g^{k-1}]`` with
        ``pivot = g^k``; each level appends ``powers * pivot`` (the next
        ``k`` powers in one bulk product) and squares the pivot, so the
        whole chain costs ``O(log ord g)`` vectorised calls.  The first
        already-seen entry of a block is ``g^ord``, which truncates the
        final block exactly.
        """
        if gen_id == self.identity_id:
            return np.asarray([self.identity_id], dtype=np.int64)
        powers = np.asarray([self.identity_id, gen_id], dtype=np.int64)
        seen = np.zeros(len(self._elements), dtype=bool)
        seen[powers] = True
        pivot = int(self.mul_many([gen_id], [gen_id])[0])
        while True:
            block = self.mul_many(powers, np.full(powers.size, pivot, dtype=np.int64))
            dup = seen[block]
            if dup.any():
                cut = int(np.argmax(dup))
                return np.concatenate([powers, block[:cut]])
            seen[block] = True
            powers = np.concatenate([powers, block])
            pivot = int(self.mul_many([pivot], [pivot])[0])

    def subgroup_ids(
        self, generator_ids: Sequence[int], limit: Optional[int] = None, memoize: bool = True
    ) -> np.ndarray:
        """Ids of the subgroup generated by ``generator_ids``.

        With a batch kernel the closure seeds each generator's cyclic
        subgroup by shift doubling (``O(log ord)`` bulk products apiece),
        then finishes with budgeted doubling and a linear generator-step
        tail; without one it keeps the pre-kernel quadratic doubling, whose
        pair products double as lazy table fills.  Sparse mode falls back
        to the generator-step orbit closure.  ``memoize=False`` skips the
        closure cache — use it for one-off generating sets (e.g.
        incremental re-closures seeded with a whole member set) whose keys
        would never be hit again.
        """
        gen_ids = np.unique(np.asarray(generator_ids, dtype=np.int64))
        if gen_ids.size == 0:
            return np.asarray([self.identity_id], dtype=np.int64)
        key = tuple(int(i) for i in gen_ids) if memoize else None
        if key is not None:
            cached = self._subgroup_cache.get(key)
            if cached is not None:
                if limit is not None and cached.size > limit:
                    raise GroupError(f"subgroup closure exceeded limit {limit}")
                return cached
        if not self.full_enumeration:
            closure = self.orbit_closure([self.identity_id], gen_ids, limit=limit)
            if key is not None:
                self._subgroup_cache[key] = closure
            return closure
        if self._kernel_rows is None:
            # Pre-kernel closure, kept byte-for-byte for engines without a
            # batch kernel (including everything built under
            # ``kernel_disabled()``): plain quadratic doubling, whose pair
            # products double as lazy table fills.  ``bench_scaling``
            # baselines rely on this branch reproducing the pre-refactor
            # engine path exactly.
            current = np.unique(
                np.concatenate([gen_ids, self.inv_many(gen_ids), [self.identity_id]])
            )
            member = np.zeros(len(self._elements), dtype=bool)
            member[current] = True
            frontier = current
            while frontier.size:
                # Both orders: a pair (a, b) with b discovered after a is
                # covered at b's level, where a is in `current` — a*b by the
                # second block and b*a by the first.
                left = self.mul_many(
                    np.repeat(frontier, current.size), np.tile(current, frontier.size)
                )
                right = self.mul_many(
                    np.repeat(current, frontier.size), np.tile(frontier, current.size)
                )
                products = np.unique(np.concatenate([left, right]))
                fresh = products[~member[products]]
                member[fresh] = True
                current = np.flatnonzero(member).astype(np.int64)
                if limit is not None and current.size > limit:
                    raise GroupError(f"subgroup closure exceeded limit {limit}")
                frontier = fresh
            if key is not None:
                self._subgroup_cache[key] = current
            return current
        gens_ext = np.unique(np.concatenate([gen_ids, self.inv_many(gen_ids)]))
        member = np.zeros(len(self._elements), dtype=bool)
        member[gens_ext] = True
        member[self.identity_id] = True
        # Seed with the cyclic subgroup of every generator: shift doubling
        # delivers each ``<g>`` in O(log ord g) bulk products, so near-cyclic
        # subgroups — hidden rotation subgroups are the common case — close
        # in a couple of further levels instead of a quadratic cascade.
        for gen in gen_ids:
            member[self._cyclic_power_ids(int(gen))] = True
            if limit is not None and int(member.sum()) > limit:
                raise GroupError(f"subgroup closure exceeded limit {limit}")
        current = np.flatnonzero(member).astype(np.int64)
        frontier = current
        # Doubling closes in O(log |H|) levels but its total pair count is
        # quadratic in |H|, so each level must fit a pair budget; past it
        # the closure switches to generator-step BFS, whose total pair
        # count is |H| * |gens_ext|.  The switch is complete: every member
        # outside the live frontier was already multiplied by all of
        # ``gens_ext`` (a subset of ``current`` since level 0).  Table mode
        # memoizes pairs in the int32 table so its budget is generous;
        # kernel mode recomputes every pair through the batch kernel plus a
        # row search and leans on the linear tail much sooner.
        pair_budget = (1 << 22) if self.mode == "table" else (1 << 17)
        while frontier.size and frontier.size * current.size * 2 <= pair_budget:
            # Both orders: a pair (a, b) with b discovered after a is covered
            # at b's level, where a is in `current` — a*b by the second block
            # and b*a by the first.
            left = self.mul_many(np.repeat(frontier, current.size), np.tile(current, frontier.size))
            right = self.mul_many(np.repeat(current, frontier.size), np.tile(frontier, current.size))
            products = np.unique(np.concatenate([left, right]))
            fresh = products[~member[products]]
            member[fresh] = True
            current = np.flatnonzero(member).astype(np.int64)
            if limit is not None and current.size > limit:
                raise GroupError(f"subgroup closure exceeded limit {limit}")
            frontier = fresh
        while frontier.size:
            products = np.unique(
                self.mul_many(np.repeat(frontier, gens_ext.size), np.tile(gens_ext, frontier.size))
            )
            fresh = products[~member[products]]
            member[fresh] = True
            if limit is not None and int(member.sum()) > limit:
                raise GroupError(f"subgroup closure exceeded limit {limit}")
            frontier = fresh
        current = np.flatnonzero(member).astype(np.int64)
        if key is not None:
            self._subgroup_cache[key] = current
        return current

    # -- element-level conveniences --------------------------------------------
    def multiply_elements(self, elements_a: Sequence, elements_b: Sequence) -> List:
        ids = self.mul_many(self.intern_many(elements_a), self.intern_many(elements_b))
        return self.elements_of(ids)

    def inverse_elements(self, elements: Sequence) -> List:
        return self.elements_of(self.inv_many(self.intern_many(elements)))

    # -- memoized structure queries ---------------------------------------------
    def is_abelian(self) -> bool:
        """Whether the group is Abelian (generator-pairwise, memoized)."""
        if self._is_abelian is None:
            gen_ids = self.intern_many(self.group.generators())
            pairs_a = np.repeat(gen_ids, gen_ids.size)
            pairs_b = np.tile(gen_ids, gen_ids.size)
            self._is_abelian = bool(
                np.array_equal(self.mul_many(pairs_a, pairs_b), self.mul_many(pairs_b, pairs_a))
            )
        return self._is_abelian

    def commutator_subgroup_ids(self, limit: Optional[int] = None) -> np.ndarray:
        """Ids of the full commutator subgroup ``G'`` (memoized).

        ``G'`` is the normal closure of the generator commutators: the
        computation alternates subgroup closure with conjugation by the group
        generators until stable, entirely over id arrays.
        """
        if self._commutator_ids is not None:
            return self._commutator_ids
        gen_ids = self.intern_many(self.group.generators())
        commutators = []
        for i in range(gen_ids.size):
            for j in range(i + 1, gen_ids.size):
                a, b = int(gen_ids[i]), int(gen_ids[j])
                c = self.mul(self.mul(a, b), self.mul(self.inv(a), self.inv(b)))
                if c != self.identity_id:
                    commutators.append(c)
        closure = self.subgroup_ids(np.asarray(commutators, dtype=np.int64), limit=limit)
        while True:
            members = set(int(i) for i in closure)
            pairs_g = np.repeat(gen_ids, closure.size)
            pairs_h = np.tile(closure, gen_ids.size)
            conjugates = self.conj_many(pairs_g, pairs_h)
            fresh = [int(c) for c in np.unique(conjugates) if int(c) not in members]
            if not fresh:
                break
            closure = self.subgroup_ids(
                np.concatenate([closure, np.asarray(fresh, dtype=np.int64)]), limit=limit
            )
        self._commutator_ids = closure
        return closure

    def commutator_subgroup_elements(self, limit: Optional[int] = None) -> List:
        return self.elements_of(self.commutator_subgroup_ids(limit=limit))

    def element_order(self, element_id: int) -> int:
        """Multiplicative order of an interned element (memoized)."""
        element_id = int(element_id)
        cached = self._order_cache.get(element_id)
        if cached is not None:
            return cached
        bound = self.group.exponent_bound() if self.mode == "kernel" else None
        if bound is not None:
            # Kernel mode has no n^2 table to amortise a linear walk into;
            # divide primes out of the exponent bound instead (O(log) muls).
            from repro.linalg.modular import element_order_from_exponent

            order = element_order_from_exponent(
                lambda k: self.power(element_id, k),
                lambda i: int(i) == self.identity_id,
                bound,
            )
            self._order_cache[element_id] = order
            return order
        order = 1
        current = element_id
        cap = self.group_order if self.group_order is not None else _ORDER_ITERATION_LIMIT
        while current != self.identity_id:
            current = self.mul(current, element_id)
            order += 1
            if order > cap:
                raise GroupError("element order exceeds enumeration limit")
        self._order_cache[element_id] = order
        return order

    def orders_many(self, ids: Sequence[int]) -> np.ndarray:
        return np.fromiter((self.element_order(i) for i in ids), dtype=np.int64)

    # -- coset helpers -----------------------------------------------------------
    def coset_label(self, element_id: int, subgroup_ids: np.ndarray) -> int:
        """A canonical label of the left coset ``g H``: the minimum id in it.

        Constant exactly on left cosets of the subgroup, so it is a valid
        hiding-function value; computing it is one batched row of products.
        """
        element_id = int(element_id)
        subgroup_ids = np.asarray(subgroup_ids, dtype=np.int64)
        if self._table is not None:
            row = self._table[element_id, subgroup_ids]
            missing = np.flatnonzero(row < 0)
            if missing.size:
                if self._kernel_rows is not None:
                    filled = self._bulk_products(
                        np.full(missing.size, element_id, dtype=np.int64),
                        subgroup_ids[missing],
                    )
                    row[missing] = filled
                    self._table[element_id, subgroup_ids[missing]] = filled
                else:
                    for idx in missing:
                        row[idx] = self.mul(element_id, int(subgroup_ids[idx]))
            return int(row.min())
        if self.mode == "kernel":
            return int(
                self._bulk_products(
                    np.full(subgroup_ids.size, element_id, dtype=np.int64), subgroup_ids
                ).min()
            )
        return min(self.mul(element_id, int(b)) for b in subgroup_ids)

    def coset_label_many(self, element_ids: Sequence[int], subgroup_ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`coset_label` over a whole block of elements.

        One products block of shape ``(len(element_ids), len(subgroup_ids))``
        followed by a row-wise minimum; callers chunk when the block would be
        large.  Labels are identical to the scalar :meth:`coset_label` calls.
        """
        element_ids = np.asarray(element_ids, dtype=np.int64)
        subgroup_ids = np.asarray(subgroup_ids, dtype=np.int64)
        if element_ids.size == 0:
            return np.empty(0, dtype=np.int64)
        products = self.mul_many(
            np.repeat(element_ids, subgroup_ids.size),
            np.tile(subgroup_ids, element_ids.size),
        )
        return products.reshape(element_ids.size, subgroup_ids.size).min(axis=1)

    # -- diagnostics ---------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Cache-occupancy statistics (used by tests and the benchmark report)."""
        if self._table is not None:
            filled = int((self._table >= 0).sum())
        else:
            filled = len(self._mul_cache)
        return {
            "interned": len(self._elements),
            "cached_products": filled,
            "cached_inverses": (
                int((self._inv_table >= 0).sum()) if self._inv_table is not None else len(self._inv_cache)
            ),
            "table_mode": int(self.mode == "table"),
            "kernel_mode": int(self.mode == "kernel"),
            "has_kernel": int(self.kernel is not None),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CayleyBackend {self.group.name} mode={self.mode} interned={len(self._elements)}>"


def get_engine(
    group: FiniteGroup,
    table_limit: int = DEFAULT_TABLE_LIMIT,
    cache_dir: Optional[str] = None,
    kernel_limit: Optional[int] = None,
) -> CayleyBackend:
    """The engine installed on ``group``, building (and installing) one if absent.

    Installation makes the group's default ``multiply_many``/``inverse_many``
    batch methods engine-accelerated (see :class:`~repro.groups.base.FiniteGroup`).
    ``cache_dir`` only matters when a new engine is built — an engine that is
    already installed keeps whatever backing store it was created with.
    """
    engine = getattr(group, "_cayley_engine", None)
    if engine is None:
        engine = CayleyBackend(
            group, table_limit=table_limit, cache_dir=cache_dir, kernel_limit=kernel_limit
        )
        group._cayley_engine = engine
    return engine


#: When true, :func:`maybe_engine` declines to build or return engines; set
#: through :func:`engine_disabled` to force the scalar per-element paths.
_ENGINE_DISABLED = False

#: When true, newly built engines ignore dense kernels entirely — table
#: fills revert to per-pair scalar ``multiply`` and the ``"kernel"`` mode is
#: unavailable.  Set through :func:`kernel_disabled`; this reproduces the
#: pre-kernel engine exactly and is the baseline configuration of the
#: scaling benchmark.
_KERNEL_DISABLED = False


@contextmanager
def kernel_disabled():
    """Context manager forcing engines built inside it onto scalar fills.

    Unlike :func:`engine_disabled` the Cayley engine itself stays on — ids,
    lazy tables and memoisation all work as before the dense kernels existed
    — but no :class:`~repro.groups.base.DenseKernel` is consulted, so every
    table fill goes through the group's scalar ``multiply``/``inverse``.
    Query accounting is unaffected (the engine never counts).  Engines
    *already installed* on a group keep their kernels; the context only
    affects constructions inside it.
    """
    global _KERNEL_DISABLED
    previous = _KERNEL_DISABLED
    _KERNEL_DISABLED = True
    try:
        yield
    finally:
        _KERNEL_DISABLED = previous


@contextmanager
def engine_disabled():
    """Context manager forcing the engine-less scalar configuration.

    While active, :func:`maybe_engine` returns ``None`` everywhere — instance
    construction falls back to min-encoding coset labels and the solvers'
    batch APIs run as plain scalar loops.  This is how the experiment
    harness realises its pre-engine baseline configuration without threading
    a flag through every construction site.  Query accounting is unaffected.
    """
    global _ENGINE_DISABLED
    previous = _ENGINE_DISABLED
    _ENGINE_DISABLED = True
    try:
        yield
    finally:
        _ENGINE_DISABLED = previous


#: Default ``cache_dir`` applied by :func:`maybe_engine` when the caller does
#: not pass one; set through :func:`engine_cache`.
_DEFAULT_CACHE_DIR: Optional[str] = None


@contextmanager
def engine_cache(cache_dir: str):
    """Context manager giving implicitly built engines a persistent table.

    Every :func:`maybe_engine` call inside the context that *builds* a new
    engine backs its dense table with ``cache_dir`` (see
    :class:`CayleyBackend`).  Instance-construction sites install engines
    implicitly (e.g. ``HSPInstance.from_subgroup`` through the coset-label
    builder), so this is how the experiment runner threads a sweep-level
    cache directory to them without widening every signature.
    """
    global _DEFAULT_CACHE_DIR
    previous = _DEFAULT_CACHE_DIR
    _DEFAULT_CACHE_DIR = str(cache_dir)
    try:
        yield
    finally:
        _DEFAULT_CACHE_DIR = previous


def cache_entries(cache_dir: str) -> List[Dict[str, object]]:
    """The persistent Cayley-table cache entries of ``cache_dir``.

    One entry per digest (the ``-table.npy`` / ``-inv.npy`` pair written by
    :meth:`CayleyBackend._attach_persistent_tables`), with the combined byte
    size and the most recent mtime across the pair — the "last used" stamp,
    since reuse touches the files.  A ``cayley-*.npy.tmp-<pid>`` file left
    behind by a crashed writer is its own entry (keyed by filename), so the
    listing reports true disk usage and pruning can reclaim it.  Sorted
    least-recently-used first, which is the eviction order of
    :func:`prune_cache`.  Files that do not match either naming scheme are
    ignored.
    """
    pairs: Dict[str, Dict[str, object]] = {}
    if not os.path.isdir(cache_dir):
        return []
    for name in os.listdir(cache_dir):
        if not name.startswith("cayley-"):
            continue
        if name.endswith(".npy"):
            stem = name[len("cayley-") : -len(".npy")]
            digest, _, kind = stem.rpartition("-")
            if kind not in ("table", "inv") or not digest:
                continue
        elif ".npy.tmp-" in name:
            digest = name  # an orphaned writer temp file: one entry per file
        else:
            continue
        path = os.path.join(cache_dir, name)
        try:
            stat = os.stat(path)
        except OSError:
            continue  # racing eviction/cleanup
        entry = pairs.setdefault(
            digest, {"digest": digest, "files": [], "bytes": 0, "last_used": 0.0}
        )
        entry["files"].append(path)
        entry["bytes"] += stat.st_size
        entry["last_used"] = max(entry["last_used"], stat.st_mtime)
    return sorted(pairs.values(), key=lambda entry: (entry["last_used"], entry["digest"]))


def prune_cache(cache_dir: str, max_bytes: int) -> List[Dict[str, object]]:
    """Evict least-recently-used cache entries until the total fits ``max_bytes``.

    Entries (both files of a digest pair together — a half-evicted pair
    would be rebuilt anyway) are removed oldest-mtime first until the
    remaining total size is at most ``max_bytes``.  Returns the evicted
    entries.  ``max_bytes=0`` empties the cache.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
    entries = cache_entries(cache_dir)
    total = sum(entry["bytes"] for entry in entries)
    evicted: List[Dict[str, object]] = []
    for entry in entries:
        if total <= max_bytes:
            break
        for path in entry["files"]:
            try:
                os.remove(path)
            except OSError:
                pass  # already gone: a concurrent prune or manual cleanup
        total -= entry["bytes"]
        evicted.append(entry)
    return evicted


def maybe_engine(
    group: FiniteGroup,
    table_limit: int = DEFAULT_TABLE_LIMIT,
    intern_limit: int = DEFAULT_INTERN_LIMIT,
    cache_dir: Optional[str] = None,
) -> Optional[CayleyBackend]:
    """A guarded :func:`get_engine`: ``None`` when no usable encoding exists.

    The engine engages only when the group order is known without a fresh
    full enumeration (a concrete ``order()`` override or an already-cached
    element list) and fits under ``intern_limit``, and when elements are
    hashable.  Counted black-box wrappers are unwrapped so that the engine
    memoizes the *uncounted* arithmetic — the wrapper keeps doing the (bulk)
    accounting.
    """
    if _ENGINE_DISABLED:
        return None
    if cache_dir is None:
        cache_dir = _DEFAULT_CACHE_DIR
    inner = getattr(group, "group", None)
    if isinstance(inner, FiniteGroup):
        group = inner
    existing = getattr(group, "_cayley_engine", None)
    if existing is not None:
        return existing
    order = _cheap_order(group)
    if order is None or order > intern_limit:
        return None
    try:
        hash(group.identity())
    except TypeError:
        return None
    return get_engine(
        group, table_limit=table_limit, cache_dir=cache_dir, kernel_limit=intern_limit
    )
