"""Concrete quotient groups ``G / N`` with canonical coset representatives.

The paper's algorithms never construct quotient groups explicitly — they work
with *non-unique encodings* (Theorem 7) or with coset superpositions
(Theorem 10).  Tests and instance builders, however, need the quotient as an
honest group object so that solver output can be compared against ground
truth.  This module provides that reference implementation: each coset is
represented by the element with the lexicographically smallest encoding,
which requires enumerating ``N`` (small normal subgroups only).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.groups.base import FiniteGroup, GroupError
from repro.groups.subgroup import generate_subgroup_elements, is_normal_subgroup

__all__ = ["QuotientGroup"]


class QuotientGroup(FiniteGroup):
    """The factor group ``G / N`` for an enumerable normal subgroup ``N``.

    Elements of the quotient are canonical coset representatives (elements of
    ``G``); multiplication multiplies representatives in ``G`` and
    re-canonicalises.
    """

    def __init__(
        self,
        group: FiniteGroup,
        normal_generators: Sequence,
        *,
        check_normal: bool = True,
        max_normal_order: int = 1_000_000,
    ):
        self.group = group
        self.normal_generators = list(normal_generators)
        if check_normal and not is_normal_subgroup(group, self.normal_generators):
            raise GroupError("QuotientGroup requires a normal subgroup")
        self.normal_elements = generate_subgroup_elements(group, self.normal_generators, limit=max_normal_order)
        self.name = f"{group.name}/N(|N|={len(self.normal_elements)})"
        self._canonical_cache: dict = {}

    # -- coset plumbing --------------------------------------------------------
    def canonical(self, g):
        """The canonical representative of the coset ``gN``."""
        cached = self._canonical_cache.get(g)
        if cached is not None:
            return cached
        best = None
        best_code = None
        for n in self.normal_elements:
            candidate = self.group.multiply(g, n)
            code = self.group.encode(candidate)
            if best_code is None or code < best_code:
                best, best_code = candidate, code
        self._canonical_cache[g] = best
        return best

    def natural_map(self) -> Callable:
        """The projection ``G -> G/N`` as a callable."""
        return self.canonical

    # -- FiniteGroup interface ----------------------------------------------------
    def identity(self):
        return self.canonical(self.group.identity())

    def multiply(self, a, b):
        return self.canonical(self.group.multiply(a, b))

    def inverse(self, a):
        return self.canonical(self.group.inverse(a))

    def generators(self) -> List:
        gens = [self.canonical(g) for g in self.group.generators()]
        return [g for g in gens if not self.group.equal(g, self.identity())] or [self.identity()]

    def encode(self, a) -> bytes:
        return self.group.encode(self.canonical(a))

    def equal(self, a, b) -> bool:
        return self.group.equal(self.canonical(a), self.canonical(b))

    def order(self) -> int:
        return self.group.order() // len(self.normal_elements)

    def exponent_bound(self) -> Optional[int]:
        return self.group.exponent_bound()

    def uniform_random_element(self, rng: np.random.Generator):
        return self.canonical(self.group.random_element(rng))
