"""Finite Abelian groups as tuple groups ``Z_{n1} x ... x Z_{nk}``.

These are the ambient groups of the Abelian HSP engine (Theorem 3), the
building blocks of the semidirect products used in Theorems 11 and 13, and
the target groups of the Cheung--Mosca decomposition (Theorem 1).  Elements
are integer tuples; all structural computations are delegated to
:class:`repro.linalg.zmodule.ZModule`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.base import DenseKernel, FiniteGroup, GroupError
from repro.linalg.zmodule import ZModule, member_coefficients, subgroup_order

__all__ = ["AbelianTupleGroup", "cyclic_group", "elementary_abelian_group"]

Vector = Tuple[int, ...]


class _AbelianKernel(DenseKernel):
    """Rows are coordinate vectors; products add componentwise mod the moduli."""

    def __init__(self, moduli: Tuple[int, ...]):
        self.width = len(moduli)
        self._moduli = np.asarray(moduli, dtype=np.int64)

    def encode_many(self, elements: Sequence[Vector]) -> np.ndarray:
        if not elements:
            return np.empty((0, self.width), dtype=np.int64)
        return np.asarray(list(elements), dtype=np.int64)

    def decode_many(self, rows: np.ndarray) -> List[Vector]:
        return [tuple(int(v) for v in row) for row in rows]

    def compose_many(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        return (rows_a + rows_b) % self._moduli

    def inverse_many(self, rows: np.ndarray) -> np.ndarray:
        return (-rows) % self._moduli


class AbelianTupleGroup(FiniteGroup):
    """The Abelian group ``Z_{n1} x ... x Z_{nk}`` with componentwise addition."""

    def __init__(self, moduli: Sequence[int], name: Optional[str] = None):
        moduli = [int(m) for m in moduli]
        if not moduli:
            raise GroupError("AbelianTupleGroup requires at least one cyclic factor")
        self.module = ZModule(moduli)
        self.moduli: Tuple[int, ...] = self.module.moduli
        self.name = name or "Z" + "x".join(f"{m}" for m in moduli)

    # -- FiniteGroup interface -------------------------------------------------
    def identity(self) -> Vector:
        return self.module.identity()

    def multiply(self, a: Vector, b: Vector) -> Vector:
        return self.module.add(a, b)

    def inverse(self, a: Vector) -> Vector:
        return self.module.neg(a)

    def generators(self) -> List[Vector]:
        gens = []
        for j, m in enumerate(self.moduli):
            if m > 1:
                gens.append(tuple(1 if i == j else 0 for i in range(len(self.moduli))))
        return gens or [self.identity()]

    def encode(self, a: Vector) -> bytes:
        return ",".join(str(int(x)) for x in a).encode()

    def decode(self, code: bytes) -> Vector:
        return tuple(int(x) for x in code.decode().split(","))

    # -- structure ---------------------------------------------------------------
    def order(self) -> int:
        return self.module.order

    def exponent_bound(self) -> int:
        return self.module.exponent

    def element_order(self, a: Vector, exponent: Optional[int] = None) -> int:
        return self.module.element_order(a)

    def is_abelian(self) -> bool:
        return True

    def power(self, a: Vector, k: int) -> Vector:
        return self.module.scalar(k, a)

    def uniform_random_element(self, rng: np.random.Generator) -> Vector:
        return self.module.random_element(rng)

    def dense_kernel(self) -> Optional[_AbelianKernel]:
        # Coordinate sums must stay inside int64: gate on the moduli.
        if any(m >= (1 << 31) for m in self.moduli):
            return None
        return _AbelianKernel(self.moduli)

    # -- subgroup helpers ------------------------------------------------------------
    def subgroup_order(self, generators: Sequence[Vector]) -> int:
        return subgroup_order(generators, self.moduli)

    def subgroup_contains(self, generators: Sequence[Vector], element: Vector) -> bool:
        return member_coefficients(generators, element, self.moduli) is not None

    def random_subgroup(self, rng: np.random.Generator, max_generators: int = 2) -> List[Vector]:
        """Generators of a random subgroup (for instance generation in tests)."""
        count = int(rng.integers(1, max_generators + 1))
        return [self.module.random_element(rng) for _ in range(count)]

    def __eq__(self, other) -> bool:
        return isinstance(other, AbelianTupleGroup) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(("AbelianTupleGroup", self.moduli))


def cyclic_group(n: int) -> AbelianTupleGroup:
    """The cyclic group ``Z_n`` as a one-coordinate tuple group."""
    return AbelianTupleGroup([n], name=f"Z_{n}")


def elementary_abelian_group(p: int, k: int) -> AbelianTupleGroup:
    """The elementary Abelian group ``Z_p^k``."""
    return AbelianTupleGroup([p] * k, name=f"Z_{p}^{k}")
