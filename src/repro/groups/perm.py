"""Permutation groups with a Schreier--Sims stabiliser chain.

Theorem 8 of the paper states that hidden *normal* subgroups of permutation
groups can be found in quantum polynomial time (because ``nu(G/N)`` is
polynomially bounded for permutation groups).  The experiments therefore need
honest permutation-group machinery: orders, membership and normal closures
computed from a base and strong generating set rather than by enumeration.

Permutations of degree ``n`` are represented as tuples ``p`` of length ``n``
with ``p[i]`` the image of point ``i``; composition is ``(p * q)(i) =
p[q[i]]`` ("apply ``q`` first").
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.base import DenseKernel, FiniteGroup, GroupError

__all__ = [
    "compose",
    "invert",
    "compose_many",
    "invert_many",
    "permutation_from_cycles",
    "cycle_decomposition",
    "permutation_order",
    "SchreierSims",
    "PermutationGroup",
    "symmetric_group",
    "alternating_group",
    "cyclic_permutation_group",
    "dihedral_group",
]

Perm = Tuple[int, ...]


# ---------------------------------------------------------------------------
# Permutation primitives
# ---------------------------------------------------------------------------


def _compose_images(ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """The one composition kernel: image rows of ``p * q`` (apply ``q`` first).

    Works on single image vectors (1-D) and on ``(n, degree)`` batches alike
    — ``axis=-1`` fancy-indexes each row of ``ps`` by the matching row of
    ``qs``.  Both the scalar wrappers and the batch API call through here.
    """
    return np.take_along_axis(ps, qs, axis=-1)


def _invert_images(ps: np.ndarray) -> np.ndarray:
    """Row-wise inverses: the argsort of a permutation's images is its inverse."""
    return np.argsort(ps, axis=-1, kind="stable")


def compose(p: Perm, q: Perm) -> Perm:
    """``p * q``: apply ``q`` first, then ``p``."""
    images = _compose_images(np.asarray(p, dtype=np.int64), np.asarray(q, dtype=np.int64))
    return tuple(int(v) for v in images)


def invert(p: Perm) -> Perm:
    """Inverse permutation."""
    images = _invert_images(np.asarray(p, dtype=np.int64))
    return tuple(int(v) for v in images)


def compose_many(ps: np.ndarray, qs: np.ndarray) -> np.ndarray:
    """Row-wise composition of two ``(n, degree)`` image matrices."""
    ps = np.asarray(ps, dtype=np.int64)
    qs = np.asarray(qs, dtype=np.int64)
    if ps.shape != qs.shape:
        raise GroupError("compose_many requires image matrices of equal shape")
    return _compose_images(ps, qs)


def invert_many(ps: np.ndarray) -> np.ndarray:
    """Row-wise inverses of an ``(n, degree)`` image matrix."""
    return _invert_images(np.asarray(ps, dtype=np.int64))


def permutation_from_cycles(degree: int, cycles: Sequence[Sequence[int]]) -> Perm:
    """Build a permutation of ``degree`` points from disjoint cycles."""
    images = list(range(degree))
    for cycle in cycles:
        if not cycle:
            continue
        for position, point in enumerate(cycle):
            if point < 0 or point >= degree:
                raise GroupError(f"cycle point {point} outside degree {degree}")
            images[point] = cycle[(position + 1) % len(cycle)]
    return tuple(images)


def cycle_decomposition(p: Perm) -> List[Tuple[int, ...]]:
    """Disjoint cycle decomposition (cycles of length >= 2, sorted by minimum)."""
    seen = [False] * len(p)
    cycles: List[Tuple[int, ...]] = []
    for start in range(len(p)):
        if seen[start] or p[start] == start:
            seen[start] = True
            continue
        cycle = [start]
        seen[start] = True
        current = p[start]
        while current != start:
            cycle.append(current)
            seen[current] = True
            current = p[current]
        cycles.append(tuple(cycle))
    return cycles


def permutation_order(p: Perm) -> int:
    """Order of a permutation: lcm of its cycle lengths."""
    order = 1
    for cycle in cycle_decomposition(p):
        length = len(cycle)
        order = order * length // gcd(order, length)
    return order


def permutation_sign(p: Perm) -> int:
    """Sign (+1/-1) of a permutation."""
    parity = sum(len(c) - 1 for c in cycle_decomposition(p))
    return -1 if parity % 2 else 1


class _PermKernel(DenseKernel):
    """Dense rows are the image vectors themselves: ``width == degree``."""

    def __init__(self, degree: int):
        self.width = degree

    def encode_many(self, elements: Sequence[Perm]) -> np.ndarray:
        if not elements:
            return np.empty((0, self.width), dtype=np.int64)
        return np.asarray(list(elements), dtype=np.int64)

    def decode_many(self, rows: np.ndarray) -> List[Perm]:
        return [tuple(int(v) for v in row) for row in rows]

    def compose_many(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        return _compose_images(rows_a, rows_b)

    def inverse_many(self, rows: np.ndarray) -> np.ndarray:
        return _invert_images(rows)


# ---------------------------------------------------------------------------
# Schreier--Sims stabiliser chain
# ---------------------------------------------------------------------------


class SchreierSims:
    """Base and strong generating set for a permutation group.

    A deliberately simple deterministic Schreier--Sims: transversals for all
    levels are recomputed whenever the strong generating set grows.  For the
    moderate degrees used in the experiments (a few dozen points) this is far
    below the cost of anything else in the pipeline, and it keeps the
    invariants easy to audit.
    """

    def __init__(self, generators: Sequence[Perm], degree: int):
        self.degree = degree
        self.identity: Perm = tuple(range(degree))
        self.base: List[int] = []
        self.strong_gens: List[Perm] = [tuple(g) for g in generators if tuple(g) != self.identity]
        self.transversals: List[Dict[int, Perm]] = []
        self._build()

    # -- construction -------------------------------------------------------
    def _fixes(self, g: Perm, points: Sequence[int]) -> bool:
        return all(g[p] == p for p in points)

    def _gens_at_level(self, level: int) -> List[Perm]:
        prefix = self.base[:level]
        return [g for g in self.strong_gens if self._fixes(g, prefix)]

    def _orbit_transversal(self, point: int, gens: Sequence[Perm]) -> Dict[int, Perm]:
        transversal = {point: self.identity}
        frontier = [point]
        while frontier:
            nxt: List[int] = []
            for beta in frontier:
                for g in gens:
                    image = g[beta]
                    if image not in transversal:
                        transversal[image] = compose(g, transversal[beta])
                        nxt.append(image)
            frontier = nxt
        return transversal

    def _extend_base(self, g: Perm) -> None:
        for p in range(self.degree):
            if g[p] != p:
                self.base.append(p)
                return
        raise GroupError("cannot extend base with the identity permutation")

    def _recompute_transversals(self) -> None:
        self.transversals = [
            self._orbit_transversal(self.base[i], self._gens_at_level(i)) for i in range(len(self.base))
        ]

    def _strip(self, g: Perm, level: int = 0) -> Tuple[Perm, int]:
        """Sift ``g`` through the chain starting at ``level``.

        Returns ``(residue, drop_level)``; ``g`` is a member of the
        ``level``-th stabiliser iff the residue is the identity and
        ``drop_level == len(base)``.
        """
        current = g
        for i in range(level, len(self.base)):
            image = current[self.base[i]]
            transversal = self.transversals[i]
            if image not in transversal:
                return current, i
            current = compose(invert(transversal[image]), current)
        return current, len(self.base)

    def _build(self) -> None:
        for g in self.strong_gens:
            if self._fixes(g, self.base):
                self._extend_base(g)
        self._recompute_transversals()
        level = len(self.base) - 1
        while level >= 0:
            restart = False
            gens_here = self._gens_at_level(level)
            transversal = self.transversals[level]
            for beta, u_beta in list(transversal.items()):
                for g in gens_here:
                    image = g[beta]
                    u_image = transversal[image]
                    schreier_gen = compose(invert(u_image), compose(g, u_beta))
                    if schreier_gen == self.identity:
                        continue
                    residue, drop = self._strip(schreier_gen, level + 1)
                    if residue != self.identity:
                        self.strong_gens.append(residue)
                        if drop == len(self.base):
                            self._extend_base(residue)
                        self._recompute_transversals()
                        level = drop
                        restart = True
                        break
                if restart:
                    break
            if not restart:
                level -= 1

    # -- queries ---------------------------------------------------------------
    def order(self) -> int:
        size = 1
        for transversal in self.transversals:
            size *= len(transversal)
        return size

    def contains(self, g: Perm) -> bool:
        if len(g) != self.degree:
            return False
        residue, drop = self._strip(tuple(g))
        return residue == self.identity and drop == len(self.base)

    def random_element(self, rng: np.random.Generator) -> Perm:
        """Exactly uniform random element via the stabiliser chain."""
        g = self.identity
        for transversal in self.transversals:
            reps = list(transversal.values())
            g = compose(g, reps[int(rng.integers(0, len(reps)))])
        return g


# ---------------------------------------------------------------------------
# The group class
# ---------------------------------------------------------------------------


class PermutationGroup(FiniteGroup):
    """A permutation group of fixed degree given by generating permutations."""

    def __init__(self, generators: Sequence[Perm], degree: Optional[int] = None, name: str = "PermGroup"):
        generators = [tuple(g) for g in generators]
        if degree is None:
            if not generators:
                raise GroupError("degree is required for a trivial permutation group")
            degree = len(generators[0])
        for g in generators:
            if len(g) != degree or sorted(g) != list(range(degree)):
                raise GroupError(f"invalid permutation of degree {degree}: {g}")
        self.degree = degree
        self._generators = generators
        self.name = name
        self._chain: Optional[SchreierSims] = None

    # -- FiniteGroup interface -------------------------------------------------
    def identity(self) -> Perm:
        return tuple(range(self.degree))

    def multiply(self, a: Perm, b: Perm) -> Perm:
        return compose(a, b)

    def inverse(self, a: Perm) -> Perm:
        return invert(a)

    def generators(self) -> List[Perm]:
        return list(self._generators)

    def encode(self, a: Perm) -> bytes:
        return bytes(a) if self.degree < 256 else repr(a).encode()

    def decode(self, code: bytes) -> Perm:
        if self.degree < 256:
            return tuple(code)
        return tuple(eval(code.decode()))  # noqa: S307 - diagnostics only

    def dense_kernel(self) -> _PermKernel:
        return _PermKernel(self.degree)

    # -- structure ---------------------------------------------------------------
    @property
    def chain(self) -> SchreierSims:
        if self._chain is None:
            self._chain = SchreierSims(self._generators, self.degree)
        return self._chain

    def order(self) -> int:
        return self.chain.order()

    def exponent_bound(self) -> int:
        return self.order()

    def element_order(self, a: Perm, exponent: Optional[int] = None) -> int:
        return permutation_order(a)

    def contains_permutation(self, g: Perm) -> bool:
        """Membership test via sifting through the stabiliser chain."""
        return self.chain.contains(tuple(g))

    def uniform_random_element(self, rng: np.random.Generator) -> Perm:
        return self.chain.random_element(rng)

    def is_transitive(self) -> bool:
        orbit = {0}
        frontier = [0]
        gens = self._generators + [invert(g) for g in self._generators]
        while frontier:
            nxt = []
            for p in frontier:
                for g in gens:
                    if g[p] not in orbit:
                        orbit.add(g[p])
                        nxt.append(g[p])
            frontier = nxt
        return len(orbit) == self.degree


# ---------------------------------------------------------------------------
# Named families
# ---------------------------------------------------------------------------


def symmetric_group(n: int) -> PermutationGroup:
    """The symmetric group ``S_n`` on ``{0, ..., n-1}``."""
    if n < 1:
        raise GroupError("symmetric_group requires n >= 1")
    if n == 1:
        return PermutationGroup([], degree=1, name="S_1")
    transposition = permutation_from_cycles(n, [(0, 1)])
    cycle = tuple(list(range(1, n)) + [0])
    return PermutationGroup([transposition, cycle], degree=n, name=f"S_{n}")


def alternating_group(n: int) -> PermutationGroup:
    """The alternating group ``A_n``."""
    if n < 3:
        return PermutationGroup([], degree=max(n, 1), name=f"A_{n}")
    three_cycle = permutation_from_cycles(n, [(0, 1, 2)])
    if n % 2 == 1:
        long_cycle = tuple(list(range(1, n)) + [0])
        gens = [three_cycle, long_cycle]
    else:
        rotated = permutation_from_cycles(n, [tuple(range(1, n))])
        gens = [three_cycle, rotated]
    return PermutationGroup(gens, degree=n, name=f"A_{n}")


def cyclic_permutation_group(n: int) -> PermutationGroup:
    """The cyclic group ``Z_n`` acting regularly on ``n`` points."""
    cycle = tuple(list(range(1, n)) + [0])
    return PermutationGroup([cycle], degree=n, name=f"Z_{n}(perm)")


def dihedral_group(n: int) -> PermutationGroup:
    """The dihedral group ``D_n`` of order ``2n`` acting on ``n`` vertices."""
    if n < 3:
        raise GroupError("dihedral_group requires n >= 3")
    rotation = tuple(list(range(1, n)) + [0])
    reflection = tuple((n - i) % n for i in range(n))
    return PermutationGroup([rotation, reflection], degree=n, name=f"D_{n}")
