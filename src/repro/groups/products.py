"""Direct, semidirect and wreath products.

The paper's "new" solvable instances are all extensions of an Abelian normal
subgroup by a small or cyclic group:

* Theorem 13's flagship family is the wreath product ``Z_2^k wr Z_2 =
  (Z_2^k x Z_2^k) : Z_2`` of Rötteler--Beth, and more generally any group
  with an elementary Abelian normal 2-subgroup and cyclic (or small) factor;
* the dihedral groups ``D_n = Z_n : Z_2`` and the metacyclic groups
  ``Z_p : Z_q`` are the standard solvable test beds for Theorem 8.

These constructions are provided here as generic :class:`DirectProduct` and
:class:`SemidirectProduct` groups over arbitrary component groups, plus named
factories for the families used in the experiments.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.abelian import AbelianTupleGroup, cyclic_group, elementary_abelian_group
from repro.groups.base import DenseKernel, FiniteGroup, GroupError
from repro.linalg.modular import lcm, multiplicative_order

__all__ = [
    "DirectProduct",
    "SemidirectProduct",
    "wreath_product_z2",
    "dihedral_semidirect",
    "metacyclic_group",
    "generalized_dihedral",
]


class _ConcatKernel(DenseKernel):
    """Shared row layout for product kernels: factor rows concatenated."""

    def __init__(self, kernels: Sequence[DenseKernel]):
        self.kernels = list(kernels)
        self.offsets: List[Tuple[int, int]] = []
        start = 0
        for kernel in self.kernels:
            self.offsets.append((start, start + kernel.width))
            start += kernel.width
        self.width = start

    def _slices(self, rows: np.ndarray) -> List[np.ndarray]:
        return [rows[:, lo:hi] for lo, hi in self.offsets]


class _DirectProductKernel(_ConcatKernel):
    def __init__(self, factors: Sequence[FiniteGroup], kernels: Sequence[DenseKernel]):
        super().__init__(kernels)
        self.factors = list(factors)

    def encode_many(self, elements: Sequence) -> np.ndarray:
        rows = np.empty((len(elements), self.width), dtype=np.int64)
        for kernel, (lo, hi), parts in zip(
            self.kernels, self.offsets, zip(*elements) if elements else [() for _ in self.kernels]
        ):
            rows[:, lo:hi] = kernel.encode_many(list(parts))
        return rows

    def decode_many(self, rows: np.ndarray) -> List:
        columns = [kernel.decode_many(part) for kernel, part in zip(self.kernels, self._slices(rows))]
        return [tuple(parts) for parts in zip(*columns)] if len(rows) else []

    def compose_many(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        out = np.empty_like(rows_a)
        for kernel, (lo, hi) in zip(self.kernels, self.offsets):
            out[:, lo:hi] = kernel.compose_many(rows_a[:, lo:hi], rows_b[:, lo:hi])
        return out

    def inverse_many(self, rows: np.ndarray) -> np.ndarray:
        out = np.empty_like(rows)
        for kernel, (lo, hi) in zip(self.kernels, self.offsets):
            out[:, lo:hi] = kernel.inverse_many(rows[:, lo:hi])
        return out


class _SemidirectKernel(_ConcatKernel):
    """Rows are ``[n_row | k_row]``; the action runs as one array expression.

    ``array_action(k_rows, n_rows)`` must be the vectorized twin of the
    scalar ``action(k, n)`` — row ``i`` of the result is
    ``encode(action(decode(k_rows[i]), decode(n_rows[i])))``.
    """

    def __init__(
        self,
        normal_kernel: DenseKernel,
        quotient_kernel: DenseKernel,
        array_action: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ):
        super().__init__([normal_kernel, quotient_kernel])
        self.normal_kernel = normal_kernel
        self.quotient_kernel = quotient_kernel
        self.array_action = array_action

    def encode_many(self, elements: Sequence) -> np.ndarray:
        rows = np.empty((len(elements), self.width), dtype=np.int64)
        (n_lo, n_hi), (k_lo, k_hi) = self.offsets
        rows[:, n_lo:n_hi] = self.normal_kernel.encode_many([n for n, _ in elements])
        rows[:, k_lo:k_hi] = self.quotient_kernel.encode_many([k for _, k in elements])
        return rows

    def decode_many(self, rows: np.ndarray) -> List:
        n_rows, k_rows = self._slices(rows)
        return list(
            zip(self.normal_kernel.decode_many(n_rows), self.quotient_kernel.decode_many(k_rows))
        )

    def compose_many(self, rows_a: np.ndarray, rows_b: np.ndarray) -> np.ndarray:
        (n_lo, n_hi), (k_lo, k_hi) = self.offsets
        n1, k1 = rows_a[:, n_lo:n_hi], rows_a[:, k_lo:k_hi]
        n2, k2 = rows_b[:, n_lo:n_hi], rows_b[:, k_lo:k_hi]
        out = np.empty_like(rows_a)
        out[:, n_lo:n_hi] = self.normal_kernel.compose_many(n1, self.array_action(k1, n2))
        out[:, k_lo:k_hi] = self.quotient_kernel.compose_many(k1, k2)
        return out

    def inverse_many(self, rows: np.ndarray) -> np.ndarray:
        (n_lo, n_hi), (k_lo, k_hi) = self.offsets
        k_inv = self.quotient_kernel.inverse_many(rows[:, k_lo:k_hi])
        out = np.empty_like(rows)
        out[:, n_lo:n_hi] = self.array_action(
            k_inv, self.normal_kernel.inverse_many(rows[:, n_lo:n_hi])
        )
        out[:, k_lo:k_hi] = k_inv
        return out


class DirectProduct(FiniteGroup):
    """The direct product of finitely many groups; elements are tuples."""

    def __init__(self, factors: Sequence[FiniteGroup], name: Optional[str] = None):
        if not factors:
            raise GroupError("DirectProduct requires at least one factor")
        self.factors = list(factors)
        self.name = name or " x ".join(f.name for f in self.factors)

    def identity(self):
        return tuple(f.identity() for f in self.factors)

    def multiply(self, a, b):
        return tuple(f.multiply(x, y) for f, x, y in zip(self.factors, a, b))

    def inverse(self, a):
        return tuple(f.inverse(x) for f, x in zip(self.factors, a))

    def generators(self) -> List:
        gens = []
        identities = [f.identity() for f in self.factors]
        for index, factor in enumerate(self.factors):
            for g in factor.generators():
                element = list(identities)
                element[index] = g
                gens.append(tuple(element))
        return gens

    def encode(self, a) -> bytes:
        return b"|".join(f.encode(x) for f, x in zip(self.factors, a))

    def order(self) -> int:
        total = 1
        for f in self.factors:
            total *= f.order()
        return total

    def exponent_bound(self) -> Optional[int]:
        bound = 1
        for f in self.factors:
            b = f.exponent_bound()
            if b is None:
                return None
            bound = lcm(bound, b)
        return bound

    def uniform_random_element(self, rng: np.random.Generator):
        return tuple(f.random_element(rng) for f in self.factors)

    def dense_kernel(self) -> Optional[_DirectProductKernel]:
        kernels = [f.dense_kernel() for f in self.factors]
        if any(kernel is None for kernel in kernels):
            return None
        return _DirectProductKernel(self.factors, kernels)


class SemidirectProduct(FiniteGroup):
    """The (outer) semidirect product ``N : K``.

    ``action(k, n)`` must implement the automorphism of ``N`` induced by the
    element ``k`` of ``K`` (i.e. ``phi_k(n)``), satisfying
    ``phi_{k1 k2} = phi_{k1} . phi_{k2}``.  Elements are pairs ``(n, k)`` with
    multiplication ``(n1, k1)(n2, k2) = (n1 * phi_{k1}(n2), k1 k2)``.
    """

    def __init__(
        self,
        normal: FiniteGroup,
        quotient: FiniteGroup,
        action: Callable[[object, object], object],
        name: Optional[str] = None,
        array_action: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ):
        self.normal = normal
        self.quotient = quotient
        self.action = action
        self.array_action = array_action
        self.name = name or f"({normal.name}) : ({quotient.name})"

    def identity(self):
        return (self.normal.identity(), self.quotient.identity())

    def multiply(self, a, b):
        n1, k1 = a
        n2, k2 = b
        return (self.normal.multiply(n1, self.action(k1, n2)), self.quotient.multiply(k1, k2))

    def inverse(self, a):
        n, k = a
        k_inv = self.quotient.inverse(k)
        return (self.action(k_inv, self.normal.inverse(n)), k_inv)

    def generators(self) -> List:
        gens = []
        for n in self.normal.generators():
            gens.append((n, self.quotient.identity()))
        for k in self.quotient.generators():
            gens.append((self.normal.identity(), k))
        return gens

    def encode(self, a) -> bytes:
        n, k = a
        return self.normal.encode(n) + b"#" + self.quotient.encode(k)

    def order(self) -> int:
        return self.normal.order() * self.quotient.order()

    def exponent_bound(self) -> Optional[int]:
        bn = self.normal.exponent_bound()
        bk = self.quotient.exponent_bound()
        if bn is None or bk is None:
            return self.order()
        # Element orders divide |N| * exponent(K) in a split extension; the
        # coarse bound lcm(bn, bk) * bn is always a safe multiple.
        return lcm(bn, bk) * bn

    def uniform_random_element(self, rng: np.random.Generator):
        return (self.normal.random_element(rng), self.quotient.random_element(rng))

    # -- convenience -----------------------------------------------------------
    def embed_normal(self, n) -> Tuple:
        """The element ``(n, 1)`` of the product."""
        return (n, self.quotient.identity())

    def embed_quotient(self, k) -> Tuple:
        """The element ``(1, k)`` of the product."""
        return (self.normal.identity(), k)

    def normal_part_generators(self) -> List:
        return [self.embed_normal(n) for n in self.normal.generators()]

    def dense_kernel(self) -> Optional[_SemidirectKernel]:
        if self.array_action is None:
            return None
        normal_kernel = self.normal.dense_kernel()
        quotient_kernel = self.quotient.dense_kernel()
        if normal_kernel is None or quotient_kernel is None:
            return None
        return _SemidirectKernel(normal_kernel, quotient_kernel, self.array_action)


# ---------------------------------------------------------------------------
# Named families
# ---------------------------------------------------------------------------


def wreath_product_z2(k: int) -> SemidirectProduct:
    """The wreath product ``Z_2^k wr Z_2`` of Rötteler--Beth.

    The base group is ``N = Z_2^k x Z_2^k`` (stored as a single tuple group of
    rank ``2k``) and the top ``Z_2`` swaps the two halves.  These are the
    groups for which Rötteler and Beth first exhibited an efficient quantum
    HSP algorithm; Theorem 13 subsumes them because ``N`` is an elementary
    Abelian normal 2-subgroup with cyclic factor group.
    """
    if k < 1:
        raise GroupError("wreath_product_z2 requires k >= 1")
    base = AbelianTupleGroup([2] * (2 * k), name=f"Z_2^{2 * k}")
    top = cyclic_group(2)

    def action(swap, vector):
        if swap[0] % 2 == 0:
            return vector
        return tuple(vector[k:]) + tuple(vector[:k])

    def array_action(k_rows, n_rows):
        swapped = np.concatenate([n_rows[:, k:], n_rows[:, :k]], axis=1)
        return np.where(k_rows[:, :1] % 2 == 1, swapped, n_rows)

    return SemidirectProduct(base, top, action, name=f"Z_2^{k} wr Z_2", array_action=array_action)


def dihedral_semidirect(n: int) -> SemidirectProduct:
    """The dihedral group ``D_n = Z_n : Z_2`` (inversion action)."""
    if n < 3:
        raise GroupError("dihedral_semidirect requires n >= 3")
    rotation = cyclic_group(n)
    flip = cyclic_group(2)

    def action(k, x):
        return x if k[0] % 2 == 0 else rotation.inverse(x)

    def array_action(k_rows, n_rows):
        return np.where(k_rows[:, :1] % 2 == 1, (-n_rows) % n, n_rows)

    return SemidirectProduct(
        rotation, flip, action, name=f"D_{n}(semidirect)", array_action=array_action
    )


def metacyclic_group(p: int, q: int, multiplier: Optional[int] = None) -> SemidirectProduct:
    """The non-Abelian metacyclic group ``Z_p : Z_q`` (``q`` dividing ``p - 1``).

    The generator of ``Z_q`` acts on ``Z_p`` as multiplication by an element
    ``multiplier`` of multiplicative order ``q`` modulo ``p``.  These solvable
    groups are classic Theorem 8 test instances (their proper normal
    subgroups are the subgroups of ``Z_p`` plus the whole group).
    """
    if (p - 1) % q != 0:
        raise GroupError("metacyclic_group requires q | p - 1")
    if multiplier is None:
        from repro.linalg.modular import primitive_root

        root = primitive_root(p)
        multiplier = pow(root, (p - 1) // q, p)
    if multiplicative_order(multiplier, p) != q:
        raise GroupError("multiplier must have multiplicative order q modulo p")
    base = cyclic_group(p)
    top = cyclic_group(q)

    def action(k, x):
        factor = pow(multiplier, k[0], p)
        return (x[0] * factor % p,)

    pow_table = np.asarray([pow(multiplier, j, p) for j in range(q)], dtype=np.int64)

    def array_action(k_rows, n_rows):
        # p < 2^31 is enforced by the Abelian kernel gate, so the products
        # below stay inside int64.
        return (n_rows * pow_table[k_rows[:, 0] % q][:, None]) % p

    return SemidirectProduct(base, top, action, name=f"Z_{p} : Z_{q}", array_action=array_action)


def generalized_dihedral(moduli: Sequence[int]) -> SemidirectProduct:
    """The generalised dihedral group ``A : Z_2`` with inversion action on ``A``."""
    base = AbelianTupleGroup(moduli)
    top = cyclic_group(2)

    moduli_row = np.asarray(base.moduli, dtype=np.int64)

    def action(k, x):
        return x if k[0] % 2 == 0 else base.inverse(x)

    def array_action(k_rows, n_rows):
        return np.where(k_rows[:, :1] % 2 == 1, (-n_rows) % moduli_row, n_rows)

    return SemidirectProduct(
        base, top, action, name=f"Dih({base.name})", array_action=array_action
    )
