"""Direct, semidirect and wreath products.

The paper's "new" solvable instances are all extensions of an Abelian normal
subgroup by a small or cyclic group:

* Theorem 13's flagship family is the wreath product ``Z_2^k wr Z_2 =
  (Z_2^k x Z_2^k) : Z_2`` of Rötteler--Beth, and more generally any group
  with an elementary Abelian normal 2-subgroup and cyclic (or small) factor;
* the dihedral groups ``D_n = Z_n : Z_2`` and the metacyclic groups
  ``Z_p : Z_q`` are the standard solvable test beds for Theorem 8.

These constructions are provided here as generic :class:`DirectProduct` and
:class:`SemidirectProduct` groups over arbitrary component groups, plus named
factories for the families used in the experiments.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.groups.abelian import AbelianTupleGroup, cyclic_group, elementary_abelian_group
from repro.groups.base import FiniteGroup, GroupError
from repro.linalg.modular import lcm, multiplicative_order

__all__ = [
    "DirectProduct",
    "SemidirectProduct",
    "wreath_product_z2",
    "dihedral_semidirect",
    "metacyclic_group",
    "generalized_dihedral",
]


class DirectProduct(FiniteGroup):
    """The direct product of finitely many groups; elements are tuples."""

    def __init__(self, factors: Sequence[FiniteGroup], name: Optional[str] = None):
        if not factors:
            raise GroupError("DirectProduct requires at least one factor")
        self.factors = list(factors)
        self.name = name or " x ".join(f.name for f in self.factors)

    def identity(self):
        return tuple(f.identity() for f in self.factors)

    def multiply(self, a, b):
        return tuple(f.multiply(x, y) for f, x, y in zip(self.factors, a, b))

    def inverse(self, a):
        return tuple(f.inverse(x) for f, x in zip(self.factors, a))

    def generators(self) -> List:
        gens = []
        identities = [f.identity() for f in self.factors]
        for index, factor in enumerate(self.factors):
            for g in factor.generators():
                element = list(identities)
                element[index] = g
                gens.append(tuple(element))
        return gens

    def encode(self, a) -> bytes:
        return b"|".join(f.encode(x) for f, x in zip(self.factors, a))

    def order(self) -> int:
        total = 1
        for f in self.factors:
            total *= f.order()
        return total

    def exponent_bound(self) -> Optional[int]:
        bound = 1
        for f in self.factors:
            b = f.exponent_bound()
            if b is None:
                return None
            bound = lcm(bound, b)
        return bound

    def uniform_random_element(self, rng: np.random.Generator):
        return tuple(f.random_element(rng) for f in self.factors)


class SemidirectProduct(FiniteGroup):
    """The (outer) semidirect product ``N : K``.

    ``action(k, n)`` must implement the automorphism of ``N`` induced by the
    element ``k`` of ``K`` (i.e. ``phi_k(n)``), satisfying
    ``phi_{k1 k2} = phi_{k1} . phi_{k2}``.  Elements are pairs ``(n, k)`` with
    multiplication ``(n1, k1)(n2, k2) = (n1 * phi_{k1}(n2), k1 k2)``.
    """

    def __init__(
        self,
        normal: FiniteGroup,
        quotient: FiniteGroup,
        action: Callable[[object, object], object],
        name: Optional[str] = None,
    ):
        self.normal = normal
        self.quotient = quotient
        self.action = action
        self.name = name or f"({normal.name}) : ({quotient.name})"

    def identity(self):
        return (self.normal.identity(), self.quotient.identity())

    def multiply(self, a, b):
        n1, k1 = a
        n2, k2 = b
        return (self.normal.multiply(n1, self.action(k1, n2)), self.quotient.multiply(k1, k2))

    def inverse(self, a):
        n, k = a
        k_inv = self.quotient.inverse(k)
        return (self.action(k_inv, self.normal.inverse(n)), k_inv)

    def generators(self) -> List:
        gens = []
        for n in self.normal.generators():
            gens.append((n, self.quotient.identity()))
        for k in self.quotient.generators():
            gens.append((self.normal.identity(), k))
        return gens

    def encode(self, a) -> bytes:
        n, k = a
        return self.normal.encode(n) + b"#" + self.quotient.encode(k)

    def order(self) -> int:
        return self.normal.order() * self.quotient.order()

    def exponent_bound(self) -> Optional[int]:
        bn = self.normal.exponent_bound()
        bk = self.quotient.exponent_bound()
        if bn is None or bk is None:
            return self.order()
        # Element orders divide |N| * exponent(K) in a split extension; the
        # coarse bound lcm(bn, bk) * bn is always a safe multiple.
        return lcm(bn, bk) * bn

    def uniform_random_element(self, rng: np.random.Generator):
        return (self.normal.random_element(rng), self.quotient.random_element(rng))

    # -- convenience -----------------------------------------------------------
    def embed_normal(self, n) -> Tuple:
        """The element ``(n, 1)`` of the product."""
        return (n, self.quotient.identity())

    def embed_quotient(self, k) -> Tuple:
        """The element ``(1, k)`` of the product."""
        return (self.normal.identity(), k)

    def normal_part_generators(self) -> List:
        return [self.embed_normal(n) for n in self.normal.generators()]


# ---------------------------------------------------------------------------
# Named families
# ---------------------------------------------------------------------------


def wreath_product_z2(k: int) -> SemidirectProduct:
    """The wreath product ``Z_2^k wr Z_2`` of Rötteler--Beth.

    The base group is ``N = Z_2^k x Z_2^k`` (stored as a single tuple group of
    rank ``2k``) and the top ``Z_2`` swaps the two halves.  These are the
    groups for which Rötteler and Beth first exhibited an efficient quantum
    HSP algorithm; Theorem 13 subsumes them because ``N`` is an elementary
    Abelian normal 2-subgroup with cyclic factor group.
    """
    if k < 1:
        raise GroupError("wreath_product_z2 requires k >= 1")
    base = AbelianTupleGroup([2] * (2 * k), name=f"Z_2^{2 * k}")
    top = cyclic_group(2)

    def action(swap, vector):
        if swap[0] % 2 == 0:
            return vector
        return tuple(vector[k:]) + tuple(vector[:k])

    return SemidirectProduct(base, top, action, name=f"Z_2^{k} wr Z_2")


def dihedral_semidirect(n: int) -> SemidirectProduct:
    """The dihedral group ``D_n = Z_n : Z_2`` (inversion action)."""
    if n < 3:
        raise GroupError("dihedral_semidirect requires n >= 3")
    rotation = cyclic_group(n)
    flip = cyclic_group(2)

    def action(k, x):
        return x if k[0] % 2 == 0 else rotation.inverse(x)

    return SemidirectProduct(rotation, flip, action, name=f"D_{n}(semidirect)")


def metacyclic_group(p: int, q: int, multiplier: Optional[int] = None) -> SemidirectProduct:
    """The non-Abelian metacyclic group ``Z_p : Z_q`` (``q`` dividing ``p - 1``).

    The generator of ``Z_q`` acts on ``Z_p`` as multiplication by an element
    ``multiplier`` of multiplicative order ``q`` modulo ``p``.  These solvable
    groups are classic Theorem 8 test instances (their proper normal
    subgroups are the subgroups of ``Z_p`` plus the whole group).
    """
    if (p - 1) % q != 0:
        raise GroupError("metacyclic_group requires q | p - 1")
    if multiplier is None:
        from repro.linalg.modular import primitive_root

        root = primitive_root(p)
        multiplier = pow(root, (p - 1) // q, p)
    if multiplicative_order(multiplier, p) != q:
        raise GroupError("multiplier must have multiplicative order q modulo p")
    base = cyclic_group(p)
    top = cyclic_group(q)

    def action(k, x):
        factor = pow(multiplier, k[0], p)
        return (x[0] * factor % p,)

    return SemidirectProduct(base, top, action, name=f"Z_{p} : Z_{q}")


def generalized_dihedral(moduli: Sequence[int]) -> SemidirectProduct:
    """The generalised dihedral group ``A : Z_2`` with inversion action on ``A``."""
    base = AbelianTupleGroup(moduli)
    top = cyclic_group(2)

    def action(k, x):
        return x if k[0] % 2 == 0 else base.inverse(x)

    return SemidirectProduct(base, top, action, name=f"Dih({base.name})")
