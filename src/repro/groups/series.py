"""Derived series, solvability and composition factors.

The paper's headline group classes are characterised by classical structural
series:

* Theorem 8 applies to *solvable* groups (derived series reaching the
  trivial group) and permutation groups;
* the Beals--Babai machinery (Theorem 4) produces composition series with
  nice factor representations; for solvable groups the composition factors
  are cyclic of prime order.

This module gives the classical reference implementations used by tests and
by the instance builders: derived series by normal closure of commutators,
solvability testing, and (for enumerable groups) polycyclic generating
sequences whose factors are cyclic of prime order.  The quantum
implementations in :mod:`repro.core` follow the paper and only assume oracle
access; these classical versions provide the ground truth they are validated
against.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.groups.base import FiniteGroup, GroupError
from repro.groups.subgroup import (
    SubgroupView,
    commutator_subgroup_generators,
    generate_subgroup_elements,
    make_membership_tester,
)
from repro.linalg.modular import factorint

__all__ = [
    "derived_series",
    "is_solvable",
    "solvable_length",
    "polycyclic_series",
    "composition_factor_orders",
]


def derived_series(group: FiniteGroup, max_length: int = 64) -> List[List]:
    """The derived series ``G = G^(0) >= G^(1) >= ...`` as generator lists.

    The series stops when it stabilises (``G^(i+1) = G^(i)``) or reaches the
    trivial subgroup.  Each entry is a generating set of the corresponding
    derived subgroup; the first entry is the group's own generating set.
    """
    series: List[List] = [list(group.generators())]
    for _ in range(max_length):
        current = series[-1]
        if not current or all(group.is_identity(g) for g in current):
            break
        view = SubgroupView(group, current)
        derived = commutator_subgroup_generators(view, current)
        derived = [g for g in derived if not group.is_identity(g)]
        series.append(derived)
        if not derived:
            break
        if _same_subgroup(group, current, derived):
            break
    return series


def _same_subgroup(group: FiniteGroup, gens_a: Sequence, gens_b: Sequence) -> bool:
    """Whether two generating sets generate the same subgroup."""
    member_a = make_membership_tester(group, gens_a)
    member_b = make_membership_tester(group, gens_b)
    return all(member_a(g) for g in gens_b) and all(member_b(g) for g in gens_a)


def is_solvable(group: FiniteGroup) -> bool:
    """Whether the group is solvable (derived series reaches the identity)."""
    series = derived_series(group)
    last = series[-1]
    return not last or all(group.is_identity(g) for g in last)


def solvable_length(group: FiniteGroup) -> int:
    """Derived length of a solvable group.

    Raises :class:`GroupError` for non-solvable groups.
    """
    series = derived_series(group)
    last = series[-1]
    if last and not all(group.is_identity(g) for g in last):
        raise GroupError("group is not solvable")
    return len(series) - 1


def _derived_layer_elements(group: FiniteGroup, max_order: int) -> List[List]:
    """Element lists of the derived subgroups, outermost first, ending at {1}."""
    layers: List[List] = []
    for gens in derived_series(group):
        gens = [g for g in gens if not group.is_identity(g)]
        if gens:
            layers.append(generate_subgroup_elements(group, gens, limit=max_order))
        else:
            layers.append([group.identity()])
    if len(layers[-1]) > 1:
        raise GroupError("polycyclic series requires a solvable group")
    return layers


def polycyclic_series(group: FiniteGroup, max_order: int = 200_000) -> List[Tuple[object, int]]:
    """A polycyclic generating sequence for a small solvable group.

    Returns pairs ``(g_i, p_i)`` (outermost first) such that successively
    adjoining the ``g_i`` from the bottom of the list upwards refines the
    derived series into steps with cyclic factors of prime order ``p_i``.
    Consequently ``prod(p_i) == |G|``.  Implemented by enumeration (the group
    order must stay below ``max_order``).
    """
    layers = _derived_layer_elements(group, max_order)
    chain: List[Tuple[object, int]] = []
    for upper, lower in zip(layers[:-1], layers[1:]):
        layer_choices: List[object] = []
        layer_chain: List[Tuple[object, int]] = []
        current = set(lower)
        while len(current) < len(upper):
            candidate = next(x for x in upper if x not in current)
            # Smallest r >= 1 with candidate^r inside the current subgroup.
            power = candidate
            rel_order = 1
            while power not in current:
                power = group.multiply(power, candidate)
                rel_order += 1
            element = candidate
            for prime, multiplicity in sorted(factorint(rel_order).items()):
                for _ in range(multiplicity):
                    layer_chain.append((element, prime))
                    element = group.power(element, prime)
            layer_choices.append(candidate)
            current = set(
                generate_subgroup_elements(group, list(lower) + layer_choices, limit=max_order)
            )
        chain.extend(layer_chain)
    return chain


def composition_factor_orders(group: FiniteGroup, max_order: int = 200_000) -> List[int]:
    """Orders of the composition factors of a small solvable group.

    For a solvable group every composition factor is cyclic of prime order;
    the multiset of those primes is exactly the multiset of prime factors of
    ``|G|``, and is returned here layer by layer of the derived series
    (outermost first).
    """
    layers = _derived_layer_elements(group, max_order)
    primes: List[int] = []
    for upper, lower in zip(layers[:-1], layers[1:]):
        ratio = len(upper) // len(lower)
        for prime, multiplicity in sorted(factorint(ratio).items()):
            primes.extend([prime] * multiplicity)
    return primes
