"""Finite group substrate.

Concrete group families, the abstract :class:`~repro.groups.base.FiniteGroup`
interface they implement, and the classical structural algorithms (subgroup
closure, normal closure, derived series, transversals) that the paper's
quantum algorithms are layered on.
"""

from repro.groups.base import FiniteGroup, GroupError
from repro.groups.abelian import AbelianTupleGroup, cyclic_group, elementary_abelian_group
from repro.groups.engine import CayleyBackend, get_engine, maybe_engine
from repro.groups.perm import (
    PermutationGroup,
    SchreierSims,
    alternating_group,
    cyclic_permutation_group,
    dihedral_group,
    symmetric_group,
)
from repro.groups.matrix import GFMatrixGroup, affine_type_group, heisenberg_matrix_group
from repro.groups.extraspecial import HeisenbergGroup, extraspecial_group
from repro.groups.products import (
    DirectProduct,
    SemidirectProduct,
    dihedral_semidirect,
    generalized_dihedral,
    metacyclic_group,
    wreath_product_z2,
)
from repro.groups.quotient import QuotientGroup
from repro.groups.subgroup import (
    SubgroupView,
    commutator_subgroup_generators,
    generate_subgroup_elements,
    is_normal_subgroup,
    left_transversal,
    make_membership_tester,
    normal_closure,
    subgroup_order,
)
from repro.groups.series import (
    composition_factor_orders,
    derived_series,
    is_solvable,
    polycyclic_series,
    solvable_length,
)

__all__ = [
    "FiniteGroup",
    "GroupError",
    "CayleyBackend",
    "get_engine",
    "maybe_engine",
    "AbelianTupleGroup",
    "cyclic_group",
    "elementary_abelian_group",
    "PermutationGroup",
    "SchreierSims",
    "symmetric_group",
    "alternating_group",
    "cyclic_permutation_group",
    "dihedral_group",
    "GFMatrixGroup",
    "affine_type_group",
    "heisenberg_matrix_group",
    "HeisenbergGroup",
    "extraspecial_group",
    "DirectProduct",
    "SemidirectProduct",
    "wreath_product_z2",
    "dihedral_semidirect",
    "metacyclic_group",
    "generalized_dihedral",
    "QuotientGroup",
    "SubgroupView",
    "generate_subgroup_elements",
    "subgroup_order",
    "make_membership_tester",
    "normal_closure",
    "commutator_subgroup_generators",
    "is_normal_subgroup",
    "left_transversal",
    "derived_series",
    "is_solvable",
    "solvable_length",
    "polycyclic_series",
    "composition_factor_orders",
]
