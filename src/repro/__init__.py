"""repro — reproduction of Ivanyos, Magniez & Santha (2001).

*Efficient quantum algorithms for some instances of the non-Abelian hidden
subgroup problem* (SPAA 2001, arXiv:quant-ph/0102014).

Public API layout
-----------------
``repro.groups``
    Finite group substrate: permutation, Abelian, matrix, wreath,
    extraspecial and product groups, plus the classical structural
    algorithms (normal closures, derived series, transversals).
``repro.blackbox``
    The Babai--Szemerédi black-box group model: counted oracles, hiding
    functions and HSP instances.
``repro.quantum``
    Quantum simulation substrate: state vectors, QFTs, Fourier sampling,
    Shor order finding and the Watrous solvable-group primitives.
``repro.hsp``
    The Abelian HSP engine (Theorem 3), Cheung--Mosca decomposition
    (Theorem 1) and the baseline solvers (classical exhaustive,
    Ettinger--Høyer, Rötteler--Beth).
``repro.core``
    The paper's algorithms: constructive membership (Theorem 6), factor
    groups (Theorems 7 and 10), hidden normal subgroups (Theorem 8), small
    commutator subgroups (Theorem 11, Corollary 12), elementary Abelian
    normal 2-subgroups (Theorem 13), and the ``solve_hsp`` dispatcher.

Performance engine
------------------
The paper counts oracle queries; the simulation's wall-clock cost lives in
per-element Python group arithmetic.  ``repro.groups.engine`` provides a
vectorized Cayley engine (:class:`~repro.groups.engine.CayleyBackend`) that
interns elements to dense integer ids, memoizes products in a lazily filled
NumPy Cayley table (with a sparse fallback past a size guard), and exposes
batch operations (``mul_many``, ``inv_many``, ``conj_many``,
``orbit_closure``) plus memoized structure queries (commutator subgroups,
element orders, subgroup closures).  The hot paths — Fourier sampling,
coset enumeration, the Theorem 8/11 solvers — route through the engine and
the bulk oracle APIs (``BlackBoxGroup.multiply_many``,
``HidingOracle.evaluate_many``) when a usable dense encoding exists, and
fall back to the original per-element code otherwise.  Query accounting is
bulk-equivalent by construction: batch operations report exactly the totals
of the scalar loops they replace (``tests/test_groups_engine.py``), and
``benchmarks/bench_engine.py`` measures the resulting speedup (>= 3x on the
Fourier-sampling-dominated workloads).

Quick start
-----------
>>> import numpy as np
>>> from repro.blackbox import HSPInstance
>>> from repro.core import solve_hsp
>>> from repro.groups import extraspecial_group
>>> group = extraspecial_group(3)
>>> hidden = [((1,), (0,), 0)]
>>> instance = HSPInstance.from_subgroup(group, hidden)
>>> solution = solve_hsp(instance, rng=np.random.default_rng(0))
>>> instance.verify(solution.generators)
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
