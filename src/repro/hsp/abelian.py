"""The standard quantum algorithm for the Abelian hidden subgroup problem.

Theorem 3 of the paper: for an Abelian black-box group with unique encoding
the HSP is solvable in quantum polynomial time.  The algorithm repeats the
Fourier-sampling round (implemented in :mod:`repro.quantum.sampling`) to
collect uniformly random elements of the annihilator ``H^perp``; once the
collected samples generate ``H^perp`` the hidden subgroup is recovered as
``H = (H^perp)^perp`` by exact integer lattice arithmetic.

The stopping rule follows the standard analysis: each round that does not yet
generate ``H^perp`` has probability at least 1/2 of enlarging the generated
subgroup, so requiring a run of ``confidence`` consecutive non-enlarging
rounds after the last change gives failure probability at most
``2^{-confidence}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blackbox.oracle import HidingOracle, QueryCounter
from repro.groups.abelian import AbelianTupleGroup
from repro.linalg.zmodule import (
    annihilator,
    canonical_generators,
    subgroup_contains_many,
    subgroup_order,
)
from repro.obs import span as obs_span
from repro.quantum.sampling import AbelianHSPOracle, FourierSampler, TupleFunctionOracle

__all__ = ["AbelianHSPResult", "solve_abelian_hsp", "solve_hsp_in_abelian_group"]

Vector = Tuple[int, ...]


@dataclass
class AbelianHSPResult:
    """Outcome of an Abelian HSP run."""

    generators: List[Vector]
    moduli: Tuple[int, ...]
    samples: List[Vector] = field(default_factory=list)
    rounds: int = 0
    subgroup_order: int = 1
    query_report: Dict[str, int] = field(default_factory=dict)
    #: False when the stopping rule never fired — ``max_rounds`` ran out
    #: before ``confidence`` consecutive non-enlarging samples were seen.
    #: With an honest oracle this is a vanishing-probability event; under an
    #: installed noise channel it is the expected inconsistent-rows outcome
    #: and the solver reports it as ``status="no_convergence"``.
    converged: bool = True

    def __iter__(self):
        return iter(self.generators)


def solve_abelian_hsp(
    oracle: AbelianHSPOracle,
    sampler: Optional[FourierSampler] = None,
    confidence: int = 16,
    max_rounds: Optional[int] = None,
) -> AbelianHSPResult:
    """Solve the Abelian HSP defined by ``oracle`` by Fourier sampling.

    Parameters
    ----------
    oracle:
        The hiding oracle over ``Z_{s1} x ... x Z_{sr}``.
    sampler:
        The Fourier sampling backend; defaults to ``FourierSampler("auto")``.
    confidence:
        Number of consecutive rounds without growth of the sampled dual
        subgroup required before stopping (error probability ``<= 2^-confidence``).
    max_rounds:
        Hard cap on sampling rounds; defaults to
        ``4 * (log2 |A| + confidence)``.
    """
    sampler = sampler if sampler is not None else FourierSampler()
    module = oracle.module
    moduli = module.moduli
    if max_rounds is None:
        # bit_length instead of log2: group orders routinely exceed 2**64.
        max_rounds = 4 * (int(module.order).bit_length() + confidence)

    samples: List[Vector] = []
    dual_canonical: List[Vector] = []
    stable_rounds = 0
    rounds = 0
    # Samples are requested in blocks: a block of ``confidence - stable_rounds``
    # rounds is the smallest number of further samples after which the stopping
    # rule can possibly fire, so blocking never draws a round the scalar loop
    # would not have drawn — query totals are identical, but the sampler can
    # amortise its per-round cost.  Each sample updates the generated dual
    # subgroup incrementally: a membership test against the current canonical
    # generators replaces the full recomputation over all samples.
    with obs_span("abelian.fourier_sampling", confidence=confidence) as sampling_span:
        while rounds < max_rounds:
            block = max(1, min(confidence - stable_rounds, max_rounds - rounds))
            new_samples = sampler.sample(oracle, block)
            rounds += len(new_samples)
            # Membership of the remaining block is decided in one batched
            # lattice computation (one Smith form per current span); the scan
            # restarts from the sample after an enlargement, so the per-sample
            # decisions — and hence rounds and query totals — are identical
            # to the scalar-membership loop.
            idx = 0
            while idx < len(new_samples):
                pending = new_samples[idx:]
                if dual_canonical:
                    contained = subgroup_contains_many(dual_canonical, pending, moduli)
                else:
                    contained = [not any(v % m for v, m in zip(s, moduli)) for s in pending]
                enlarged_at = None
                for offset, (sample, inside) in enumerate(zip(pending, contained)):
                    samples.append(sample)
                    if inside:
                        stable_rounds += 1
                        continue
                    dual_canonical = canonical_generators(dual_canonical + [sample], moduli)
                    stable_rounds = 0
                    enlarged_at = offset
                    break
                if enlarged_at is None:
                    break
                idx += enlarged_at + 1
            if stable_rounds >= confidence:
                break
        sampling_span.add("rounds", rounds)

    with obs_span("abelian.reconstruction") as recon_span:
        hidden = annihilator(dual_canonical, moduli) if dual_canonical else list(
            annihilator([], moduli)
        )
        hidden = canonical_generators(hidden, moduli) if hidden else []
        order = subgroup_order(hidden, moduli) if hidden else 1
        recon_span.add("generators", len(hidden))
    return AbelianHSPResult(
        generators=hidden,
        moduli=moduli,
        samples=samples,
        rounds=rounds,
        subgroup_order=order,
        query_report=oracle.counter.snapshot(),
        converged=stable_rounds >= confidence,
    )


def solve_hsp_in_abelian_group(
    group: AbelianTupleGroup,
    oracle: HidingOracle,
    sampler: Optional[FourierSampler] = None,
    confidence: int = 16,
) -> AbelianHSPResult:
    """Solve the HSP in a concrete Abelian tuple group hidden by ``oracle``.

    This is the user-facing entry point for Theorem 3: the hiding oracle is
    re-wrapped as an :class:`AbelianHSPOracle`; if the instance declared its
    hidden subgroup (test/benchmark instances do) the declaration is passed
    through so the analytic backend can sample without enumerating the
    domain, exactly as a quantum computer would not have to.
    """
    declared = oracle.hidden_subgroup_generators

    def label(x: Vector):
        return oracle(x)

    tuple_oracle = TupleFunctionOracle(
        group.moduli,
        label,
        declared_kernel=declared,
        counter=oracle.counter,
        description=f"HSP in {group.name}",
    )
    return solve_abelian_hsp(tuple_oracle, sampler=sampler, confidence=confidence)
