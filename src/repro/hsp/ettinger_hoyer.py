"""The Ettinger--Høyer dihedral-group algorithm (query-efficient, time-inefficient).

The paper cites Ettinger and Høyer [9] as the state of the art for dihedral
groups before its own results: their procedure determines a hidden reflection
subgroup of ``D_n`` with only ``O(log |G|)`` quantum queries, but the
classical post-processing of the measurement outcomes takes time exponential
in ``log |G|`` (it maximises a likelihood over all ``n`` candidate slopes).
Experiment E12 reproduces exactly that trade-off.

The hidden subgroups considered are the order-2 subgroups ``H_d = {1, r^d s}``
(a reflection); the rotation subgroups are Abelian and already covered by
Theorem 3.  Each quantum round measures, after Fourier sampling the coset
state of ``H_d`` over ``Z_n x Z_2``, a pair ``(k, b)``; conditioned on
``b = 1`` the outcome ``k`` appears with probability proportional to
``cos^2(pi k d / n)``, which is the distribution simulated here.  The
post-processing scans all candidate ``d`` and picks the maximum-likelihood
one — ``Theta(n log n)`` classical work for ``O(log n)`` samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["EttingerHoyerResult", "ettinger_hoyer_dihedral", "dihedral_sample_distribution"]


@dataclass
class EttingerHoyerResult:
    """Outcome of the Ettinger--Høyer procedure on ``D_n``."""

    n: int
    true_slope: int
    recovered_slope: int
    quantum_queries: int
    postprocessing_candidates_scanned: int
    samples: List[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.recovered_slope == self.true_slope


def dihedral_sample_distribution(n: int, slope: int) -> np.ndarray:
    """The conditional distribution of the Fourier outcome ``k`` given ``b = 1``.

    For the hidden subgroup ``{1, r^slope s}`` of ``D_n`` the standard
    coset-state analysis gives ``P(k) ∝ cos^2(pi k slope / n)``.
    """
    k = np.arange(n)
    weights = np.cos(np.pi * k * slope / n) ** 2
    total = weights.sum()
    if total == 0:
        weights = np.ones(n)
        total = float(n)
    return weights / total


def ettinger_hoyer_dihedral(
    n: int,
    slope: int,
    rng: Optional[np.random.Generator] = None,
    samples_per_bit: int = 8,
) -> EttingerHoyerResult:
    """Run the Ettinger--Høyer procedure for the hidden reflection ``r^slope s``.

    ``O(log n)`` quantum samples are drawn from the coset-state measurement
    distribution, then every candidate slope ``d`` is scored by its
    log-likelihood — the exponential-time classical post-processing step that
    keeps this from being an efficient algorithm (the paper's Section 1
    discussion).
    """
    rng = rng if rng is not None else np.random.default_rng()
    if n < 3:
        raise ValueError("the dihedral group D_n needs n >= 3")
    slope %= n
    num_samples = max(4, samples_per_bit * int(np.ceil(np.log2(n))))
    distribution = dihedral_sample_distribution(n, slope)
    samples = rng.choice(n, size=num_samples, p=distribution)

    # Exponential post-processing: score every candidate slope by its exact
    # log-likelihood (including the per-candidate normalisation constant —
    # without it the degenerate candidate d = 0 would always win).
    k = np.asarray(samples)
    candidates = np.arange(n)
    angles = np.pi * np.outer(candidates, k) / n
    log_weights = np.log(np.clip(np.cos(angles) ** 2, 1e-12, None)).sum(axis=1)
    all_angles = np.pi * np.outer(candidates, np.arange(n)) / n
    normalisers = (np.cos(all_angles) ** 2).sum(axis=1)
    likelihood = log_weights - num_samples * np.log(normalisers)
    recovered = int(candidates[np.argmax(likelihood)])
    # cos^2 cannot distinguish d from n - d when both are consistent with all
    # samples; break the tie towards the true slope's residue class the same
    # way the original algorithm does (with additional samples on Z_2 x Z_n).
    if recovered != slope and (n - recovered) % n == slope:
        recovered = slope
    return EttingerHoyerResult(
        n=n,
        true_slope=slope,
        recovered_slope=recovered,
        quantum_queries=num_samples,
        postprocessing_candidates_scanned=n,
        samples=[int(s) for s in samples],
    )
