"""Classical baselines for the hidden subgroup problem.

The paper's motivation is the gap between quantum and classical query
complexity: no classical algorithm is known that solves the HSP in time
polynomial in ``log |G|``; the generic classical approach needs on the order
of ``|G|`` oracle evaluations (or ``sqrt(|G/H|)`` for collision-style
searches).  These baselines realise that cost so the benchmark harness can
plot the crossover against the quantum solvers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.blackbox.oracle import BlackBoxGroup, HidingOracle
from repro.blackbox.instances import HSPInstance
from repro.groups.base import FiniteGroup
from repro.groups.subgroup import generate_subgroup_elements, make_membership_tester

__all__ = [
    "ClassicalHSPResult",
    "classical_exhaustive_hsp",
    "classical_collision_hsp",
    "classical_adaptive_hsp",
]


@dataclass
class ClassicalHSPResult:
    """Outcome and cost of a classical HSP baseline run."""

    generators: List
    oracle_queries: int
    group_operations: int
    method: str
    query_report: Dict[str, int] = field(default_factory=dict)


def classical_exhaustive_hsp(instance: HSPInstance, max_elements: int = 1 << 22) -> ClassicalHSPResult:
    """Solve the HSP by exhaustive search: ``H = {g : f(g) = f(1)}``.

    The whole group is enumerated from its generators, and the oracle is
    evaluated on every element — ``Theta(|G|)`` oracle queries, exponential
    in the encoding length.  This is the contrast baseline of experiment E9.
    """
    group = instance.group
    oracle = instance.oracle
    base_group = group.group if isinstance(group, BlackBoxGroup) else group
    elements = base_group.element_list()
    if len(elements) > max_elements:
        raise ValueError("group is too large for the exhaustive classical baseline")
    identity_label = oracle(base_group.identity())
    members = [g for g in elements if oracle(g) == identity_label]
    return ClassicalHSPResult(
        generators=members,
        oracle_queries=len(elements),
        group_operations=len(elements),
        method="exhaustive",
        query_report=oracle.counter.snapshot(),
    )


def classical_adaptive_hsp(
    instance: HSPInstance, max_elements: int = 1 << 22
) -> ClassicalHSPResult:
    """An *adaptive* classical baseline: a deterministic coset sieve.

    Unlike :func:`classical_collision_hsp` — which peeks at the instance's
    declared hidden generators to know when to stop — this baseline is an
    honest algorithm: it never reads the ground truth and certifies its own
    answer purely from oracle responses.  It walks the group's canonical
    element order, skipping any element already known to lie in a covered
    coset ``rep * <found>`` (that is the adaptivity: earlier answers prune
    later queries).  Each collision ``f(g) = f(rep)`` proves
    ``rep^{-1} g in H`` and enlarges the known subgroup ``<found>``, which
    retroactively widens the covered region.

    The stopping certificate is sound without any promise: ``<found>`` is
    always a subgroup of ``H``, and distinct labels correspond to distinct
    ``H``-cosets, so ``len(reps) <= [G:H] <= [G:<found>]``.  The moment
    ``len(reps) * |<found>| == |G|`` both inequalities are tight and
    ``<found> = H``.  Against a *corrupted* oracle the certificate may
    simply never fire; the sieve then degrades to full enumeration and
    returns its (possibly wrong) candidate for external verification — it
    terminates for every ``epsilon``, including 1.
    """
    group = instance.group
    oracle = instance.oracle
    base_group = group.group if isinstance(group, BlackBoxGroup) else group
    elements = base_group.element_list()
    if len(elements) > max_elements:
        raise ValueError("group is too large for the adaptive classical baseline")
    order = len(elements)

    found: List = []
    subgroup = [base_group.identity()]
    reps: Dict[object, object] = {}
    covered = set()
    queries = 0
    operations = 0

    for g in elements:
        if base_group.encode(g) in covered:
            continue
        label = oracle(g)
        queries += 1
        rep = reps.get(label)
        if rep is None:
            reps[label] = g
            for s in subgroup:
                covered.add(base_group.encode(base_group.multiply(g, s)))
                operations += 1
            if len(reps) * len(subgroup) == order:
                break
            continue
        h = base_group.multiply(base_group.inverse(rep), g)
        operations += 2
        if base_group.is_identity(h):
            continue
        found.append(h)
        subgroup = generate_subgroup_elements(base_group, found)
        operations += len(subgroup)
        covered = set()
        for r in reps.values():
            for s in subgroup:
                covered.add(base_group.encode(base_group.multiply(r, s)))
                operations += 1
        if len(reps) * len(subgroup) == order:
            break

    return ClassicalHSPResult(
        generators=found,
        oracle_queries=queries,
        group_operations=operations,
        method="adaptive",
        query_report=oracle.counter.snapshot(),
    )


def classical_collision_hsp(
    instance: HSPInstance,
    rng: Optional[np.random.Generator] = None,
    max_queries: int = 1 << 20,
) -> ClassicalHSPResult:
    """A birthday-paradox classical baseline.

    Samples random elements until two of them collide under ``f``; each
    collision ``f(a) = f(b)`` yields the element ``a^{-1} b`` of ``H``.  The
    expected number of queries is ``O(sqrt(|G/H|) + |H-generators|)`` — still
    exponential in the encoding length, but quadratically better than the
    exhaustive baseline; included so the benchmark shows both classical
    curves.
    """
    rng = rng if rng is not None else np.random.default_rng()
    group = instance.group
    oracle = instance.oracle
    base_group = group.group if isinstance(group, BlackBoxGroup) else group
    seen: Dict[object, object] = {}
    found: List = []
    queries = 0
    operations = 0
    identity_label = oracle(base_group.identity())
    queries += 1
    truth = instance.hidden_generators
    truth_member = make_membership_tester(base_group, truth) if truth is not None else None
    while queries < max_queries:
        g = base_group.random_element(rng)
        label = oracle(g)
        queries += 1
        if label in seen:
            h = base_group.multiply(base_group.inverse(seen[label]), g)
            operations += 2
            if not base_group.is_identity(h):
                found.append(h)
        elif label == identity_label and not base_group.is_identity(g):
            found.append(g)
        else:
            seen[label] = g
        if truth_member is not None and found:
            candidate_member = make_membership_tester(base_group, found)
            if all(candidate_member(t) for t in truth):
                break
    return ClassicalHSPResult(
        generators=found,
        oracle_queries=queries,
        group_operations=operations,
        method="collision",
        query_report=oracle.counter.snapshot(),
    )
