"""The Rötteler--Beth algorithm for the wreath products ``Z_2^k wr Z_2``.

Rötteler and Beth [24] gave the first polynomial-time quantum HSP algorithm
for a family of non-Abelian groups: the wreath products
``Z_2^k wr Z_2 = (Z_2^k x Z_2^k) : Z_2``.  The paper's Theorem 13 strictly
generalises that result (any elementary Abelian normal 2-subgroup with
cyclic factor group); experiment E10 runs both solvers on the same wreath
instances to confirm they agree and to compare their costs.

The implementation below is the wreath-specialised algorithm: the hidden
subgroup is determined by (a) a Simon-style run over the Abelian base group
``N = Z_2^{2k}`` to find ``H ∩ N`` and (b) a second Simon-style run over
``Z_2 x N`` to decide whether ``H`` contains an element of the non-trivial
coset ``sN`` (``s`` the coordinate swap) and to produce one if so — all
post-processing is GF(2) linear algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blackbox.instances import HSPInstance
from repro.blackbox.oracle import BlackBoxGroup
from repro.quantum.sampling import FourierSampler, TupleFunctionOracle
from repro.hsp.abelian import solve_abelian_hsp

__all__ = ["RottelerBethResult", "rotteler_beth_wreath"]


@dataclass
class RottelerBethResult:
    """Outcome of the wreath-product special-case solver."""

    generators: List
    base_intersection_generators: List
    swap_coset_generator: Optional[object]
    query_report: Dict[str, int] = field(default_factory=dict)


def rotteler_beth_wreath(
    instance: HSPInstance,
    sampler: Optional[FourierSampler] = None,
) -> RottelerBethResult:
    """Solve the HSP in ``Z_2^k wr Z_2`` with the Rötteler--Beth approach.

    The instance's group must be the semidirect-product wreath group produced
    by :func:`repro.groups.products.wreath_product_z2` (elements are pairs
    ``(vector, swap_bit)``).
    """
    sampler = sampler if sampler is not None else FourierSampler()
    group = instance.group
    base_group = group.group if isinstance(group, BlackBoxGroup) else group
    oracle = instance.oracle

    # Recover the base-group rank from the identity element's shape.
    identity_vector, identity_bit = base_group.identity()
    m = len(identity_vector)

    def embed(vector: Sequence[int], bit: int = 0):
        return (tuple(int(v) % 2 for v in vector), (bit % 2,) + identity_bit[1:] if len(identity_bit) > 1 else (bit % 2,))

    # -- step 1: H ∩ N by a Simon-style run over N = Z_2^m ---------------------
    base_oracle = TupleFunctionOracle(
        [2] * m,
        lambda alpha: oracle(embed(alpha, 0)),
        counter=oracle.counter,
        description="Rötteler-Beth base restriction",
    )
    base_result = solve_abelian_hsp(base_oracle, sampler=sampler)
    base_generators = [embed(alpha, 0) for alpha in base_result.generators]

    # -- step 2: does H meet the swap coset sN? --------------------------------
    swap = embed([0] * m, 1)
    extended_oracle = TupleFunctionOracle(
        [2] * (m + 1),
        lambda alpha: oracle(
            base_group.multiply(embed(alpha[1:], 0), swap if alpha[0] % 2 else base_group.identity())
        ),
        counter=oracle.counter,
        description="Rötteler-Beth swap-coset run",
    )
    extended_result = solve_abelian_hsp(extended_oracle, sampler=sampler)
    swap_generator = None
    for generator in extended_result.generators:
        if generator[0] % 2 == 1:
            u = embed(generator[1:], 0)
            candidate = base_group.multiply(base_group.inverse(u), swap)
            swap_generator = candidate
            break

    generators = list(base_generators)
    if swap_generator is not None:
        generators.append(swap_generator)
    if not generators:
        generators = []
    return RottelerBethResult(
        generators=generators,
        base_intersection_generators=base_generators,
        swap_coset_generator=swap_generator,
        query_report=oracle.counter.snapshot(),
    )
