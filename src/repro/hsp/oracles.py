"""Power-product oracles: the Abelian HSP instances built inside the paper's algorithms.

Every non-Abelian algorithm in the paper reduces its quantum work to Abelian
HSP instances of a specific shape: pick commuting elements (or elements that
commute *modulo* a normal subgroup), form the homomorphism

``phi(a_1, ..., a_r) = h_1^{a_1} ... h_r^{a_r}``      (Theorems 1, 6)
``phi(a_1, ..., a_r, a) = f(h_1^{a_1} ... h_r^{a_r} g^{-a})``  (Theorems 6, 7)
``phi(i, a_1, ..., a_m) = f(n_1^{a_1} ... n_m^{a_m} z^i)``      (Theorem 13)

and find its kernel by Fourier sampling.  This module builds those oracles.

Kernel declaration (simulation honesty): the analytic sampling backend needs
the coset structure of the oracle.  For a *pure* power product into an
Abelian tuple group the kernel is a lattice kernel and is declared
explicitly (polynomial time, no cheating — it is classical linear algebra).
For oracles that involve the hiding function ``f`` the kernel is *not*
declared; the sampler falls back to domain enumeration (the statevector-cost
simulation of one superposition query), bounded by ``max_enumeration``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.blackbox.oracle import HidingOracle, QueryCounter
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.base import FiniteGroup
from repro.linalg.hermite import integer_kernel
from repro.linalg.zmodule import canonical_generators
from repro.quantum.sampling import TupleFunctionOracle

__all__ = [
    "power_product_oracle",
    "hidden_power_product_oracle",
    "linear_kernel_of_power_product",
]

Vector = Tuple[int, ...]


def linear_kernel_of_power_product(
    group: AbelianTupleGroup,
    elements: Sequence,
    moduli: Sequence[int],
) -> List[Vector]:
    """Kernel of ``alpha -> sum_i alpha_i * x_i`` for elements of an Abelian tuple group.

    Pure linear algebra over the integers: ``alpha`` is in the kernel iff
    ``sum_i alpha_i x_i = 0`` in ``Z_{t1} x ... x Z_{tk}``, i.e. iff the
    stacked system with the relations ``t_j e_j`` has an integer solution.
    """
    ambient = group.moduli
    r = len(elements)
    k = len(ambient)
    # Columns: one per alpha_i, then one per ambient relation.
    rows = [
        [int(elements[i][row]) for i in range(r)] + [int(ambient[row]) if col == row else 0 for col in range(k)]
        for row in range(k)
    ]
    kernel = integer_kernel(rows)
    projected = [vec[:r] for vec in kernel]
    return canonical_generators(projected, moduli)


def power_product_oracle(
    group: FiniteGroup,
    elements: Sequence,
    orders: Sequence[int],
    counter: Optional[QueryCounter] = None,
    description: str = "power product",
    max_enumeration: int = 1 << 18,
) -> TupleFunctionOracle:
    """The oracle ``alpha -> h_1^{a_1} ... h_r^{a_r}`` over ``Z_{s1} x ... x Z_{sr}``.

    The elements must commute pairwise (the constructive membership setting
    of Theorem 6); ``orders`` are their element orders, which define the
    domain moduli.  When the ambient group is an Abelian tuple group the
    kernel is declared via exact linear algebra so the analytic sampling
    backend runs in polynomial time.
    """
    elements = list(elements)
    orders = [int(s) for s in orders]

    def label(alpha: Vector):
        product = group.identity()
        for element, exponent in zip(elements, alpha):
            product = group.multiply(product, group.power(element, int(exponent)))
        return group.encode(product)

    declared = None
    if isinstance(group, AbelianTupleGroup):
        declared = linear_kernel_of_power_product(group, elements, orders)
    return TupleFunctionOracle(
        orders,
        label,
        declared_kernel=declared,
        counter=counter,
        description=description,
        max_enumeration=max_enumeration,
    )


def hidden_power_product_oracle(
    group: FiniteGroup,
    hiding: HidingOracle,
    elements: Sequence,
    orders: Sequence[int],
    counter: Optional[QueryCounter] = None,
    description: str = "power product mod hidden subgroup",
    max_enumeration: int = 1 << 18,
) -> TupleFunctionOracle:
    """The oracle ``alpha -> f(h_1^{a_1} ... h_r^{a_r})`` (Theorems 7, 11, 13).

    The elements must commute *modulo the hidden subgroup* of ``f`` (e.g.
    because the factor group is Abelian); the hidden subgroup of this oracle
    is then the set of exponent tuples whose power product lands inside the
    subgroup hidden by ``f``.
    """
    elements = list(elements)
    orders = [int(s) for s in orders]

    def label(alpha: Vector):
        product = group.identity()
        for element, exponent in zip(elements, alpha):
            product = group.multiply(product, group.power(element, int(exponent)))
        return hiding(product)

    return TupleFunctionOracle(
        orders,
        label,
        declared_kernel=None,
        counter=counter if counter is not None else hiding.counter,
        description=description,
        max_enumeration=max_enumeration,
    )
