"""The Abelian hidden subgroup engine and the baseline solvers.

Everything the paper takes as known technology lives here:

``abelian``
    the standard Fourier-sampling solver for the Abelian HSP (Theorem 3,
    Mosca / Brassard--Høyer / Jozsa) with exact lattice reconstruction;
``decomposition``
    the Cheung--Mosca decomposition of Abelian black-box groups into cyclic
    factors (Theorem 1);
``oracles``
    power-product oracles: the Abelian HSP instances that the paper's
    algorithms build on the fly (Theorems 6, 7, 10, 11, 13);
``baseline_classical``
    the exhaustive classical solver (exponential in ``log |G|``) used as the
    contrast baseline in the experiments;
``ettinger_hoyer``
    the dihedral-group sampler of Ettinger--Høyer: ``O(log |G|)`` quantum
    queries but exponential classical post-processing, reproduced to
    illustrate why the paper does not count it as an efficient algorithm;
``rotteler_beth``
    the wreath-product algorithm of Rötteler--Beth, the special case of
    Theorem 13 that predates the paper.
"""

from repro.hsp.abelian import AbelianHSPResult, solve_abelian_hsp, solve_hsp_in_abelian_group
from repro.hsp.decomposition import decompose_abelian_group
from repro.hsp.oracles import power_product_oracle, hidden_power_product_oracle
from repro.hsp.baseline_classical import classical_exhaustive_hsp
from repro.hsp.ettinger_hoyer import ettinger_hoyer_dihedral
from repro.hsp.rotteler_beth import rotteler_beth_wreath

__all__ = [
    "AbelianHSPResult",
    "solve_abelian_hsp",
    "solve_hsp_in_abelian_group",
    "decompose_abelian_group",
    "power_product_oracle",
    "hidden_power_product_oracle",
    "classical_exhaustive_hsp",
    "ettinger_hoyer_dihedral",
    "rotteler_beth_wreath",
]
