"""The black-box group model of Babai--Szemerédi, in the quantum setting.

The paper works throughout with *black-box groups*: group elements are
encoded by bit strings of a fixed length, the group operations are performed
by oracles ``U_G : |g>|h> -> |g>|gh>`` and ``U_G^{-1}``, and a hidden
subgroup is specified by an oracle ``f`` that is constant on left cosets and
distinct across cosets.

This package provides the classical counterpart of that interface:

``BlackBoxGroup``
    wraps any concrete :class:`~repro.groups.base.FiniteGroup` behind the
    oracle interface and counts every oracle use (multiplications,
    inversions, identity tests);
``HidingOracle``
    wraps a coset-labelling function with its own query counter;
``instances``
    builders that construct hiding oracles from explicitly known subgroups
    (for tests and benchmarks) while keeping the known subgroup out of the
    solvers' reach;
``noise``
    declarative oracle/sampler corruption channels (:class:`NoiseSpec`) —
    the single place where the paper's perfect-oracle assumption is
    relaxed.
"""

from repro.blackbox.oracle import BlackBoxGroup, HidingOracle, QueryCounter
from repro.blackbox.instances import (
    HSPInstance,
    hiding_oracle_from_subgroup,
    random_abelian_hsp_instance,
    subgroup_coset_label,
)
from repro.blackbox.noise import NoiseSpec, install_noise

__all__ = [
    "QueryCounter",
    "BlackBoxGroup",
    "HidingOracle",
    "HSPInstance",
    "NoiseSpec",
    "hiding_oracle_from_subgroup",
    "install_noise",
    "subgroup_coset_label",
    "random_abelian_hsp_instance",
]
