"""Declarative oracle/sampler noise channels.

The paper's guarantees assume a *perfect* hiding oracle; this module is the
single place where that assumption is relaxed.  A :class:`NoiseSpec` is a
declarative, JSON-round-trippable description of oracle corruption that
rides in a sweep's grid (the reserved ``noise`` axis) and in
``solver_options`` — the spec string is what journals, queue task files and
BENCH rows record, so distributed workers and ``--resume`` pin the exact
channel.

Two channels are implemented:

``oracle-flip(epsilon)``
    Each *oracle answer* is replaced, with probability ``epsilon``, by the
    true label of a uniformly random group element — i.e. a uniformly
    random coset label (cosets are equinumerous, so a uniform element maps
    to a uniform coset).  Corruption is keyed on the queried element (a
    keyed BLAKE2b hash of its canonical encoding, the key derived from the
    run's SeedSequence), so a given element's corrupted answer is the same
    no matter how often, in what order, through which batch API or on which
    worker it is queried — the byte-identity contract of the experiment
    harness survives noise.

``sample-depolarise(epsilon)``
    Each *Fourier sample* is replaced, with probability ``epsilon``, by a
    uniformly random element of the full dual group.  The channel owns a
    dedicated generator derived from the run's SeedSequence — the sampler's
    main stream is never touched, so an installed-but-zero channel (and the
    uninstalled case) produce byte-identical rows — and corruption is drawn
    in the parent in the same serial order as the sampling randomness, so
    sharded requests corrupt identically to unsharded ones.

Both channels sit *below* the query counters: corruption changes answers,
never accounting.  Verification of solver output against the ground truth
(:meth:`repro.blackbox.instances.HSPInstance.verify`) uses concrete group
arithmetic, not the oracle, and therefore always sees the uncorrupted
subgroup.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.obs import count as obs_count
from repro.obs import span as obs_span

__all__ = [
    "NOISE_KINDS",
    "NoiseSpec",
    "OracleFlipChannel",
    "SampleDepolariseChannel",
    "install_noise",
]

#: The recognised channel kinds, in documentation order.
NOISE_KINDS = ("oracle-flip", "sample-depolarise")

#: Domain-separation tag mixed into the run seed when deriving channel
#: randomness (``int.from_bytes(b"noise", "big")``): the channels draw from
#: their own SeedSequence stream, never from the run's main generator.
_NOISE_TAG = int.from_bytes(b"noise", "big")

_SPEC_PATTERN = re.compile(r"^\s*([a-z-]+)\s*\(\s*([0-9.eE+-]+)\s*\)\s*$")


@dataclass(frozen=True)
class NoiseSpec:
    """A declarative noise channel: ``kind`` plus corruption rate ``epsilon``.

    The canonical text form is ``"<kind>(<epsilon>)"`` (e.g.
    ``"oracle-flip(0.25)"``); ``"none"`` parses to ``None`` — no channel.
    """

    kind: str
    epsilon: float

    def __post_init__(self):
        if self.kind not in NOISE_KINDS:
            raise ValueError(
                f"unknown noise kind {self.kind!r}; known kinds: {', '.join(NOISE_KINDS)}"
            )
        if not 0.0 <= float(self.epsilon) <= 1.0:
            raise ValueError(f"noise epsilon must lie in [0, 1], got {self.epsilon}")

    @classmethod
    def parse(cls, text: str) -> Optional["NoiseSpec"]:
        """Parse a spec string; ``"none"`` (or empty) means no noise."""
        text = str(text).strip()
        if text in ("", "none"):
            return None
        match = _SPEC_PATTERN.match(text)
        if match is None:
            raise ValueError(
                f"unparseable noise spec {text!r}; expected 'none' or "
                f"'<kind>(<epsilon>)' with kind in {', '.join(NOISE_KINDS)}"
            )
        return cls(kind=match.group(1), epsilon=float(match.group(2)))

    @classmethod
    def try_parse(cls, text: str) -> Optional["NoiseSpec"]:
        """:meth:`parse` that returns ``None`` instead of raising.

        Used by the analysis layer to recognise noise-spec strings on a grid
        axis without treating every other string axis value as noise.
        """
        try:
            return cls.parse(text)
        except (ValueError, TypeError):
            return None

    def to_text(self) -> str:
        """The canonical spec string (round-trips through :meth:`parse`)."""
        return f"{self.kind}({self.epsilon:g})"

    def to_json_dict(self) -> Mapping[str, object]:
        return {"kind": self.kind, "epsilon": float(self.epsilon)}

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "NoiseSpec":
        return cls(kind=str(data["kind"]), epsilon=float(data["epsilon"]))


def _channel_seed_bytes(run_seed: int, stream: int) -> bytes:
    """32 deterministic key bytes for channel ``stream`` of a run."""
    sequence = np.random.SeedSequence([int(run_seed), _NOISE_TAG, int(stream)])
    return sequence.generate_state(4, np.uint64).tobytes()


class OracleFlipChannel:
    """Element-keyed oracle corruption: flip each answer with probability ε.

    ``replacement(element)`` returns the group element whose true label
    should be answered instead, or ``None`` for an honest answer.  The
    decision and the replacement are a pure function of ``(key, element)``
    — a keyed BLAKE2b digest of the element's canonical encoding supplies
    both the flip coin and the seed of the replacement draw — so every
    query path (scalar, batch, dense-id, fresh views, any worker) corrupts
    identically.
    """

    def __init__(self, epsilon: float, group, run_seed: int):
        self.epsilon = float(epsilon)
        self._group = group
        self._key = _channel_seed_bytes(run_seed, 0)
        self.flips = 0

    def replacement(self, element):
        digest = hashlib.blake2b(
            self._group.encode(element), key=self._key, digest_size=16
        ).digest()
        coin = int.from_bytes(digest[:8], "big") / float(1 << 64)
        if coin >= self.epsilon:
            return None
        self.flips += 1
        obs_count("noise.flips")
        replacement_rng = np.random.default_rng(int.from_bytes(digest[8:], "big"))
        return self._group.random_element(replacement_rng)


class SampleDepolariseChannel:
    """Fourier-sample corruption: replace each sample with a uniform dual label.

    Owns its generator (derived from the run's SeedSequence, stream 1); the
    sampler's main stream is untouched, and corruption is applied in the
    parent after the batch is produced — the same serial order whether the
    batch was sharded or not.
    """

    def __init__(self, epsilon: float, run_seed: int):
        self.epsilon = float(epsilon)
        self.rng = np.random.default_rng(
            np.random.SeedSequence([int(run_seed), _NOISE_TAG, 1])
        )
        self.flips = 0

    def corrupt(
        self, samples: List[Tuple[int, ...]], moduli: Sequence[int]
    ) -> List[Tuple[int, ...]]:
        count = len(samples)
        with obs_span("noise.depolarise", samples=count, epsilon=self.epsilon) as span:
            flips = self.rng.random(count) < self.epsilon
            flipped = [i for i, flip in enumerate(flips.tolist()) if flip]
            span.add("flips", len(flipped))
            if not flipped:
                return samples
            self.flips += len(flipped)
            obs_count("noise.flips", len(flipped))
            replacements = np.empty((len(flipped), len(moduli)), dtype=np.int64)
            for j, modulus in enumerate(moduli):
                replacements[:, j] = self.rng.integers(
                    0, int(modulus), size=len(flipped), dtype=np.int64
                )
            corrupted = list(samples)
            for row, i in enumerate(flipped):
                corrupted[i] = tuple(int(v) for v in replacements[row])
            return corrupted


def install_noise(spec: NoiseSpec, instance, sampler, run_seed: int) -> None:
    """Attach the channel ``spec`` describes to ``instance``/``sampler``.

    ``oracle-flip`` wraps the instance's hiding oracle below its cache and
    counter (:meth:`repro.blackbox.oracle.HidingOracle.apply_noise`);
    ``sample-depolarise`` attaches to the Fourier sampler.  A zero-rate spec
    installs nothing at all, which makes the ε=0 ⇔ no-noise byte-identity
    structural rather than statistical.
    """
    if spec.epsilon <= 0.0:
        return
    if spec.kind == "oracle-flip":
        from repro.blackbox.oracle import BlackBoxGroup

        group = instance.group
        base = group.group if isinstance(group, BlackBoxGroup) else group
        instance.oracle.apply_noise(OracleFlipChannel(spec.epsilon, base, run_seed))
    elif spec.kind == "sample-depolarise":
        sampler.attach_noise(SampleDepolariseChannel(spec.epsilon, run_seed))
    else:  # pragma: no cover - NoiseSpec validation makes this unreachable
        raise ValueError(f"unknown noise kind {spec.kind!r}")
