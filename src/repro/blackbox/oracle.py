"""Oracle wrappers with query accounting.

Complexity statements in the paper are phrased in terms of oracle uses:
multiplications performed by the group oracle ``U_G`` and evaluations of the
hiding function ``f``.  Wrapping both behind counting proxies makes the
benchmark harness report query counts that are independent of how the
underlying simulation chooses to realise the quantum subroutines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.groups.base import FiniteGroup

__all__ = ["QueryCounter", "BlackBoxGroup", "HidingOracle"]


@dataclass
class QueryCounter:
    """Mutable counters for oracle usage.

    ``quantum_queries`` counts *superposition* queries (one per Fourier
    sampling round, regardless of how expensive it is to simulate them
    classically); ``classical_queries`` counts ordinary evaluations.
    """

    classical_queries: int = 0
    quantum_queries: int = 0
    group_multiplications: int = 0
    group_inversions: int = 0
    identity_tests: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.extra[key] = self.extra.get(key, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        data = {
            "classical_queries": self.classical_queries,
            "quantum_queries": self.quantum_queries,
            "group_multiplications": self.group_multiplications,
            "group_inversions": self.group_inversions,
            "identity_tests": self.identity_tests,
        }
        data.update(self.extra)
        return data

    def reset(self) -> None:
        self.classical_queries = 0
        self.quantum_queries = 0
        self.group_multiplications = 0
        self.group_inversions = 0
        self.identity_tests = 0
        self.extra.clear()

    def __add__(self, other: "QueryCounter") -> "QueryCounter":
        merged = QueryCounter(
            classical_queries=self.classical_queries + other.classical_queries,
            quantum_queries=self.quantum_queries + other.quantum_queries,
            group_multiplications=self.group_multiplications + other.group_multiplications,
            group_inversions=self.group_inversions + other.group_inversions,
            identity_tests=self.identity_tests + other.identity_tests,
        )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        return merged


class BlackBoxGroup(FiniteGroup):
    """A concrete group seen only through the Babai--Szemerédi oracle interface.

    Every multiplication, inversion and identity test is counted.  The
    wrapped group's element encoding is exposed through :meth:`encode`, so
    callers can treat elements as opaque strings exactly as the model
    prescribes.  The wrapper is itself a :class:`FiniteGroup`, which lets the
    whole algorithm stack run unchanged over counted or uncounted groups.
    """

    def __init__(self, group: FiniteGroup, counter: Optional[QueryCounter] = None, name: Optional[str] = None):
        self.group = group
        self.counter = counter if counter is not None else QueryCounter()
        self.name = name or f"BlackBox({group.name})"

    # -- oracle operations -------------------------------------------------------
    def identity(self):
        return self.group.identity()

    def multiply(self, a, b):
        self.counter.group_multiplications += 1
        return self.group.multiply(a, b)

    def inverse(self, a):
        self.counter.group_inversions += 1
        return self.group.inverse(a)

    def equal(self, a, b) -> bool:
        self.counter.identity_tests += 1
        return self.group.equal(a, b)

    def generators(self) -> List:
        return self.group.generators()

    def encode(self, a) -> bytes:
        return self.group.encode(a)

    def decode(self, code: bytes):
        return self.group.decode(code)

    def exponent_bound(self) -> Optional[int]:
        return self.group.exponent_bound()

    def order(self) -> int:
        # Order queries are structural information; concrete groups may know
        # their own order cheaply.  The HSP solvers only use this through the
        # quantum order-finding layer, which does its own accounting.
        return self.group.order()

    def uniform_random_element(self, rng: np.random.Generator):
        return self.group.random_element(rng)

    @property
    def encoding_length(self) -> int:
        """Length (in bits) of the longest generator encoding — the ``n`` of the model."""
        gens = self.group.generators() or [self.group.identity()]
        return max(len(self.group.encode(g)) for g in gens) * 8


class HidingOracle:
    """The hiding function ``f : G -> X`` with query accounting.

    ``label(g)`` must return a hashable label constant on left cosets of the
    hidden subgroup and distinct across cosets.  The optional
    ``hidden_subgroup_generators`` are carried for *verification only*:
    solvers must never read them (tests assert this by construction), but the
    experiment harness uses them to check solver output and the analytic
    sampling backend may use them as the declared coset structure of
    top-level instances.
    """

    def __init__(
        self,
        label: Callable[[Any], Any],
        counter: Optional[QueryCounter] = None,
        hidden_subgroup_generators: Optional[Sequence] = None,
        description: str = "f",
    ):
        self._label = label
        self.counter = counter if counter is not None else QueryCounter()
        self.hidden_subgroup_generators = list(hidden_subgroup_generators) if hidden_subgroup_generators is not None else None
        self.description = description
        self._cache: Dict[Any, Any] = {}

    def __call__(self, element) -> Any:
        """A classical query to ``f`` (cached; the first evaluation counts)."""
        if element in self._cache:
            return self._cache[element]
        self.counter.classical_queries += 1
        value = self._label(element)
        self._cache[element] = value
        return value

    def quantum_query(self) -> None:
        """Account for one superposition query (one Fourier-sampling round)."""
        self.counter.quantum_queries += 1

    def fresh_view(self) -> "HidingOracle":
        """A new oracle sharing the labelling function but with fresh counters."""
        return HidingOracle(self._label, QueryCounter(), self.hidden_subgroup_generators, self.description)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HidingOracle({self.description})"
