"""Oracle wrappers with query accounting.

Complexity statements in the paper are phrased in terms of oracle uses:
multiplications performed by the group oracle ``U_G`` and evaluations of the
hiding function ``f``.  Wrapping both behind counting proxies makes the
benchmark harness report query counts that are independent of how the
underlying simulation chooses to realise the quantum subroutines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.groups.base import FiniteGroup

__all__ = ["QueryCounter", "BlackBoxGroup", "HidingOracle"]


@dataclass
class QueryCounter:
    """Mutable counters for oracle usage.

    Field semantics (the accounting contract of the whole benchmark suite):

    ``classical_queries``
        Ordinary (non-superposition) evaluations of a hiding function ``f``.
        Cached re-evaluations are free: only the *first* evaluation of each
        element counts, and the batch API
        (:meth:`HidingOracle.evaluate_many`) counts exactly the uncached
        elements, so a batch reports the same total as the equivalent scalar
        loop.
    ``quantum_queries``
        Superposition queries: one per Fourier-sampling round, regardless of
        how expensive the round is to simulate classically and of which
        sampling backend ran it.  A batched request for ``k`` rounds counts
        ``k``.
    ``group_multiplications``
        Uses of the group-multiplication oracle ``U_G``.  Batch products of
        ``k`` pairs (:meth:`BlackBoxGroup.multiply_many`) count ``k``, the
        same as ``k`` scalar calls; memoisation *inside* the Cayley engine is
        invisible here because the count is bumped before the engine runs.
    ``group_inversions``
        Uses of the inversion oracle; bulk accounting mirrors
        ``group_multiplications`` (:meth:`BlackBoxGroup.inverse_many`).
    ``identity_tests``
        Equality/identity tests performed through the black-box interface.
    ``extra``
        Free-form named counters (``bump``) for algorithm-specific events,
        e.g. ``theorem11_retries`` or ``order_oracle_calls``.
    """

    classical_queries: int = 0
    quantum_queries: int = 0
    group_multiplications: int = 0
    group_inversions: int = 0
    identity_tests: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.extra[key] = self.extra.get(key, 0) + amount

    #: The named (non-``extra``) counter fields, in snapshot order.
    FIELDS = (
        "classical_queries",
        "quantum_queries",
        "group_multiplications",
        "group_inversions",
        "identity_tests",
    )

    def snapshot(self) -> Dict[str, int]:
        data = {
            "classical_queries": self.classical_queries,
            "quantum_queries": self.quantum_queries,
            "group_multiplications": self.group_multiplications,
            "group_inversions": self.group_inversions,
            "identity_tests": self.identity_tests,
        }
        data.update(self.extra)
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, int]) -> "QueryCounter":
        """Rebuild a counter from a :meth:`snapshot` dictionary.

        The round-trip ``QueryCounter.from_snapshot(c.snapshot())`` preserves
        every counter (named fields and ``extra`` alike), which is what lets
        the experiment harness merge the per-run JSON reports of worker
        processes back into one aggregate with ``+`` / :func:`sum`.
        """
        counter = cls()
        for key, value in data.items():
            if key in cls.FIELDS:
                setattr(counter, key, int(value))
            else:
                counter.extra[key] = int(value)
        return counter

    def reset(self) -> None:
        self.classical_queries = 0
        self.quantum_queries = 0
        self.group_multiplications = 0
        self.group_inversions = 0
        self.identity_tests = 0
        self.extra.clear()

    def __add__(self, other: "QueryCounter") -> "QueryCounter":
        merged = QueryCounter(
            classical_queries=self.classical_queries + other.classical_queries,
            quantum_queries=self.quantum_queries + other.quantum_queries,
            group_multiplications=self.group_multiplications + other.group_multiplications,
            group_inversions=self.group_inversions + other.group_inversions,
            identity_tests=self.identity_tests + other.identity_tests,
        )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        return merged

    def __radd__(self, other) -> "QueryCounter":
        # ``sum(counters)`` starts from the int 0; fold it into a fresh copy.
        if other == 0:
            return QueryCounter() + self
        return NotImplemented


class BlackBoxGroup(FiniteGroup):
    """A concrete group seen only through the Babai--Szemerédi oracle interface.

    Every multiplication, inversion and identity test is counted.  The
    wrapped group's element encoding is exposed through :meth:`encode`, so
    callers can treat elements as opaque strings exactly as the model
    prescribes.  The wrapper is itself a :class:`FiniteGroup`, which lets the
    whole algorithm stack run unchanged over counted or uncounted groups.
    """

    def __init__(self, group: FiniteGroup, counter: Optional[QueryCounter] = None, name: Optional[str] = None):
        self.group = group
        self.counter = counter if counter is not None else QueryCounter()
        self.name = name or f"BlackBox({group.name})"

    # -- oracle operations -------------------------------------------------------
    def identity(self):
        return self.group.identity()

    def multiply(self, a, b):
        self.counter.group_multiplications += 1
        return self.group.multiply(a, b)

    def inverse(self, a):
        self.counter.group_inversions += 1
        return self.group.inverse(a)

    def multiply_many(self, elements_a, elements_b) -> List:
        """Batch products; counts ``len(elements_a)`` multiplications in bulk.

        Totals equal those of the scalar loop ``[self.multiply(a, b) ...]``;
        the arithmetic is delegated to the wrapped group, whose default batch
        implementation is engine-accelerated when a Cayley engine is
        installed (:mod:`repro.groups.engine`).
        """
        elements_a = list(elements_a)
        elements_b = list(elements_b)
        if len(elements_a) != len(elements_b):
            raise ValueError("multiply_many requires sequences of equal length")
        self.counter.group_multiplications += len(elements_a)
        return self.group.multiply_many(elements_a, elements_b)

    def inverse_many(self, elements) -> List:
        """Batch inverses; counts ``len(elements)`` inversions in bulk."""
        elements = list(elements)
        self.counter.group_inversions += len(elements)
        return self.group.inverse_many(elements)

    def equal(self, a, b) -> bool:
        self.counter.identity_tests += 1
        return self.group.equal(a, b)

    def generators(self) -> List:
        return self.group.generators()

    def encode(self, a) -> bytes:
        return self.group.encode(a)

    def decode(self, code: bytes):
        return self.group.decode(code)

    def exponent_bound(self) -> Optional[int]:
        return self.group.exponent_bound()

    def order(self) -> int:
        # Order queries are structural information; concrete groups may know
        # their own order cheaply.  The HSP solvers only use this through the
        # quantum order-finding layer, which does its own accounting.
        return self.group.order()

    def uniform_random_element(self, rng: np.random.Generator):
        return self.group.random_element(rng)

    @property
    def encoding_length(self) -> int:
        """Length (in bits) of the longest generator encoding — the ``n`` of the model."""
        gens = self.group.generators() or [self.group.identity()]
        return max(len(self.group.encode(g)) for g in gens) * 8


class HidingOracle:
    """The hiding function ``f : G -> X`` with query accounting.

    ``label(g)`` must return a hashable label constant on left cosets of the
    hidden subgroup and distinct across cosets.  The optional
    ``hidden_subgroup_generators`` are carried for *verification only*:
    solvers must never read them (tests assert this by construction), but the
    experiment harness uses them to check solver output and the analytic
    sampling backend may use them as the declared coset structure of
    top-level instances.
    """

    def __init__(
        self,
        label: Callable[[Any], Any],
        counter: Optional[QueryCounter] = None,
        hidden_subgroup_generators: Optional[Sequence] = None,
        description: str = "f",
    ):
        self._label = label
        self.counter = counter if counter is not None else QueryCounter()
        self.hidden_subgroup_generators = list(hidden_subgroup_generators) if hidden_subgroup_generators is not None else None
        self.description = description
        self._cache: Dict[Any, Any] = {}

    def __call__(self, element) -> Any:
        """A classical query to ``f`` (cached; the first evaluation counts)."""
        if element in self._cache:
            return self._cache[element]
        self.counter.classical_queries += 1
        value = self._label(element)
        self._cache[element] = value
        return value

    def evaluate_many(self, elements: Sequence) -> List:
        """Batch classical queries to ``f``.

        Exactly the uncached elements are counted (and evaluated, in input
        order), so the reported ``classical_queries`` total is identical to
        the equivalent scalar loop ``[self(x) for x in elements]`` —
        including when the input contains duplicates.
        """
        values = []
        for element in elements:
            if element in self._cache:
                values.append(self._cache[element])
                continue
            self.counter.classical_queries += 1
            value = self._label(element)
            self._cache[element] = value
            values.append(value)
        return values

    def quantum_query(self, count: int = 1) -> None:
        """Account for ``count`` superposition queries (Fourier-sampling rounds)."""
        self.counter.quantum_queries += count

    def fresh_view(self) -> "HidingOracle":
        """A new oracle sharing the labelling function but with fresh counters."""
        return HidingOracle(self._label, QueryCounter(), self.hidden_subgroup_generators, self.description)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HidingOracle({self.description})"
