"""Oracle wrappers with query accounting.

Complexity statements in the paper are phrased in terms of oracle uses:
multiplications performed by the group oracle ``U_G`` and evaluations of the
hiding function ``f``.  Wrapping both behind counting proxies makes the
benchmark harness report query counts that are independent of how the
underlying simulation chooses to realise the quantum subroutines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.groups.base import FiniteGroup

__all__ = ["QueryCounter", "BlackBoxGroup", "DenseBlackBoxGroup", "HidingOracle"]


@dataclass
class QueryCounter:
    """Mutable counters for oracle usage.

    Field semantics (the accounting contract of the whole benchmark suite):

    ``classical_queries``
        Ordinary (non-superposition) evaluations of a hiding function ``f``.
        Cached re-evaluations are free: only the *first* evaluation of each
        element counts, and the batch API
        (:meth:`HidingOracle.evaluate_many`) counts exactly the uncached
        elements, so a batch reports the same total as the equivalent scalar
        loop.
    ``quantum_queries``
        Superposition queries: one per Fourier-sampling round, regardless of
        how expensive the round is to simulate classically and of which
        sampling backend ran it.  A batched request for ``k`` rounds counts
        ``k``.
    ``group_multiplications``
        Uses of the group-multiplication oracle ``U_G``.  Batch products of
        ``k`` pairs (:meth:`BlackBoxGroup.multiply_many`) count ``k``, the
        same as ``k`` scalar calls; memoisation *inside* the Cayley engine is
        invisible here because the count is bumped before the engine runs.
    ``group_inversions``
        Uses of the inversion oracle; bulk accounting mirrors
        ``group_multiplications`` (:meth:`BlackBoxGroup.inverse_many`).
    ``identity_tests``
        Equality/identity tests performed through the black-box interface.
    ``extra``
        Free-form named counters (``bump``) for algorithm-specific events,
        e.g. ``theorem11_retries`` or ``order_oracle_calls``.
    """

    classical_queries: int = 0
    quantum_queries: int = 0
    group_multiplications: int = 0
    group_inversions: int = 0
    identity_tests: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def bump(self, key: str, amount: int = 1) -> None:
        self.extra[key] = self.extra.get(key, 0) + amount

    #: The named (non-``extra``) counter fields, in snapshot order.
    FIELDS = (
        "classical_queries",
        "quantum_queries",
        "group_multiplications",
        "group_inversions",
        "identity_tests",
    )

    def snapshot(self) -> Dict[str, int]:
        data = {
            "classical_queries": self.classical_queries,
            "quantum_queries": self.quantum_queries,
            "group_multiplications": self.group_multiplications,
            "group_inversions": self.group_inversions,
            "identity_tests": self.identity_tests,
        }
        data.update(self.extra)
        return data

    @classmethod
    def from_snapshot(cls, data: Dict[str, int]) -> "QueryCounter":
        """Rebuild a counter from a :meth:`snapshot` dictionary.

        The round-trip ``QueryCounter.from_snapshot(c.snapshot())`` preserves
        every counter (named fields and ``extra`` alike), which is what lets
        the experiment harness merge the per-run JSON reports of worker
        processes back into one aggregate with ``+`` / :func:`sum`.
        """
        counter = cls()
        for key, value in data.items():
            if key in cls.FIELDS:
                setattr(counter, key, int(value))
            else:
                counter.extra[key] = int(value)
        return counter

    def reset(self) -> None:
        self.classical_queries = 0
        self.quantum_queries = 0
        self.group_multiplications = 0
        self.group_inversions = 0
        self.identity_tests = 0
        self.extra.clear()

    def __add__(self, other: "QueryCounter") -> "QueryCounter":
        merged = QueryCounter(
            classical_queries=self.classical_queries + other.classical_queries,
            quantum_queries=self.quantum_queries + other.quantum_queries,
            group_multiplications=self.group_multiplications + other.group_multiplications,
            group_inversions=self.group_inversions + other.group_inversions,
            identity_tests=self.identity_tests + other.identity_tests,
        )
        for key in set(self.extra) | set(other.extra):
            merged.extra[key] = self.extra.get(key, 0) + other.extra.get(key, 0)
        return merged

    def __radd__(self, other) -> "QueryCounter":
        # ``sum(counters)`` starts from the int 0; fold it into a fresh copy.
        if other == 0:
            return QueryCounter() + self
        return NotImplemented


class BlackBoxGroup(FiniteGroup):
    """A concrete group seen only through the Babai--Szemerédi oracle interface.

    Every multiplication, inversion and identity test is counted.  The
    wrapped group's element encoding is exposed through :meth:`encode`, so
    callers can treat elements as opaque strings exactly as the model
    prescribes.  The wrapper is itself a :class:`FiniteGroup`, which lets the
    whole algorithm stack run unchanged over counted or uncounted groups.
    """

    def __init__(self, group: FiniteGroup, counter: Optional[QueryCounter] = None, name: Optional[str] = None):
        self.group = group
        self.counter = counter if counter is not None else QueryCounter()
        self.name = name or f"BlackBox({group.name})"

    # -- oracle operations -------------------------------------------------------
    def identity(self):
        return self.group.identity()

    def multiply(self, a, b):
        self.counter.group_multiplications += 1
        return self.group.multiply(a, b)

    def inverse(self, a):
        self.counter.group_inversions += 1
        return self.group.inverse(a)

    def multiply_many(self, elements_a, elements_b) -> List:
        """Batch products; counts ``len(elements_a)`` multiplications in bulk.

        Totals equal those of the scalar loop ``[self.multiply(a, b) ...]``;
        the arithmetic is delegated to the wrapped group, whose default batch
        implementation is engine-accelerated when a Cayley engine is
        installed (:mod:`repro.groups.engine`).
        """
        elements_a = list(elements_a)
        elements_b = list(elements_b)
        if len(elements_a) != len(elements_b):
            raise ValueError("multiply_many requires sequences of equal length")
        self.counter.group_multiplications += len(elements_a)
        return self.group.multiply_many(elements_a, elements_b)

    def inverse_many(self, elements) -> List:
        """Batch inverses; counts ``len(elements)`` inversions in bulk."""
        elements = list(elements)
        self.counter.group_inversions += len(elements)
        return self.group.inverse_many(elements)

    def equal(self, a, b) -> bool:
        self.counter.identity_tests += 1
        return self.group.equal(a, b)

    def generators(self) -> List:
        return self.group.generators()

    def encode(self, a) -> bytes:
        return self.group.encode(a)

    def decode(self, code: bytes):
        return self.group.decode(code)

    def exponent_bound(self) -> Optional[int]:
        return self.group.exponent_bound()

    def order(self) -> int:
        # Order queries are structural information; concrete groups may know
        # their own order cheaply.  The HSP solvers only use this through the
        # quantum order-finding layer, which does its own accounting.
        return self.group.order()

    def uniform_random_element(self, rng: np.random.Generator):
        return self.group.random_element(rng)

    @property
    def encoding_length(self) -> int:
        """Length (in bits) of the longest generator encoding — the ``n`` of the model."""
        gens = self.group.generators() or [self.group.identity()]
        return max(len(self.group.encode(g)) for g in gens) * 8

    def dense_view(self) -> Optional["DenseBlackBoxGroup"]:
        """An id-native counted facade over this group, or ``None``.

        Available when a Cayley engine exists for the wrapped group (see
        :func:`repro.groups.engine.maybe_engine`); hot consumers use it to
        stay in int64 id arrays across calls while this wrapper's counter
        keeps the loop-equivalent totals.
        """
        from repro.groups.engine import maybe_engine

        engine = maybe_engine(self.group)
        if engine is None:
            return None
        return DenseBlackBoxGroup(self, engine)


class DenseBlackBoxGroup:
    """Counted group oracle over dense int64 ids.

    The id-native twin of :class:`BlackBoxGroup`: every operation bumps the
    same counter by the same amount as the equivalent element-level batch
    call, then delegates to the (uncounted) Cayley engine.  Converting
    between elements and ids (``intern_many`` / ``elements_of``) is free —
    the paper's oracle model charges for group operations, not for how the
    simulation names elements.
    """

    def __init__(self, black_box: BlackBoxGroup, engine):
        self.black_box = black_box
        self.engine = engine
        self.counter = black_box.counter
        self.identity_id = engine.identity_id

    # -- free conversions -------------------------------------------------------
    def intern(self, element) -> int:
        return self.engine.intern(element)

    def intern_many(self, elements: Sequence) -> np.ndarray:
        return self.engine.intern_many(elements)

    def element_of(self, element_id: int):
        return self.engine.element_of(element_id)

    def elements_of(self, ids: Sequence) -> List:
        return self.engine.elements_of(ids)

    # -- counted id operations --------------------------------------------------
    def multiply_ids(self, ids_a: Sequence[int], ids_b: Sequence[int]) -> np.ndarray:
        """Componentwise id products; counts ``len(ids_a)`` multiplications."""
        ids_a = np.asarray(ids_a, dtype=np.int64)
        ids_b = np.asarray(ids_b, dtype=np.int64)
        if ids_a.shape != ids_b.shape:
            raise ValueError("multiply_ids requires id arrays of equal length")
        self.counter.group_multiplications += int(ids_a.size)
        return self.engine.mul_many(ids_a, ids_b)

    def inverse_ids(self, ids: Sequence[int]) -> np.ndarray:
        """Componentwise id inverses; counts ``len(ids)`` inversions."""
        ids = np.asarray(ids, dtype=np.int64)
        self.counter.group_inversions += int(ids.size)
        return self.engine.inv_many(ids)

    def is_identity_ids(self, ids: Sequence[int]) -> np.ndarray:
        """Componentwise identity tests; counts ``len(ids)`` identity tests."""
        ids = np.asarray(ids, dtype=np.int64)
        self.counter.identity_tests += int(ids.size)
        return ids == self.identity_id

    def closure_ids(self, generator_ids: Sequence[int]) -> np.ndarray:
        """Ids of the generated subgroup, counted like the scalar BFS.

        The scalar enumeration (``generate_subgroup_elements``) tests each
        generator against the identity, inverts the ``k`` non-identity
        generators, and multiplies every discovered member by each of the
        ``2k`` extended generators exactly once — ``|H| * 2k`` products in
        total, independent of the BFS level structure, because every member
        enters the frontier exactly once.  Those totals are charged here up
        front and the member set itself comes from the engine's vectorised
        closure, which is orders of magnitude faster than a counted
        per-level walk.
        """
        ids = np.asarray(generator_ids, dtype=np.int64)
        keep = ids[~self.is_identity_ids(ids)]
        self.counter.group_inversions += int(keep.size)
        member = self.engine.subgroup_ids(keep)
        self.counter.group_multiplications += int(member.size) * 2 * int(keep.size)
        return member


class HidingOracle:
    """The hiding function ``f : G -> X`` with query accounting.

    ``label(g)`` must return a hashable label constant on left cosets of the
    hidden subgroup and distinct across cosets.  The optional
    ``hidden_subgroup_generators`` are carried for *verification only*:
    solvers must never read them (tests assert this by construction), but the
    experiment harness uses them to check solver output and the analytic
    sampling backend may use them as the declared coset structure of
    top-level instances.
    """

    def __init__(
        self,
        label: Callable[[Any], Any],
        counter: Optional[QueryCounter] = None,
        hidden_subgroup_generators: Optional[Sequence] = None,
        description: str = "f",
    ):
        self._label = label
        self.counter = counter if counter is not None else QueryCounter()
        self.hidden_subgroup_generators = list(hidden_subgroup_generators) if hidden_subgroup_generators is not None else None
        self.description = description
        self._cache: Dict[Any, Any] = {}
        self._engine = None
        self._label_ids: Optional[Callable[[np.ndarray], Sequence]] = None
        self.noise = None

    @property
    def dense_engine(self):
        """The Cayley engine this oracle is id-keyed on, or ``None``."""
        return self._engine

    def attach_dense(self, engine, label_ids: Optional[Callable[[np.ndarray], Sequence]] = None) -> None:
        """Key the query cache by dense engine ids and enable :meth:`evaluate_ids`.

        ``label_ids`` is an optional vectorized labeller (an int64 id array
        in, one label per id out) used for uncached ids; without it the
        scalar ``label`` runs per fresh id.  Interning is a bijection, so the
        set of counted (uncached) queries is identical to the element-keyed
        cache — accounting is unchanged.  Existing cache entries are migrated.
        """
        migrated = {engine.intern(element): value for element, value in self._cache.items()}
        self._engine = engine
        self._label_ids = label_ids
        self._cache = migrated
        if (
            self.noise is not None
            and label_ids is not None
            and not getattr(label_ids, "_noise_wrapped", False)
        ):
            self._label_ids = self._wrap_label_ids(label_ids)

    def apply_noise(self, channel) -> None:
        """Install an oracle corruption channel *below* the cache and counter.

        ``channel.replacement(element)`` decides, deterministically per
        element, whether the answer for ``element`` is replaced by the true
        label of another element (a uniformly random coset label for the
        ``oracle-flip`` channel).  The wrap sits below :meth:`__call__`'s
        cache and counter, so query accounting and cache behaviour are
        byte-identical to the honest oracle — only answers change.  The
        element-keyed decision makes every query path (scalar, batch,
        dense-id, :meth:`fresh_view` copies) corrupt identically.
        """
        if self.noise is not None:
            raise ValueError("a noise channel is already installed on this oracle")
        from repro.obs import span as obs_span

        self.noise = channel
        honest_label = self._label
        self._honest_label = honest_label

        def noisy_label(element):
            with obs_span("noise.oracle_flip") as noise_span:
                replacement = channel.replacement(element)
                noise_span.set(flipped=replacement is not None)
            return honest_label(element if replacement is None else replacement)

        self._label = noisy_label
        if self._label_ids is not None:
            self._label_ids = self._wrap_label_ids(self._label_ids)

    def _wrap_label_ids(self, base_label_ids: Callable[[np.ndarray], Sequence]):
        """The noisy twin of a vectorized labeller: same ids, corrupted answers."""
        channel = self.noise
        engine = self._engine
        honest_label = self._honest_label

        def noisy_label_ids(ids):
            values = list(base_label_ids(ids))
            for position, element in enumerate(engine.elements_of(ids)):
                replacement = channel.replacement(element)
                if replacement is not None:
                    values[position] = honest_label(replacement)
            return values

        noisy_label_ids._noise_wrapped = True
        return noisy_label_ids

    def __call__(self, element) -> Any:
        """A classical query to ``f`` (cached; the first evaluation counts)."""
        key = self._engine.intern(element) if self._engine is not None else element
        if key in self._cache:
            return self._cache[key]
        self.counter.classical_queries += 1
        value = self._label(element)
        self._cache[key] = value
        return value

    def evaluate_many(self, elements: Sequence) -> List:
        """Batch classical queries to ``f``.

        Exactly the uncached elements are counted (and evaluated, in input
        order), so the reported ``classical_queries`` total is identical to
        the equivalent scalar loop ``[self(x) for x in elements]`` —
        including when the input contains duplicates.
        """
        if self._engine is not None:
            return list(self.evaluate_ids(self._engine.intern_many(list(elements))))
        values = []
        for element in elements:
            if element in self._cache:
                values.append(self._cache[element])
                continue
            self.counter.classical_queries += 1
            value = self._label(element)
            self._cache[element] = value
            values.append(value)
        return values

    def evaluate_ids(self, ids: Sequence[int]) -> List:
        """Batch classical queries addressed by dense engine ids.

        Counts exactly the distinct uncached ids — interning is a bijection,
        so this equals the scalar loop's total over the decoded elements
        (duplicates and all).  Uncached labels come from the vectorized
        ``label_ids`` when attached, else from the scalar labeller per id.
        Requires a prior :meth:`attach_dense`.
        """
        if self._engine is None:
            raise ValueError("evaluate_ids requires attach_dense")
        ids = np.asarray(ids, dtype=np.int64)
        cache = self._cache
        fresh: List[int] = []
        seen_fresh = set()
        for i in ids.tolist():
            if i not in cache and i not in seen_fresh:
                seen_fresh.add(i)
                fresh.append(i)
        if fresh:
            self.counter.classical_queries += len(fresh)
            if self._label_ids is not None:
                fresh_array = np.asarray(fresh, dtype=np.int64)
                for i, value in zip(fresh, self._label_ids(fresh_array)):
                    cache[i] = value
            else:
                for i in fresh:
                    cache[i] = self._label(self._engine.element_of(i))
        return [cache[i] for i in ids.tolist()]

    def quantum_query(self, count: int = 1) -> None:
        """Account for ``count`` superposition queries (Fourier-sampling rounds)."""
        self.counter.quantum_queries += count

    def fresh_view(self) -> "HidingOracle":
        """A new oracle sharing the labelling function but with fresh counters.

        A dense attachment (engine keying + vectorized labeller) carries
        over, as does an installed noise channel (the shared labelling
        closures are already the corrupted ones); the cache does not, so the
        new view counts its own queries.
        """
        view = HidingOracle(self._label, QueryCounter(), self.hidden_subgroup_generators, self.description)
        view.noise = self.noise
        if self.noise is not None:
            view._honest_label = self._honest_label
        if self._engine is not None:
            view.attach_dense(self._engine, self._label_ids)
        return view

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HidingOracle({self.description})"
