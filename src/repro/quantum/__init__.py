"""Quantum simulation substrate.

The paper assumes a quantum computer able to run approximate quantum Fourier
transforms over Abelian groups, evaluate group and hiding oracles in
superposition, and perform Shor order finding / discrete logarithms.  This
package provides two interchangeable realisations of those primitives:

``state`` / ``qft``
    a dense state-vector simulator over composite registers
    ``Z_{d1} x ... x Z_{dk}`` with vectorised mixed-radix QFTs — the honest,
    exponential-cost, gate-level backend used on small instances and as
    ground truth;
``sampling``
    the Fourier-sampling layer with a ``statevector`` backend (built on the
    simulator's measurement distribution) and an ``analytic`` backend that
    samples the identical distribution (uniform over the annihilator of the
    hidden subgroup) in polynomial time from the instance's declared coset
    structure;
``shor``
    order finding, period finding, discrete logarithms and factoring, both as
    gate-level demonstrations and as accounted oracles (the paper's
    hypothesis (b) of Theorem 4);
``watrous``
    the solvable-group primitives of Watrous (Theorem 2): orders modulo a
    normal subgroup given by generators, membership, and coset-state
    identity tests.
"""

from repro.quantum.state import RegisterState
from repro.quantum.qft import qft_matrix, qft_probabilities_of_coset
from repro.quantum.sampling import (
    AbelianHSPOracle,
    FourierSampler,
    SubgroupStructureOracle,
    TupleFunctionOracle,
)
from repro.quantum.shor import (
    continued_fraction_convergents,
    order_via_period_sampling,
    quantum_discrete_log,
    quantum_element_order,
    quantum_factor,
    shor_period_gate_level,
)
from repro.quantum.watrous import (
    coset_identity_test,
    normal_subgroup_membership,
    order_modulo_subgroup,
    uniform_superposition_elements,
)

__all__ = [
    "RegisterState",
    "qft_matrix",
    "qft_probabilities_of_coset",
    "AbelianHSPOracle",
    "TupleFunctionOracle",
    "SubgroupStructureOracle",
    "FourierSampler",
    "quantum_element_order",
    "quantum_discrete_log",
    "quantum_factor",
    "shor_period_gate_level",
    "order_via_period_sampling",
    "continued_fraction_convergents",
    "order_modulo_subgroup",
    "normal_subgroup_membership",
    "uniform_superposition_elements",
    "coset_identity_test",
]
