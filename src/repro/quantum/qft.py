"""Quantum Fourier transforms over finite Abelian groups.

The QFT over ``Z_{d1} x ... x Z_{dk}`` factors into independent QFTs along
each axis, so a state over the composite register is transformed by a
mixed-radix multidimensional DFT.  NumPy's FFT implements exactly that
transform (up to normalisation and the sign of the exponent, which do not
affect measurement statistics); all hot paths below therefore reduce to
``numpy.fft`` calls on reshaped amplitude arrays, as recommended by the HPC
guides (vectorise; never loop over amplitudes in Python).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["qft_matrix", "apply_qft", "apply_inverse_qft", "qft_probabilities_of_coset"]


def qft_matrix(n: int) -> np.ndarray:
    """The ``n x n`` QFT matrix ``F[j, k] = omega^{jk} / sqrt(n)`` with ``omega = exp(2 pi i / n)``."""
    indices = np.arange(n)
    phases = np.outer(indices, indices) % n
    return np.exp(2j * np.pi * phases / n) / np.sqrt(n)


def apply_qft(amplitudes: np.ndarray, axes: Sequence[int] | None = None) -> np.ndarray:
    """Apply the QFT along the given axes of a composite-register state.

    The amplitude array must have one axis per register factor (shape
    ``(d1, ..., dk)``).  Uses the convention ``omega^{+jk}``, implemented as
    a normalised inverse FFT.
    """
    axes = tuple(axes) if axes is not None else tuple(range(amplitudes.ndim))
    transformed = np.fft.ifftn(amplitudes, axes=axes, norm="ortho")
    return transformed


def apply_inverse_qft(amplitudes: np.ndarray, axes: Sequence[int] | None = None) -> np.ndarray:
    """Inverse of :func:`apply_qft`."""
    axes = tuple(axes) if axes is not None else tuple(range(amplitudes.ndim))
    return np.fft.fftn(amplitudes, axes=axes, norm="ortho")


def qft_probabilities_of_coset(indicator: np.ndarray) -> np.ndarray:
    """Measurement distribution after Fourier transforming a coset state.

    ``indicator`` is a (possibly unnormalised) non-negative array over the
    group ``Z_{d1} x ... x Z_{dk}`` (shape = the moduli) that is the
    indicator function of a coset ``x0 + H``.  The returned array has the
    same shape and contains the exact probability of observing each dual
    element when the QFT of the normalised coset state is measured — the
    core step of the standard Abelian HSP algorithm (Theorem 3 / Lemma 9 of
    the paper).  The distribution is supported on ``H^perp`` and uniform
    there, independent of the coset offset ``x0``.
    """
    norm = np.linalg.norm(indicator)
    if norm == 0:
        raise ValueError("coset indicator must be non-zero")
    state = indicator.astype(np.complex128) / norm
    transformed = apply_qft(state)
    probabilities = np.abs(transformed) ** 2
    # Guard against floating point drift before the caller samples from it.
    probabilities = np.clip(probabilities.real, 0.0, None)
    probabilities /= probabilities.sum()
    return probabilities
