"""Dense state-vector simulation of composite quantum registers.

A :class:`RegisterState` holds the amplitudes of a register
``Z_{d1} x ... x Z_{dk}`` as a complex NumPy array of shape
``(d1, ..., dk)``.  It supports exactly the operations the paper's
algorithms need: preparing uniform superpositions, applying the QFT on a
subset of factors, evaluating a classical function into a target factor
(``|x>|y> -> |x>|y + f(x)>``), and measuring factors.

The simulator is exponential in the register size by construction; it is the
ground-truth backend used to validate the polynomial-time analytic sampler
and to demonstrate Shor period finding end to end on small moduli.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.quantum.qft import apply_inverse_qft, apply_qft

__all__ = ["RegisterState"]


class RegisterState:
    """State vector of a composite register with per-factor dimensions ``dims``."""

    def __init__(self, dims: Sequence[int], amplitudes: Optional[np.ndarray] = None):
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        if any(d <= 0 for d in self.dims):
            raise ValueError("all register dimensions must be positive")
        size = int(np.prod(self.dims))
        if size > (1 << 22):
            raise ValueError(
                f"register of total dimension {size} exceeds the state-vector simulation limit; "
                "use the analytic sampling backend for instances of this size"
            )
        if amplitudes is None:
            amps = np.zeros(self.dims, dtype=np.complex128)
            amps[(0,) * len(self.dims)] = 1.0
            self.amplitudes = amps
        else:
            amps = np.asarray(amplitudes, dtype=np.complex128).reshape(self.dims)
            self.amplitudes = amps / np.linalg.norm(amps)

    # -- preparation -----------------------------------------------------------
    @classmethod
    def uniform(cls, dims: Sequence[int], axes: Optional[Sequence[int]] = None) -> "RegisterState":
        """``|+...+>`` on ``axes`` (all axes by default), ``|0>`` elsewhere."""
        state = cls(dims)
        axes = tuple(axes) if axes is not None else tuple(range(len(state.dims)))
        amps = np.zeros(state.dims, dtype=np.complex128)
        index = [slice(None) if ax in axes else 0 for ax in range(len(state.dims))]
        amps[tuple(index)] = 1.0
        state.amplitudes = amps / np.linalg.norm(amps)
        return state

    def copy(self) -> "RegisterState":
        clone = RegisterState(self.dims)
        clone.amplitudes = self.amplitudes.copy()
        return clone

    # -- unitaries ----------------------------------------------------------------
    def qft(self, axes: Optional[Sequence[int]] = None) -> "RegisterState":
        self.amplitudes = apply_qft(self.amplitudes, axes)
        return self

    def inverse_qft(self, axes: Optional[Sequence[int]] = None) -> "RegisterState":
        self.amplitudes = apply_inverse_qft(self.amplitudes, axes)
        return self

    def apply_classical_function(
        self,
        func: Callable[[Tuple[int, ...]], int],
        source_axes: Sequence[int],
        target_axis: int,
    ) -> "RegisterState":
        """The oracle unitary ``|x>|y> -> |x>|y + f(x) mod d_target>``.

        ``func`` receives the tuple of values on ``source_axes`` and must
        return an integer.  Implemented by permuting slices of the amplitude
        array: for each value of the source axes, the target axis is rolled
        by ``f(x)`` — a reversible (unitary, permutation) operation.
        """
        dims = self.dims
        target_dim = dims[target_axis]
        source_axes = tuple(source_axes)
        # Enumerate source values; vectorise the roll along the target axis.
        source_shape = tuple(dims[a] for a in source_axes)
        new_amplitudes = self.amplitudes.copy()
        for source_value in np.ndindex(*source_shape):
            shift = int(func(tuple(int(v) for v in source_value))) % target_dim
            if shift == 0:
                continue
            index: List = [slice(None)] * len(dims)
            for axis, value in zip(source_axes, source_value):
                index[axis] = value
            slab = self.amplitudes[tuple(index)]
            new_amplitudes[tuple(index)] = np.roll(slab, shift, axis=self._rolled_axis(target_axis, source_axes))
        self.amplitudes = new_amplitudes
        return self

    def _rolled_axis(self, target_axis: int, fixed_axes: Sequence[int]) -> int:
        """Axis index of ``target_axis`` after the fixed axes have been indexed away."""
        return target_axis - sum(1 for a in fixed_axes if a < target_axis)

    def apply_label_function(
        self,
        labels: np.ndarray,
        source_axes: Sequence[int],
        target_axis: int,
    ) -> "RegisterState":
        """Vectorised oracle application when ``f`` is given as a label array.

        ``labels`` must have shape ``tuple(dims[a] for a in source_axes)`` and
        integer entries in ``[0, d_target)``.  Equivalent to
        :meth:`apply_classical_function` but without a Python-level call per
        basis value.
        """
        return self.apply_classical_function(
            lambda xs: int(labels[xs]), source_axes, target_axis
        )

    # -- measurement -----------------------------------------------------------------
    def probabilities(self, axes: Optional[Sequence[int]] = None) -> np.ndarray:
        """Marginal measurement distribution on ``axes`` (all axes by default)."""
        probs = np.abs(self.amplitudes) ** 2
        if axes is None:
            return probs
        axes = tuple(axes)
        other = tuple(a for a in range(len(self.dims)) if a not in axes)
        marginal = probs.sum(axis=other) if other else probs
        return marginal

    def measure(self, axes: Sequence[int], rng: np.random.Generator) -> Tuple[int, ...]:
        """Measure ``axes`` in the computational basis; collapses the state."""
        axes = tuple(axes)
        marginal = self.probabilities(axes)
        flat = marginal.reshape(-1)
        flat = flat / flat.sum()
        outcome_index = int(rng.choice(len(flat), p=flat))
        outcome = np.unravel_index(outcome_index, marginal.shape)
        # Collapse: zero out all amplitudes inconsistent with the outcome.
        index: List = [slice(None)] * len(self.dims)
        for axis, value in zip(axes, outcome):
            index[axis] = int(value)
        collapsed = np.zeros_like(self.amplitudes)
        collapsed[tuple(index)] = self.amplitudes[tuple(index)]
        norm = np.linalg.norm(collapsed)
        self.amplitudes = collapsed / norm
        return tuple(int(v) for v in outcome)

    def fidelity_with(self, other: "RegisterState") -> float:
        """``|<self|other>|^2`` (diagnostics in tests)."""
        return float(abs(np.vdot(self.amplitudes, other.amplitudes)) ** 2)
