"""Fourier sampling for the Abelian hidden subgroup problem.

The standard quantum algorithm for the Abelian HSP (Theorem 3 of the paper,
and Lemma 9 for quantum-state-valued oracles) repeats the following round:

1. prepare a uniform superposition over the Abelian group ``A``,
2. evaluate the hiding function into a second register,
3. apply the QFT over ``A`` to the first register,
4. measure — the outcome is a uniformly random element of ``H^perp``.

This module implements that round against an :class:`AbelianHSPOracle` with
two interchangeable backends:

``statevector``
    the honest simulation: evaluate the oracle over the whole domain, form
    the post-measurement coset state, Fourier transform it with a
    mixed-radix FFT and sample from the exact distribution.  Exponential in
    ``log |A|``; used for small domains and as ground truth.

``analytic``
    the polynomial-time stand-in for quantum hardware: the oracle's declared
    (or cached) coset structure gives ``H``; the sampler draws uniformly from
    ``H^perp`` directly.  The distribution is identical to the statevector
    backend by the standard analysis, which the test-suite checks
    statistically.

Query accounting: each sampling round counts as **one** quantum query to the
hiding oracle regardless of backend, matching how the paper counts oracle
uses.
"""

from __future__ import annotations

import abc
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blackbox.oracle import QueryCounter
from repro.linalg.zmodule import ZModule, annihilator, canonical_generators, cyclic_decomposition
from repro.obs import span as obs_span
from repro.quantum.qft import qft_probabilities_of_coset

__all__ = [
    "AbelianHSPOracle",
    "TupleFunctionOracle",
    "SubgroupStructureOracle",
    "FourierSampler",
]

Vector = Tuple[int, ...]


class AbelianHSPOracle(abc.ABC):
    """An Abelian HSP instance over ``Z_{s1} x ... x Z_{sr}``.

    Concrete oracles provide ``evaluate`` (the hiding function) and
    ``kernel_generators`` (the coset structure used by the analytic backend
    and by verification).  ``kernel_generators`` is *simulation-side*
    information: solver logic only consumes the samples produced by
    :class:`FourierSampler`.
    """

    def __init__(self, moduli: Sequence[int], counter: Optional[QueryCounter] = None, description: str = "oracle"):
        self.module = ZModule(moduli)
        self.moduli = self.module.moduli
        self.counter = counter if counter is not None else QueryCounter()
        self.description = description

    @abc.abstractmethod
    def evaluate(self, element: Vector):
        """The hiding function value on ``element`` (hashable)."""

    def evaluate_many(self, elements: Sequence[Vector]) -> List:
        """Batch evaluation; same values as the scalar loop.

        Subclasses with a vectorisable labelling override this (the
        statevector backend's domain scan calls it once per oracle).
        """
        return [self.evaluate(x) for x in elements]

    @abc.abstractmethod
    def kernel_generators(self) -> List[Vector]:
        """Generators of the hidden subgroup (declared or computed once)."""

    def domain_size(self) -> int:
        return self.module.order

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.description}, moduli={self.moduli})"


class TupleFunctionOracle(AbelianHSPOracle):
    """An Abelian HSP oracle defined by an arbitrary labelling function.

    If the hidden subgroup is not declared at construction time it is
    computed (once, lazily) by enumerating the domain and collecting the
    coset of the identity — the same work the statevector backend performs.
    ``max_enumeration`` bounds that cost; larger domains must declare their
    kernel.
    """

    def __init__(
        self,
        moduli: Sequence[int],
        func: Callable[[Vector], object],
        declared_kernel: Optional[Sequence[Vector]] = None,
        counter: Optional[QueryCounter] = None,
        description: str = "function oracle",
        max_enumeration: int = 1 << 18,
    ):
        super().__init__(moduli, counter, description)
        self._func = func
        self._declared = [self.module.reduce(g) for g in declared_kernel] if declared_kernel is not None else None
        self._kernel_cache: Optional[List[Vector]] = None
        self._value_cache: Dict[Vector, object] = {}
        self.max_enumeration = max_enumeration

    def evaluate(self, element: Vector):
        element = self.module.reduce(element)
        if element in self._value_cache:
            return self._value_cache[element]
        value = self._func(element)
        self._value_cache[element] = value
        return value

    def kernel_generators(self) -> List[Vector]:
        if self._declared is not None:
            return list(self._declared)
        if self._kernel_cache is None:
            if self.domain_size() > self.max_enumeration:
                raise ValueError(
                    f"domain of size {self.domain_size()} is too large to enumerate; "
                    "declare the kernel or use the statevector backend with a smaller instance"
                )
            identity_label = self.evaluate(self.module.identity())
            kernel = [
                x for x in self.module.elements() if self.evaluate(x) == identity_label
            ]
            self._kernel_cache = canonical_generators(kernel, self.moduli)
        return list(self._kernel_cache)


class SubgroupStructureOracle(AbelianHSPOracle):
    """An oracle whose hidden subgroup is known by construction.

    Evaluation labels cosets through the canonical lattice representative
    (polynomial time), so instances scale to groups of order ``2^60`` and
    beyond; this is the oracle used for the large-scale Abelian HSP scaling
    benchmarks (experiment E1).
    """

    def __init__(
        self,
        moduli: Sequence[int],
        subgroup_generators: Sequence[Vector],
        counter: Optional[QueryCounter] = None,
        description: str = "subgroup oracle",
    ):
        super().__init__(moduli, counter, description)
        self._generators = canonical_generators(subgroup_generators, self.moduli)

    def evaluate(self, element: Vector):
        from repro.linalg.zmodule import coset_representative

        return coset_representative(element, self._generators, self.moduli)

    def evaluate_many(self, elements: Sequence[Vector]) -> List:
        from repro.linalg.zmodule import coset_representative_many

        return coset_representative_many(list(elements), self._generators, self.moduli)

    def kernel_generators(self) -> List[Vector]:
        return list(self._generators)


class FourierSampler:
    """Samples dual-group elements from the Fourier-sampling distribution.

    Parameters
    ----------
    backend:
        ``"analytic"``, ``"statevector"`` or ``"auto"`` (statevector when the
        domain fits under ``statevector_limit``, analytic otherwise).
    rng:
        NumPy random generator (reproducibility of every experiment).
    statevector_limit:
        Largest domain size simulated with the dense backend under ``auto``.
    batch:
        When true (the default) the backends amortise work across rounds:
        the statevector backend partitions the domain into cosets *once per
        oracle* and caches the per-coset Fourier distributions, and the
        analytic backend caches the dual decomposition and draws whole
        coefficient blocks with vectorised lattice arithmetic.  ``False``
        reproduces the original per-round scalar simulation (the comparison
        baseline of ``benchmarks/bench_engine.py``).  The sampling
        distribution and the query accounting are identical either way.
    shards:
        Default shard count for batch requests.  A sharded request draws all
        randomness up front on the sampler's own generator — in exactly the
        order the unsharded batch path would — and splits only the
        coefficient-to-sample lattice combination into per-block-of-rounds
        tasks, so the returned samples and the query accounting are
        byte-identical to the unsharded path at a fixed seed, whether the
        blocks run inline or on a worker pool.
    shard_pool:
        Default executor for shard tasks (anything with an ``Executor.map``
        interface).  ``None`` runs the shard blocks inline, which still
        produces the same samples; the per-oracle caches shipped to workers
        (coset-probability arrays, dual decompositions) are plain
        NumPy/tuple data and pickle cheaply.
    """

    def __init__(
        self,
        backend: str = "auto",
        rng: Optional[np.random.Generator] = None,
        statevector_limit: int = 1 << 14,
        batch: bool = True,
        shards: Optional[int] = None,
        shard_pool=None,
    ):
        if backend not in ("auto", "analytic", "statevector"):
            raise ValueError(f"unknown backend {backend!r}")
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be a positive integer, got {shards}")
        if shards is not None and not batch:
            raise ValueError("sharded sampling requires the batch path (batch=True)")
        self.backend = backend
        self.rng = rng if rng is not None else np.random.default_rng()
        self.statevector_limit = statevector_limit
        self.batch = batch
        self.shards = shards
        self.shard_pool = shard_pool
        self.noise = None

    def attach_noise(self, channel) -> None:
        """Install a sample-corruption channel (``sample-depolarise``).

        The channel owns its generator (derived from the run's SeedSequence)
        and is applied to every batch *after* the samples are produced — in
        the parent, after any shard combination — so corruption randomness
        is drawn in the same serial order whatever the shard count, and the
        sampler's main stream is never perturbed.  Query accounting is
        untouched: a corrupted round still counts as one quantum query.
        """
        if self.noise is not None:
            raise ValueError("a noise channel is already installed on this sampler")
        self.noise = channel

    # -- public API --------------------------------------------------------------
    def sample(
        self,
        oracle: AbelianHSPOracle,
        count: int = 1,
        shards: Optional[int] = None,
        pool=None,
    ) -> List[Vector]:
        """Draw ``count`` independent Fourier samples (elements of ``H^perp``).

        Each sample accounts for one quantum query regardless of backend, of
        batching and of sharding, so a batched request for ``count`` rounds
        reports the same totals as ``count`` scalar requests.  ``shards`` and
        ``pool`` override the sampler-level defaults for this request; see
        the class docstring for the sharding contract.
        """
        if count <= 0:
            raise ValueError(f"sample requires a positive count, got {count}")
        shards = shards if shards is not None else self.shards
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be a positive integer, got {shards}")
        pool = pool if pool is not None else self.shard_pool
        if not self.batch and shards is not None:
            raise ValueError("sharded sampling requires the batch path (batch=True)")
        backend = self._resolve_backend(oracle)
        oracle.counter.quantum_queries += count
        with obs_span("sampler.batch", backend=backend, batch=self.batch) as sampler_span:
            sampler_span.add("samples", count)
            if shards is not None:
                sampler_span.set(shards=shards)
            if not self.batch:
                if backend == "statevector":
                    samples = [self._sample_statevector(oracle) for _ in range(count)]
                else:
                    samples = [self._sample_analytic(oracle) for _ in range(count)]
            elif backend == "statevector":
                samples = self._sample_statevector_batch(oracle, count, shards=shards, pool=pool)
            else:
                samples = self._sample_analytic_batch(oracle, count, shards=shards, pool=pool)
        if self.noise is not None:
            samples = self.noise.corrupt(samples, oracle.module.moduli)
        return samples

    def _resolve_backend(self, oracle: AbelianHSPOracle) -> str:
        if self.backend != "auto":
            return self.backend
        return "statevector" if oracle.domain_size() <= self.statevector_limit else "analytic"

    # -- statevector backend ---------------------------------------------------------
    def _sample_statevector(self, oracle: AbelianHSPOracle) -> Vector:
        module = oracle.module
        moduli = module.moduli
        # Evaluate the oracle over the whole domain (the superposition query).
        labels: Dict[object, List[Vector]] = {}
        for x in module.elements():
            labels.setdefault(oracle.evaluate(x), []).append(x)
        # Measuring the value register selects a coset uniformly (all cosets
        # have |H| elements).
        keys = sorted(labels.keys(), key=repr)
        chosen = keys[int(self.rng.integers(0, len(keys)))]
        indicator = np.zeros(moduli, dtype=np.float64)
        for x in labels[chosen]:
            indicator[x] = 1.0
        probabilities = qft_probabilities_of_coset(indicator)
        flat = probabilities.reshape(-1)
        outcome = int(self.rng.choice(len(flat), p=flat))
        return tuple(int(v) for v in np.unravel_index(outcome, tuple(moduli)))

    # -- batched statevector backend ---------------------------------------------
    def _sample_statevector_batch(
        self,
        oracle: AbelianHSPOracle,
        count: int,
        shards: Optional[int] = None,
        pool=None,
    ) -> List[Vector]:
        """Dense simulation with the per-oracle measurement distribution cached.

        The measurement distribution of the Fourier-transformed coset state
        is independent of the coset offset (uniform on ``H^perp``; see
        :func:`~repro.quantum.qft.qft_probabilities_of_coset`), so the
        distribution of the identity coset — collected in one domain scan,
        the classical cost of simulating the superposition query — serves
        every round.  Only the probability array is retained on the oracle.
        Sharding splits the outcome-to-tuple decoding per block of rounds;
        the outcomes themselves are drawn here, on the sampler's generator.
        """
        module = oracle.module
        shape = tuple(module.moduli)
        flat = getattr(oracle, "_coset_probability_cache", None)
        if flat is None:
            identity_label = oracle.evaluate(module.identity())
            # One batched oracle scan over the domain (iteration order is the
            # C order of the moduli shape, so flat indexing lines up with the
            # per-tuple assignment of the scalar path).
            labels = oracle.evaluate_many(list(module.elements()))
            indicator = np.zeros(shape, dtype=np.float64)
            indicator.reshape(-1)[
                [i for i, label in enumerate(labels) if label == identity_label]
            ] = 1.0
            flat = qft_probabilities_of_coset(indicator).reshape(-1)
            oracle._coset_probability_cache = flat
        outcomes = self.rng.choice(flat.size, p=flat, size=count)
        if shards is None or shards <= 1:
            return _unravel_outcomes(shape, outcomes)
        tasks = [
            ("statevector", shape, block) for block in _split_rounds(outcomes, count, shards)
        ]
        return _run_shard_tasks(tasks, pool)

    # -- analytic backend ----------------------------------------------------------------
    def _dual_structure(self, oracle: AbelianHSPOracle):
        """Cached ``(dual generators, cyclic decomposition)`` of ``H^perp``."""
        cached = getattr(oracle, "_dual_structure_cache", None)
        if cached is None:
            module = oracle.module
            dual_generators = annihilator(oracle.kernel_generators(), module.moduli)
            decomposition = (
                cyclic_decomposition(dual_generators, module.moduli) if dual_generators else []
            )
            cached = (dual_generators, decomposition)
            oracle._dual_structure_cache = cached
        return cached

    def _sample_analytic_batch(
        self,
        oracle: AbelianHSPOracle,
        count: int,
        shards: Optional[int] = None,
        pool=None,
    ) -> List[Vector]:
        """Vectorised uniform sampling from ``H^perp`` (cached decomposition).

        Coefficient blocks are drawn in one generator call each and combined
        with modular NumPy arithmetic when every modulus fits comfortably in
        ``int64``; larger moduli fall back to exact per-sample big-integer
        lattice arithmetic (still with the cached decomposition).  All
        coefficients are drawn here, in the exact order the unsharded path
        draws them; sharding distributes only the per-row lattice
        combination, so the samples are identical either way.
        """
        module = oracle.module
        _, decomposition = self._dual_structure(oracle)
        if not decomposition:
            return [module.identity()] * count
        generators = [generator for generator, _ in decomposition]
        # Decide vectorisability on Python ints BEFORE any int64 conversion:
        # moduli of 2^63 and beyond must reach the exact big-integer fallback
        # rather than overflow in np.asarray.
        vectorisable = max(int(m) for m in module.moduli) <= (1 << 31) and all(
            order < (1 << 62) for _, order in decomposition
        )
        if vectorisable:
            coefficients = np.empty((count, len(decomposition)), dtype=np.int64)
            for j, (_, order) in enumerate(decomposition):
                coefficients[:, j] = self.rng.integers(0, int(order), size=count, dtype=np.int64)
            if shards is None or shards <= 1:
                return _combine_analytic_vectorised(module.moduli, generators, coefficients)
            tasks = [
                ("analytic-vectorised", module.moduli, generators, block)
                for block in _split_rounds(coefficients, count, shards)
            ]
            return _run_shard_tasks(tasks, pool)
        coefficient_rows = [
            [self._uniform_below(int(order)) for _, order in decomposition] for _ in range(count)
        ]
        if shards is None or shards <= 1:
            return _combine_analytic_exact(module.moduli, generators, coefficient_rows)
        tasks = [
            ("analytic-exact", module.moduli, generators, block)
            for block in _split_rounds(coefficient_rows, count, shards)
        ]
        return _run_shard_tasks(tasks, pool)

    def _uniform_below(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)`` supporting arbitrary-size bounds."""
        if bound <= (1 << 62):
            return int(self.rng.integers(0, bound))
        bits = bound.bit_length()
        chunks = (bits + 61) // 62
        while True:
            value = 0
            for _ in range(chunks):
                value = (value << 62) | int(self.rng.integers(0, 1 << 62))
            value >>= chunks * 62 - bits
            if value < bound:
                return value

    def _sample_analytic(self, oracle: AbelianHSPOracle) -> Vector:
        module = oracle.module
        kernel = oracle.kernel_generators()
        dual_generators = annihilator(kernel, module.moduli)
        if not dual_generators:
            return module.identity()
        decomposition = cyclic_decomposition(dual_generators, module.moduli)
        sample = module.identity()
        for generator, order in decomposition:
            coefficient = int(self.rng.integers(0, order))
            sample = module.add(sample, module.scalar(coefficient, generator))
        return sample

    # -- diagnostics -----------------------------------------------------------------------
    def exact_distribution(self, oracle: AbelianHSPOracle) -> np.ndarray:
        """The exact sampling distribution (uniform over ``H^perp``) as an array.

        Used by statistical tests to cross-validate the two backends.
        """
        module = oracle.module
        dual = annihilator(oracle.kernel_generators(), module.moduli)
        distribution = np.zeros(module.moduli, dtype=np.float64)
        elements = module.subgroup_elements(dual) if dual else [module.identity()]
        weight = 1.0 / len(elements)
        for y in elements:
            distribution[y] = weight
        return distribution


# ---------------------------------------------------------------------------
# Shard workers: pure module-level functions over picklable per-oracle data
# (the coset-probability array / dual decomposition cached on the oracle),
# so process pools can run blocks of rounds without touching oracles, rngs
# or counters.  The parent draws every random coefficient beforehand.
# ---------------------------------------------------------------------------


def _split_rounds(rows, count: int, shards: int) -> List:
    """Contiguous blocks of ``rows`` (len ``count``) for ``shards`` workers."""
    shards = max(1, min(int(shards), count))
    base, remainder = divmod(count, shards)
    blocks = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < remainder else 0)
        blocks.append(rows[start : start + size])
        start += size
    return blocks


def _unravel_outcomes(shape: Tuple[int, ...], outcomes) -> List[Vector]:
    return [tuple(int(v) for v in np.unravel_index(int(outcome), shape)) for outcome in outcomes]


def _combine_analytic_vectorised(moduli, generators, coefficients) -> List[Vector]:
    moduli_arr = np.asarray(moduli, dtype=np.int64)
    values = np.zeros((len(coefficients), moduli_arr.size), dtype=np.int64)
    for j, generator in enumerate(generators):
        reduced = coefficients[:, j][:, None] % moduli_arr[None, :]
        values = (values + reduced * (np.asarray(generator, dtype=np.int64) % moduli_arr)) % moduli_arr
    return [tuple(int(v) for v in row) for row in values]


def _combine_analytic_exact(moduli, generators, coefficient_rows) -> List[Vector]:
    module = ZModule(moduli)
    samples = []
    for row in coefficient_rows:
        sample = module.identity()
        for generator, coefficient in zip(generators, row):
            sample = module.add(sample, module.scalar(int(coefficient), generator))
        samples.append(sample)
    return samples


def _sampler_shard_worker(task):
    """Dispatch one shard task (kind, ...payload) to its combination routine."""
    kind = task[0]
    if kind == "statevector":
        _, shape, outcomes = task
        return _unravel_outcomes(shape, outcomes)
    _, moduli, generators, coefficients = task
    if kind == "analytic-vectorised":
        return _combine_analytic_vectorised(moduli, generators, coefficients)
    if kind == "analytic-exact":
        return _combine_analytic_exact(moduli, generators, coefficients)
    raise ValueError(f"unknown shard task kind {kind!r}")


def _run_shard_tasks(tasks, pool) -> List[Vector]:
    """Run shard tasks inline or on a pool; concatenation preserves order."""
    if pool is None:
        parts = [_sampler_shard_worker(task) for task in tasks]
    else:
        parts = list(pool.map(_sampler_shard_worker, tasks))
    samples: List[Vector] = []
    for part in parts:
        samples.extend(part)
    return samples
