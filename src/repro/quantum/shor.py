"""Shor-style primitives: period finding, order finding, discrete logs, factoring.

The paper uses these as black-box polynomial-time quantum subroutines
(hypotheses (a)/(b) of Theorem 4 and Corollary 5): computing the orders of
group elements, factoring those orders, and taking discrete logarithms in
finite fields.  This module provides them in two forms:

* **gate-level demonstrations** on the dense simulator
  (:func:`shor_period_gate_level`, :func:`quantum_factor`) — honest
  end-to-end runs of the textbook circuits, feasible for small moduli; and

* **accounted oracles** (:func:`quantum_element_order`,
  :func:`quantum_discrete_log`) — exact classical computations whose use is
  recorded in a :class:`~repro.blackbox.oracle.QueryCounter` under the keys
  ``order_oracle_calls`` / ``dlog_oracle_calls``.  These stand in for the
  quantum subroutines at scales beyond state-vector simulation; the
  substitution is documented in DESIGN.md and the gate-level versions are
  cross-checked against them in the test-suite.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.blackbox.oracle import QueryCounter
from repro.groups.base import FiniteGroup
from repro.linalg.modular import discrete_log as classical_discrete_log
from repro.linalg.modular import factorint, is_probable_prime
from repro.quantum.sampling import FourierSampler, TupleFunctionOracle
from repro.quantum.state import RegisterState

__all__ = [
    "continued_fraction_convergents",
    "shor_period_gate_level",
    "quantum_element_order",
    "quantum_discrete_log",
    "quantum_factor",
    "order_via_period_sampling",
]


# ---------------------------------------------------------------------------
# Continued fractions (classical post-processing of Shor's algorithm)
# ---------------------------------------------------------------------------


def continued_fraction_convergents(numerator: int, denominator: int) -> List[Fraction]:
    """All convergents of the continued fraction expansion of ``numerator/denominator``."""
    convergents: List[Fraction] = []
    a, b = numerator, denominator
    quotients: List[int] = []
    while b:
        quotients.append(a // b)
        a, b = b, a % b
    for length in range(1, len(quotients) + 1):
        value = Fraction(quotients[length - 1])
        for q in reversed(quotients[: length - 1]):
            value = q + 1 / value
        convergents.append(Fraction(value))
    return convergents


# ---------------------------------------------------------------------------
# Gate-level period finding (textbook Shor on the dense simulator)
# ---------------------------------------------------------------------------


def shor_period_gate_level(
    a: int,
    modulus: int,
    rng: np.random.Generator,
    max_attempts: int = 20,
) -> int:
    """Find the multiplicative order of ``a`` modulo ``modulus`` with the Shor circuit.

    Uses a control register of dimension ``2^t`` with ``modulus^2 <= 2^t``,
    the modular exponentiation oracle on the simulator, a QFT and continued
    fraction post-processing.  Exponential-memory simulation — intended for
    small moduli (``modulus <= ~64``) in tests and examples.
    """
    if gcd(a, modulus) != 1:
        raise ValueError("a must be a unit modulo the modulus")
    t = 1
    while (1 << t) < modulus * modulus:
        t += 1
    control_dim = 1 << t

    # Precompute the modular powers so the oracle application is a table lookup.
    powers = np.empty(control_dim, dtype=np.int64)
    value = 1
    for k in range(control_dim):
        powers[k] = value
        value = value * a % modulus

    for _ in range(max_attempts):
        state = RegisterState.uniform((control_dim, modulus), axes=(0,))
        state.apply_classical_function(lambda xs: int(powers[xs[0]]), source_axes=(0,), target_axis=1)
        state.measure((1,), rng)          # collapse the work register
        state.inverse_qft(axes=(0,))      # Fourier transform the control register
        outcome = state.measure((0,), rng)[0]
        if outcome == 0:
            continue
        for convergent in continued_fraction_convergents(outcome, control_dim):
            r = convergent.denominator
            if 0 < r <= modulus and pow(a, r, modulus) == 1:
                return r
        # Retry with a fresh run on failure (standard Shor repetition).
    raise RuntimeError("period finding failed to converge within the attempt budget")


# ---------------------------------------------------------------------------
# Accounted oracles
# ---------------------------------------------------------------------------


def quantum_element_order(
    group: FiniteGroup,
    element,
    counter: Optional[QueryCounter] = None,
    exponent: Optional[int] = None,
) -> int:
    """Order of a black-box group element, accounted as one order-oracle call.

    On a quantum computer this is Shor order finding over the cyclic group
    generated by the element (the paper's Section 4.1); here the order is
    computed exactly through the concrete group structure and the call is
    recorded in the counter.
    """
    if counter is not None:
        counter.bump("order_oracle_calls")
    return group.element_order(element, exponent)


def order_via_period_sampling(
    group: FiniteGroup,
    element,
    exponent: int,
    sampler: Optional[FourierSampler] = None,
    counter: Optional[QueryCounter] = None,
    rounds: int = 24,
) -> int:
    """Order finding phrased as an Abelian HSP over ``Z_exponent``.

    The function ``k -> g^k`` on ``Z_exponent`` (``exponent`` a known multiple
    of the order, e.g. the group exponent) hides the subgroup generated by
    the order ``r``; Fourier samples are uniform multiples of ``exponent/r``
    and their gcd reveals ``r``.  This follows the paper's use of order
    finding as a special case of the Abelian HSP and exercises the same
    sampling machinery as every other solver in the package.
    """
    sampler = sampler if sampler is not None else FourierSampler(backend="auto")
    order = group.element_order(element, exponent)  # declared structure for the analytic backend

    def label(x: Tuple[int, ...]):
        return group.encode(group.power(element, int(x[0])))

    oracle = TupleFunctionOracle(
        [exponent],
        label,
        declared_kernel=[(order,)] if exponent % order == 0 else None,
        counter=counter if counter is not None else QueryCounter(),
        description=f"order finding for {group.name}",
    )
    samples = sampler.sample(oracle, rounds)
    divisor = exponent
    for (y,) in samples:
        divisor = gcd(divisor, y)
    recovered = exponent // divisor if divisor else 1
    # The gcd may land on a proper divisor of exponent/r with tiny probability;
    # fall back to the declared order if the reconstruction is inconsistent.
    if group.is_identity(group.power(element, recovered)):
        return recovered
    return order


def quantum_discrete_log(
    base: int,
    target: int,
    modulus: int,
    counter: Optional[QueryCounter] = None,
    order: Optional[int] = None,
) -> int:
    """Discrete logarithm in ``Z_modulus^*``, accounted as one dlog-oracle call.

    Hypothesis (b) of Theorem 4.  Classically computed (baby-step/giant-step);
    each call is recorded so benchmark reports can show how many dlog oracle
    invocations an algorithm performs.
    """
    if counter is not None:
        counter.bump("dlog_oracle_calls")
    return classical_discrete_log(base, target, modulus, order)


def quantum_factor(
    n: int,
    rng: Optional[np.random.Generator] = None,
    counter: Optional[QueryCounter] = None,
    gate_level_limit: int = 64,
) -> dict:
    """Factor ``n``: gate-level Shor for small ``n``, accounted oracle otherwise.

    Returns the full prime factorisation.  For ``n`` up to
    ``gate_level_limit`` the factors of the odd non-prime-power part are
    found with honest Shor runs (random base, gate-level period finding,
    gcd extraction); larger inputs use the exact classical factoriser and a
    counter entry ``factor_oracle_calls``.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if counter is not None:
        counter.bump("factor_oracle_calls")
    if n <= gate_level_limit and n > 3 and n % 2 == 1 and not is_probable_prime(n):
        for _ in range(32):
            a = int(rng.integers(2, n))
            g = gcd(a, n)
            if g > 1:
                return _merge_factorisations(factorint(g), factorint(n // g))
            r = shor_period_gate_level(a, n, rng)
            if r % 2 == 0:
                half = pow(a, r // 2, n)
                if half != n - 1:
                    p = gcd(half - 1, n)
                    q = gcd(half + 1, n)
                    if 1 < p < n:
                        return _merge_factorisations(factorint(p), factorint(n // p))
                    if 1 < q < n:
                        return _merge_factorisations(factorint(q), factorint(n // q))
    return factorint(n)


def _merge_factorisations(a: dict, b: dict) -> dict:
    merged = dict(a)
    for prime, multiplicity in b.items():
        merged[prime] = merged.get(prime, 0) + multiplicity
    return merged
