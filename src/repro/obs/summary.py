"""Summarise JSONL trace files into a per-phase time/counter breakdown."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from repro.obs.metrics import Metrics

__all__ = ["format_trace_summary", "load_trace_events", "summarise_trace"]


def load_trace_events(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Parse trace events from one or more JSONL files.

    Unparseable lines are skipped (concurrent writers make a torn final line
    possible); missing files raise so typos surface loudly.
    """

    events: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                except ValueError:
                    continue
                if isinstance(parsed, dict) and "event" in parsed:
                    events.append(parsed)
    return events


def _phase_of(name: str) -> str:
    """The phase bucket of a span/timer name: the prefix before the first dot.

    ``engine.build``, ``engine.fill.mul`` and ``engine.bulk.products`` all
    land in the ``engine`` bucket; ``sampler.batch`` in ``sampler``;
    ``noise.oracle_flip`` and ``noise.depolarise`` in ``noise`` (so a noisy
    run's corruption cost shows up as its own phase); a name without a dot
    is its own bucket.
    """
    return name.split(".", 1)[0]


def summarise_trace(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate span durations/counters and merge embedded metrics snapshots.

    Returns ``{"spans": {name: {count, total_s, mean_s, max_s, counters}},
    "phases": {prefix: {span_count, span_s, timer_count, timer_s}},
    "metrics": snapshot, "events": n, "workers": [...]}``.  Phases bucket
    spans and metric timers by their name prefix (before the first dot), so
    the engine's bulk-fill and batch-kernel work shows up as one ``engine``
    line next to ``solver`` and ``sampler``.  Nested spans each count their
    own wall time, so phase shares are of summed span time, not wall-clock.
    """

    spans: Dict[str, Dict[str, Any]] = {}
    merged = Metrics()
    workers = set()
    total = 0
    for entry in events:
        total += 1
        worker = entry.get("worker")
        if worker is None:
            worker = f"pid-{entry.get('pid', '?')}"
        workers.add(str(worker))
        if entry.get("event") == "span":
            name = str(entry.get("name", "?"))
            duration = float(entry.get("dur", 0.0))
            bucket = spans.setdefault(
                name,
                {"count": 0, "total_s": 0.0, "max_s": 0.0, "errors": 0, "counters": {}},
            )
            bucket["count"] += 1
            bucket["total_s"] += duration
            if duration > bucket["max_s"]:
                bucket["max_s"] = duration
            if "error" in entry:
                bucket["errors"] += 1
            for key, value in (entry.get("counters") or {}).items():
                bucket["counters"][key] = bucket["counters"].get(key, 0) + int(value)
        elif "metrics" in entry:
            merged.merge(Metrics.from_snapshot(entry["metrics"]))
    for bucket in spans.values():
        bucket["mean_s"] = bucket["total_s"] / bucket["count"]
    snapshot = merged.snapshot()
    phases: Dict[str, Dict[str, Any]] = {}

    def phase_bucket(name: str) -> Dict[str, Any]:
        return phases.setdefault(
            _phase_of(name),
            {"span_count": 0, "span_s": 0.0, "timer_count": 0, "timer_s": 0.0},
        )

    for name, bucket in spans.items():
        phase = phase_bucket(name)
        phase["span_count"] += bucket["count"]
        phase["span_s"] += bucket["total_s"]
    for name, timing in snapshot.get("timings", {}).items():
        phase = phase_bucket(name)
        phase["timer_count"] += int(timing["count"])
        phase["timer_s"] += float(timing["total"])
    return {
        "spans": {name: spans[name] for name in sorted(spans)},
        "phases": {name: phases[name] for name in sorted(phases)},
        "metrics": snapshot,
        "events": total,
        "workers": sorted(workers),
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s"
    return f"{seconds * 1e3:7.2f}ms"


def format_trace_summary(summary: Dict[str, Any]) -> str:
    """Render a summary as an ASCII table (per-phase time, then counters)."""

    lines: List[str] = []
    workers = summary.get("workers", [])
    lines.append(
        f"{summary.get('events', 0)} trace event(s) from "
        f"{len(workers)} writer(s): {', '.join(workers) if workers else '-'}"
    )
    phases = summary.get("phases", {})
    if phases:
        span_total = sum(bucket["span_s"] for bucket in phases.values())
        ordered = sorted(
            phases.items(), key=lambda item: (-item[1]["span_s"], -item[1]["timer_s"])
        )
        name_width = max(len("phase"), max(len(name) for name, _ in ordered))
        lines.append("")
        lines.append(
            f"  {'phase'.ljust(name_width)}  {'spans':>6}  {'span total':>10}  "
            f"{'share':>6}  {'timers':>6}  {'timer total':>11}"
        )
        for name, bucket in ordered:
            share = bucket["span_s"] / span_total if span_total else 0.0
            lines.append(
                f"  {name.ljust(name_width)}  {bucket['span_count']:>6}  "
                f"{_fmt_seconds(bucket['span_s']):>10}  {share:>5.1%}  "
                f"{bucket['timer_count']:>6}  {_fmt_seconds(bucket['timer_s']):>11}"
            )
    spans = summary.get("spans", {})
    if spans:
        ordered = sorted(spans.items(), key=lambda item: -item[1]["total_s"])
        name_width = max(len("phase"), max(len(name) for name, _ in ordered))
        lines.append("")
        lines.append(
            f"  {'phase'.ljust(name_width)}  {'calls':>6}  {'total':>9}  "
            f"{'mean':>9}  {'max':>9}  counters"
        )
        for name, bucket in ordered:
            counters = bucket.get("counters", {})
            counter_text = " ".join(
                f"{key}={counters[key]}" for key in sorted(counters)
            )
            if bucket.get("errors"):
                counter_text = (f"errors={bucket['errors']} " + counter_text).strip()
            lines.append(
                f"  {name.ljust(name_width)}  {bucket['count']:>6}  "
                f"{_fmt_seconds(bucket['total_s'])}  {_fmt_seconds(bucket['mean_s'])}  "
                f"{_fmt_seconds(bucket['max_s'])}  {counter_text}"
            )
    metrics = summary.get("metrics", {})
    timings = metrics.get("timings", {})
    if timings:
        name_width = max(len("timer"), max(len(name) for name in timings))
        lines.append("")
        lines.append(f"  {'timer'.ljust(name_width)}  {'calls':>6}  {'total':>9}  {'mean':>9}")
        for name in sorted(timings, key=lambda key: -timings[key]["total"]):
            bucket = timings[name]
            calls = int(bucket["count"])
            mean = bucket["total"] / calls if calls else 0.0
            lines.append(
                f"  {name.ljust(name_width)}  {calls:>6}  "
                f"{_fmt_seconds(bucket['total'])}  {_fmt_seconds(mean)}"
            )
    counters = metrics.get("counters", {})
    if counters:
        lines.append("")
        lines.append("  metric counters:")
        for name in sorted(counters):
            lines.append(f"    {name} = {counters[name]}")
    return "\n".join(lines)
