"""Span tracing to JSONL files.

A :class:`Tracer` is installed per process (see ``repro.obs.configure``);
instrumented code calls the module-level :func:`span` / :func:`event`
helpers, which collapse to a shared no-op singleton when no tracer is
installed so the disabled cost is one attribute load and a ``None`` check.

Each completed span emits one line::

    {"event": "span", "name": "run", "span": "4242-7", "parent": "4242-6",
     "ts": 1700000000.0, "dur": 0.0123, "pid": 4242, "worker": "w1",
     "attrs": {...}, "counters": {...}}

Span ids are ``"<pid>-<n>"`` so files appended to by several worker
processes stay globally consistent.  Lines are written with a single
``write()`` of a complete line in append mode, which keeps concurrent
appends from interleaving on POSIX filesystems.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_tracer",
    "enabled",
    "event",
    "install_tracer",
    "span",
    "tracing",
]

_EMIT_LOCK = threading.Lock()


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def add(self, name: str, amount: int = 1) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class Span:
    """A timed region; use as a context manager via :func:`span`."""

    __slots__ = ("tracer", "name", "attrs", "counters", "span_id", "parent_id", "_ts", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.counters: Dict[str, int] = {}
        self.span_id = tracer._next_id()
        self.parent_id: Optional[str] = None
        self._ts = 0.0
        self._start = 0.0

    def __enter__(self) -> "Span":
        stack = self.tracer._stack
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        duration = time.perf_counter() - self._start
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: unwind past mis-nested spans
            while stack and stack[-1] is not self:
                stack.pop()
            if stack:
                stack.pop()
        payload: Dict[str, Any] = {
            "event": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "ts": round(self._ts, 6),
            "dur": round(duration, 9),
        }
        if exc_type is not None:
            payload["error"] = exc_type.__name__
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.counters:
            payload["counters"] = self.counters
        self.tracer.emit(payload)
        return False

    def add(self, name: str, amount: int = 1) -> None:
        """Attach (or bump) a counter reported with the span."""

        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered after the span opened."""

        self.attrs.update(attrs)


class Tracer:
    """Appends JSONL trace events to ``path``."""

    def __init__(self, path: str, worker: Optional[str] = None) -> None:
        self.path = os.fspath(path)
        self.worker = worker
        self._pid = os.getpid()
        self._counter = 0
        self._stack: List[Span] = []
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self._pid}-{self._counter}"

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def event(self, name: str, **fields: Any) -> None:
        payload: Dict[str, Any] = {"event": name, "ts": round(time.time(), 6)}
        payload.update(fields)
        self.emit(payload)

    def emit(self, payload: Dict[str, Any]) -> None:
        payload.setdefault("pid", self._pid)
        if self.worker is not None:
            payload.setdefault("worker", self.worker)
        line = json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        with _EMIT_LOCK:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)


_TRACER: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or clear, with None) the process tracer; returns the previous one."""

    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def span(name: str, **attrs: Any) -> Any:
    """A context-manager span, or the shared no-op when tracing is off."""

    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **fields: Any) -> None:
    """Emit a standalone (non-span) trace event when tracing is on."""

    tracer = _TRACER
    if tracer is not None:
        tracer.event(name, **fields)


@contextmanager
def tracing(path: str, worker: Optional[str] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of the block."""

    tracer = Tracer(path, worker=worker)
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
