"""Process-local metrics registry: counters, gauges, and timing histograms.

The registry mirrors the ``QueryCounter`` discipline used by the black-box
oracle layer: cheap in-process accumulation, a ``snapshot()`` that is plain
JSON data, ``from_snapshot`` to rehydrate, and ``+`` to merge snapshots taken
in different worker processes.  Collection is off by default; every helper is
a no-op until :func:`set_collecting` (normally via ``repro.obs.configure``)
turns it on, so instrumented hot paths cost one boolean check when disabled.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional

__all__ = [
    "Metrics",
    "collecting",
    "count",
    "gauge",
    "get_metrics",
    "observe",
    "reset_metrics",
    "set_collecting",
    "timed",
    "timed_call",
]

_COLLECTING = False


def collecting() -> bool:
    """Return True when the module-level registry is accepting samples."""

    return _COLLECTING


def set_collecting(on: bool) -> bool:
    """Toggle collection; returns the previous state so callers can restore."""

    global _COLLECTING
    previous = _COLLECTING
    _COLLECTING = bool(on)
    return previous


class Metrics:
    """Counters, gauges, and timing histograms for one process."""

    __slots__ = ("counters", "gauges", "timings")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.timings: Dict[str, Dict[str, float]] = {}

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, seconds: float) -> None:
        seconds = float(seconds)
        bucket = self.timings.get(name)
        if bucket is None:
            self.timings[name] = {
                "count": 1,
                "total": seconds,
                "min": seconds,
                "max": seconds,
            }
            return
        bucket["count"] += 1
        bucket["total"] += seconds
        if seconds < bucket["min"]:
            bucket["min"] = seconds
        if seconds > bucket["max"]:
            bucket["max"] = seconds

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy of the registry state."""

        return {
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "timings": {
                name: dict(self.timings[name]) for name in sorted(self.timings)
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, Any]) -> "Metrics":
        metrics = cls()
        for name, value in snapshot.get("counters", {}).items():
            metrics.counters[name] = int(value)
        for name, value in snapshot.get("gauges", {}).items():
            metrics.gauges[name] = float(value)
        for name, bucket in snapshot.get("timings", {}).items():
            metrics.timings[name] = {
                "count": int(bucket["count"]),
                "total": float(bucket["total"]),
                "min": float(bucket["min"]),
                "max": float(bucket["max"]),
            }
        return metrics

    def merge(self, other: "Metrics") -> "Metrics":
        """Fold ``other`` into this registry (counters add, gauges last-wins,
        histogram buckets combine)."""

        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, bucket in other.timings.items():
            mine = self.timings.get(name)
            if mine is None:
                self.timings[name] = dict(bucket)
                continue
            mine["count"] += bucket["count"]
            mine["total"] += bucket["total"]
            mine["min"] = min(mine["min"], bucket["min"])
            mine["max"] = max(mine["max"], bucket["max"])
        return self

    def __add__(self, other: "Metrics") -> "Metrics":
        merged = Metrics().merge(self)
        return merged.merge(other)

    def __radd__(self, other: Any) -> "Metrics":
        if other == 0:  # let sum() start from 0 like QueryCounter does
            return Metrics().merge(self)
        return NotImplemented  # type: ignore[return-value]

    def diff(self, before: Dict[str, Any]) -> Dict[str, Any]:
        """Delta snapshot relative to an earlier ``snapshot()``.

        Counter and histogram count/total values subtract exactly; the
        min/max of a delta window are not recoverable from two snapshots, so
        the reported bounds are the registry-lifetime bounds.
        """

        counters: Dict[str, int] = {}
        old_counters = before.get("counters", {})
        for name in sorted(self.counters):
            delta = self.counters[name] - int(old_counters.get(name, 0))
            if delta:
                counters[name] = delta
        timings: Dict[str, Dict[str, float]] = {}
        old_timings = before.get("timings", {})
        for name in sorted(self.timings):
            bucket = self.timings[name]
            old = old_timings.get(name, {"count": 0, "total": 0.0})
            delta_count = int(bucket["count"]) - int(old["count"])
            if delta_count <= 0:
                continue
            timings[name] = {
                "count": delta_count,
                "total": float(bucket["total"]) - float(old["total"]),
                "min": bucket["min"],
                "max": bucket["max"],
            }
        return {
            "counters": counters,
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "timings": timings,
        }


_METRICS = Metrics()


def get_metrics() -> Metrics:
    """The process-local registry."""

    return _METRICS


def reset_metrics() -> Metrics:
    """Swap in a fresh registry and return it."""

    global _METRICS
    _METRICS = Metrics()
    return _METRICS


def count(name: str, amount: int = 1) -> None:
    if _COLLECTING:
        _METRICS.count(name, amount)


def gauge(name: str, value: float) -> None:
    if _COLLECTING:
        _METRICS.gauge(name, value)


def observe(name: str, seconds: float) -> None:
    if _COLLECTING:
        _METRICS.observe(name, seconds)


@contextmanager
def timed(name: str) -> Iterator[None]:
    """Record the elapsed wall time of the block into histogram ``name``."""

    if not _COLLECTING:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        _METRICS.observe(name, time.perf_counter() - start)


def timed_call(name: Optional[str] = None) -> Callable[[Callable], Callable]:
    """Decorator: record each call's duration into histogram ``name``.

    When collection is off the wrapper costs a single boolean check.
    """

    def decorate(func: Callable) -> Callable:
        label = name if name is not None else func.__qualname__

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _COLLECTING:
                return func(*args, **kwargs)
            start = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                _METRICS.observe(label, time.perf_counter() - start)

        return wrapper

    return decorate
