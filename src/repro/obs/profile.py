"""Opt-in cProfile capture, one ``.pstats`` dump per labelled region.

Disabled unless a profile directory is configured (``--profile DIR`` on the
CLI, or ``repro.obs.configure(profile_dir=...)``); the disabled path is a
single ``None`` check so :func:`profiled` can wrap every run unconditionally.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["get_profile_dir", "profiled", "set_profile_dir"]

_PROFILE_DIR: Optional[str] = None
_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def get_profile_dir() -> Optional[str]:
    return _PROFILE_DIR


def set_profile_dir(path: Optional[str]) -> Optional[str]:
    """Configure (or clear, with None) the dump directory; returns the previous."""

    global _PROFILE_DIR
    previous = _PROFILE_DIR
    _PROFILE_DIR = os.fspath(path) if path is not None else None
    return previous


@contextmanager
def profiled(label: str) -> Iterator[None]:
    """Profile the block and dump ``<dir>/<label>.pstats`` when configured."""

    directory = _PROFILE_DIR
    if directory is None:
        yield
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        os.makedirs(directory, exist_ok=True)
        name = _SAFE.sub("-", label).strip("-") or "profile"
        profiler.dump_stats(os.path.join(directory, f"{name}.pstats"))
