"""Sidecar observability: span tracing, metrics, and opt-in profiling.

Everything here is stdlib-only and off by default.  The hard invariant is
that telemetry never changes experiment outputs — BENCH rows and journal
lines are byte-identical with tracing on or off; traces, metrics, and
profiles only ever land in their own sidecar files.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.obs import metrics as _metrics_mod
from repro.obs import profile as _profile_mod
from repro.obs import trace as _trace_mod
from repro.obs.metrics import (
    Metrics,
    count,
    gauge,
    get_metrics,
    observe,
    reset_metrics,
    timed,
    timed_call,
)
from repro.obs.profile import profiled
from repro.obs.summary import format_trace_summary, load_trace_events, summarise_trace
from repro.obs.trace import NULL_SPAN, Span, Tracer, event, span, tracing

__all__ = [
    "Metrics",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "configure",
    "count",
    "event",
    "format_trace_summary",
    "gauge",
    "get_metrics",
    "load_trace_events",
    "observe",
    "observed",
    "profiled",
    "reset_metrics",
    "restore",
    "span",
    "summarise_trace",
    "timed",
    "timed_call",
    "tracing",
]


def configure(
    trace_path: Optional[str] = None,
    profile_dir: Optional[str] = None,
    worker: Optional[str] = None,
) -> Dict[str, Any]:
    """Install observability sinks process-wide; returns state for :func:`restore`.

    A trace path turns on both span emission and metrics collection (metrics
    ride along inside trace events).  Used directly by pool-worker
    initializers, where the process exits with the pool and nothing needs
    restoring.
    """

    previous = {
        "tracer": _trace_mod.current_tracer(),
        "collecting": _metrics_mod.collecting(),
        "profile_dir": _profile_mod.get_profile_dir(),
    }
    if trace_path is not None:
        _trace_mod.install_tracer(Tracer(trace_path, worker=worker))
        _metrics_mod.set_collecting(True)
    if profile_dir is not None:
        _profile_mod.set_profile_dir(profile_dir)
    return previous


def restore(previous: Dict[str, Any]) -> None:
    """Undo a :func:`configure`."""

    _trace_mod.install_tracer(previous["tracer"])
    _metrics_mod.set_collecting(previous["collecting"])
    _profile_mod.set_profile_dir(previous["profile_dir"])


@contextmanager
def observed(
    trace_path: Optional[str] = None,
    profile_dir: Optional[str] = None,
    worker: Optional[str] = None,
) -> Iterator[Optional[Tracer]]:
    """Scoped :func:`configure`; yields the installed tracer (or None)."""

    if trace_path is None and profile_dir is None:
        yield _trace_mod.current_tracer()
        return
    previous = configure(trace_path, profile_dir=profile_dir, worker=worker)
    try:
        yield _trace_mod.current_tracer()
    finally:
        restore(previous)
