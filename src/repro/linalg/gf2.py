"""Vectorised linear algebra over GF(2).

Theorem 13 of the paper works inside an elementary Abelian normal 2-subgroup
``N`` (a GF(2) vector space) and repeatedly solves Simon-style hidden
subgroup instances over ``Z_2 x N``.  All of the post-processing there —
nullspaces, rank computations, membership in spans, solving linear systems —
happens in GF(2), which this module implements with NumPy ``uint8`` arrays
and whole-row XOR operations (no Python-level loops over matrix entries in
the elimination inner step), following the vectorisation guidance of the HPC
coding guides.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import timed_call

import numpy as np

__all__ = ["GF2Matrix", "gf2_rank", "gf2_nullspace", "gf2_solve", "gf2_rref", "gf2_span_contains"]


def _as_matrix(rows: Sequence[Sequence[int]]) -> np.ndarray:
    mat = np.array(rows, dtype=np.uint8)
    if mat.ndim == 1:
        mat = mat.reshape(1, -1)
    return mat & 1


@timed_call("linalg.gf2_rref")
def gf2_rref(rows: Sequence[Sequence[int]]) -> Tuple[np.ndarray, List[int]]:
    """Reduced row echelon form over GF(2).

    Returns ``(rref_matrix, pivot_columns)``.  The reduction uses boolean
    masking so every elimination step is a single vectorised XOR of the pivot
    row into all rows that currently have a one in the pivot column.
    """
    mat = _as_matrix(rows).copy()
    m, n = mat.shape
    pivots: List[int] = []
    row = 0
    for col in range(n):
        if row >= m:
            break
        pivot_rows = np.nonzero(mat[row:, col])[0]
        if pivot_rows.size == 0:
            continue
        pivot = row + int(pivot_rows[0])
        if pivot != row:
            mat[[row, pivot]] = mat[[pivot, row]]
        # XOR the pivot row into every other row that has a 1 in this column.
        mask = mat[:, col].astype(bool)
        mask[row] = False
        mat[mask] ^= mat[row]
        pivots.append(col)
        row += 1
    return mat, pivots


def gf2_rank(rows: Sequence[Sequence[int]]) -> int:
    """Rank of a GF(2) matrix."""
    _, pivots = gf2_rref(rows)
    return len(pivots)


@timed_call("linalg.gf2_nullspace")
def gf2_nullspace(rows: Sequence[Sequence[int]]) -> np.ndarray:
    """Basis of the right nullspace ``{x : A x = 0}`` over GF(2).

    Returns an array of shape ``(dim_nullspace, n)``; the rows are the basis
    vectors.  This is the classical post-processing step of Simon's algorithm
    and of every ``Z_2 x N`` instance in Theorem 13: the Fourier samples span
    the orthogonal complement and the nullspace recovers the hidden subgroup.
    """
    mat = _as_matrix(rows)
    m, n = mat.shape
    rref, pivots = gf2_rref(mat)
    free_cols = [c for c in range(n) if c not in pivots]
    basis = np.zeros((len(free_cols), n), dtype=np.uint8)
    if free_cols:
        basis[np.arange(len(free_cols)), free_cols] = 1
        if pivots:
            # Basis vector i copies the free column i of the RREF into the
            # pivot coordinates — one transposed slice instead of a loop
            # over matrix entries.
            basis[:, np.asarray(pivots)] = rref[: len(pivots), np.asarray(free_cols)].T
    return basis


@timed_call("linalg.gf2_solve")
def gf2_solve(rows: Sequence[Sequence[int]], rhs: Sequence[int]) -> Optional[np.ndarray]:
    """Solve ``A x = b`` over GF(2); return one solution or ``None``."""
    mat = _as_matrix(rows)
    b = np.array(rhs, dtype=np.uint8).reshape(-1) & 1
    if mat.shape[0] != b.shape[0]:
        raise ValueError("incompatible shapes for gf2_solve")
    augmented = np.concatenate([mat, b.reshape(-1, 1)], axis=1)
    rref, pivots = gf2_rref(augmented)
    n = mat.shape[1]
    if n in pivots:
        return None  # pivot in the augmented column: inconsistent system
    x = np.zeros(n, dtype=np.uint8)
    if pivots:
        x[np.asarray(pivots)] = rref[: len(pivots), n]
    return x


def gf2_span_contains(rows: Sequence[Sequence[int]], vector: Sequence[int]) -> bool:
    """Whether ``vector`` lies in the row span of ``rows`` over GF(2)."""
    mat = _as_matrix(rows)
    if not mat.size:
        return not any(int(v) & 1 for v in vector)
    return gf2_solve(mat.T, vector) is not None


class GF2Matrix:
    """Thin object wrapper bundling a GF(2) matrix with its derived data.

    The wrapper caches the reduced row echelon form so repeated membership
    tests against the same span (the common access pattern in Theorem 13's
    generator-collection loop) do not redo the elimination.
    """

    def __init__(self, rows: Sequence[Sequence[int]] | np.ndarray, ncols: Optional[int] = None):
        if isinstance(rows, np.ndarray) and rows.size == 0 or (not isinstance(rows, np.ndarray) and len(rows) == 0):
            if ncols is None:
                raise ValueError("ncols is required for an empty matrix")
            self._mat = np.zeros((0, ncols), dtype=np.uint8)
        else:
            self._mat = _as_matrix(rows)
        self._rref: Optional[np.ndarray] = None
        self._pivots: Optional[List[int]] = None

    # -- construction helpers -------------------------------------------------
    @classmethod
    def identity(cls, n: int) -> "GF2Matrix":
        return cls(np.eye(n, dtype=np.uint8))

    @classmethod
    def zeros(cls, m: int, n: int) -> "GF2Matrix":
        return cls(np.zeros((m, n), dtype=np.uint8))

    # -- basic accessors --------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        return self._mat

    @property
    def shape(self) -> Tuple[int, int]:
        return self._mat.shape

    def _ensure_rref(self) -> None:
        if self._rref is None:
            self._rref, self._pivots = gf2_rref(self._mat)

    @property
    def rank(self) -> int:
        self._ensure_rref()
        return len(self._pivots or [])

    # -- algebra ------------------------------------------------------------------
    def matmul(self, other: "GF2Matrix") -> "GF2Matrix":
        product = (self._mat.astype(np.uint32) @ other._mat.astype(np.uint32)) & 1
        return GF2Matrix(product.astype(np.uint8))

    def apply(self, vector: Sequence[int]) -> np.ndarray:
        vec = np.array(vector, dtype=np.uint32) & 1
        return ((self._mat.astype(np.uint32) @ vec) & 1).astype(np.uint8)

    def nullspace(self) -> np.ndarray:
        return gf2_nullspace(self._mat)

    def solve(self, rhs: Sequence[int]) -> Optional[np.ndarray]:
        return gf2_solve(self._mat, rhs)

    def span_contains(self, vector: Sequence[int]) -> bool:
        if self._mat.shape[0] == 0:
            return not any(int(v) & 1 for v in vector)
        return gf2_solve(self._mat.T, vector) is not None

    def stack(self, vector: Sequence[int]) -> "GF2Matrix":
        """A new matrix with ``vector`` appended as an extra row."""
        vec = np.array(vector, dtype=np.uint8).reshape(1, -1) & 1
        return GF2Matrix(np.concatenate([self._mat, vec], axis=0))

    def row_basis(self) -> np.ndarray:
        """An independent subset of rows spanning the same row space."""
        self._ensure_rref()
        rref = self._rref
        assert rref is not None and self._pivots is not None
        rows = rref[: len(self._pivots)]
        return rows.copy()

    def __eq__(self, other) -> bool:
        if not isinstance(other, GF2Matrix):
            return NotImplemented
        if self.shape[1] != other.shape[1]:
            return False
        return np.array_equal(GF2Matrix(self.row_basis(), self.shape[1])._mat if self.shape[0] else self._mat,
                              GF2Matrix(other.row_basis(), other.shape[1])._mat if other.shape[0] else other._mat)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2Matrix(shape={self.shape}, rank={self.rank})"


def gf2_random_full_rank(n: int, rng) -> np.ndarray:
    """Uniformly random invertible ``n x n`` matrix over GF(2) (rejection sampling)."""
    while True:
        mat = rng.integers(0, 2, size=(n, n), dtype=np.uint8)
        if gf2_rank(mat) == n:
            return mat
