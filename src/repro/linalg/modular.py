"""Elementary and modular number theory.

These routines back the "Abelian obstacles" of the Beals--Babai machinery
(Theorem 4 of the paper): computing and factoring element orders, taking
discrete logarithms and Chinese-remainder recombination.  On a quantum
computer Shor's algorithms provide the factoring / discrete-log primitives;
here they are exact classical implementations whose *cost accounting* is
handled by :mod:`repro.quantum.shor`.

All functions operate on Python integers (arbitrary precision) so that group
orders well beyond 64 bits are handled exactly.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "egcd",
    "modinv",
    "lcm",
    "lcm_list",
    "crt_pair",
    "crt",
    "is_probable_prime",
    "next_prime",
    "factorint",
    "divisors",
    "euler_phi",
    "multiplicative_order",
    "element_order_from_exponent",
    "primitive_root",
    "discrete_log",
]


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = gcd(a, b)`` and ``a*x + b*y == g``.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Inverse of ``a`` modulo ``m``.

    Raises :class:`ValueError` if ``gcd(a, m) != 1``.
    """
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m} (gcd = {g})")
    return x % m


def lcm(a: int, b: int) -> int:
    """Least common multiple of two integers."""
    if a == 0 or b == 0:
        return 0
    return abs(a // math.gcd(a, b) * b)


def lcm_list(values: Iterable[int]) -> int:
    """Least common multiple of an iterable of integers (1 if empty)."""
    out = 1
    for v in values:
        out = lcm(out, v)
    return out


def crt_pair(r1: int, m1: int, r2: int, m2: int) -> Tuple[int, int]:
    """Combine two congruences ``x = r1 (mod m1)``, ``x = r2 (mod m2)``.

    Returns ``(r, m)`` with ``m = lcm(m1, m2)``.  Raises
    :class:`ValueError` if the congruences are incompatible.
    """
    g, p, _ = egcd(m1, m2)
    if (r2 - r1) % g != 0:
        raise ValueError("incompatible congruences")
    m = m1 // g * m2
    diff = (r2 - r1) // g
    r = (r1 + m1 * (diff * p % (m2 // g))) % m
    return r, m


def crt(residues: Sequence[int], moduli: Sequence[int]) -> Tuple[int, int]:
    """Chinese remainder combination of many congruences.

    Moduli need not be pairwise coprime; incompatibilities raise
    :class:`ValueError`.  Returns ``(r, m)``.
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have equal length")
    r, m = 0, 1
    for ri, mi in zip(residues, moduli):
        r, m = crt_pair(r, m, ri % mi, mi)
    return r, m


# ---------------------------------------------------------------------------
# Primality and factorisation
# ---------------------------------------------------------------------------

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Miller--Rabin primality test.

    Deterministic for ``n < 3.3 * 10**24`` using the fixed witness set
    ``_SMALL_PRIMES``; for larger inputs the error probability is below
    ``4**-12``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in _SMALL_PRIMES:
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(2, n + 1)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def _pollard_rho(n: int, rng: random.Random) -> int:
    """Find a non-trivial factor of composite ``n`` (Brent's variant)."""
    if n % 2 == 0:
        return 2
    while True:
        c = rng.randrange(1, n)
        x = rng.randrange(0, n)
        y, d = x, 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = math.gcd(abs(x - y), n)
        if d != n:
            return d


def factorint(n: int, seed: int = 0xC0FFEE) -> Dict[int, int]:
    """Full prime factorisation ``{p: multiplicity}``.

    Trial division by small primes, then Pollard rho with Miller--Rabin
    certification.  This plays the role of Shor's factoring oracle in the
    classical substrate (see ``repro.quantum.shor`` for cost accounting).
    """
    if n <= 0:
        raise ValueError("factorint expects a positive integer")
    factors: Dict[int, int] = {}
    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    if n == 1:
        return factors
    rng = random.Random(seed)
    stack: List[int] = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_probable_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_rho(m, rng)
        stack.append(d)
        stack.append(m // d)
    return factors


def divisors(n: int) -> List[int]:
    """All positive divisors of ``n`` in increasing order."""
    facs = factorint(n)
    out = [1]
    for p, e in facs.items():
        out = [d * p**k for d in out for k in range(e + 1)]
    return sorted(out)


def euler_phi(n: int) -> int:
    """Euler totient function."""
    result = n
    for p in factorint(n):
        result -= result // p
    return result


def multiplicative_order(a: int, m: int) -> int:
    """Order of ``a`` in the unit group of ``Z_m``."""
    if math.gcd(a, m) != 1:
        raise ValueError("element is not a unit")
    order = euler_phi(m)
    for p, e in factorint(order).items():
        for _ in range(e):
            if pow(a, order // p, m) == 1:
                order //= p
            else:
                break
    return order


def element_order_from_exponent(power, identity_check, exponent: int) -> int:
    """Order of a group element given a multiple of its order.

    ``power(k)`` must return the element raised to the ``k``-th power and
    ``identity_check(x)`` must decide equality with the identity.  ``exponent``
    is any multiple of the order (e.g. the group exponent).  This is the
    classical divide-out-primes routine used once a quantum order-finding
    call has produced a multiple of the order.
    """
    order = exponent
    for p, e in factorint(exponent).items():
        for _ in range(e):
            if identity_check(power(order // p)):
                order //= p
            else:
                break
    return order


def primitive_root(p: int) -> int:
    """A generator of the cyclic group ``Z_p^*`` for prime ``p``."""
    if not is_probable_prime(p):
        raise ValueError("primitive_root requires a prime modulus")
    if p == 2:
        return 1
    phi = p - 1
    prime_factors = list(factorint(phi))
    for g in range(2, p):
        if all(pow(g, phi // q, p) != 1 for q in prime_factors):
            return g
    raise RuntimeError("no primitive root found (unreachable for prime p)")


def discrete_log(base: int, target: int, modulus: int, order: int | None = None) -> int:
    """Discrete logarithm by baby-step/giant-step.

    Finds ``x`` with ``base**x == target (mod modulus)``.  On a quantum
    computer this is Shor's discrete-log algorithm (hypothesis (b) of
    Theorem 4 in the paper); classically it is exponential, which is exactly
    why the paper treats it as an oracle.  ``order`` may be supplied to
    bound the search.

    Raises :class:`ValueError` when no logarithm exists.
    """
    base %= modulus
    target %= modulus
    if order is None:
        order = multiplicative_order(base, modulus)
    m = math.isqrt(order) + 1
    table: Dict[int, int] = {}
    e = 1
    for j in range(m):
        table.setdefault(e, j)
        e = e * base % modulus
    factor = modinv(pow(base, m, modulus), modulus)
    gamma = target
    for i in range(m):
        if gamma in table:
            return (i * m + table[gamma]) % order
        gamma = gamma * factor % modulus
    raise ValueError("discrete logarithm does not exist")
