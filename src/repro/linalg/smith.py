"""Smith normal form over the integers.

The Smith normal form (SNF) is the workhorse behind every Abelian
reconstruction step in the reproduction:

* recovering the hidden subgroup from Fourier samples of its annihilator
  (Theorem 3 / Lemma 9 of the paper),
* the Cheung--Mosca decomposition of an Abelian black-box group into cyclic
  factors (Theorem 1),
* expressing elements of Abelian subgroups as power products
  (constructive membership, Theorem 6).

Matrices here are small (a handful of generators / samples), so an exact
fraction-free elementary-operation algorithm on Python integers is both
simple and fast enough; the NumPy-heavy paths of the package are elsewhere
(state vectors and GF(2) elimination).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.obs.metrics import timed_call

__all__ = ["smith_normal_form", "diagonal_of_snf", "unimodular_inverse"]

Matrix = List[List[int]]


def _identity(n: int) -> Matrix:
    return [[1 if i == j else 0 for j in range(n)] for i in range(n)]


def _swap_rows(mat: Matrix, i: int, j: int) -> None:
    mat[i], mat[j] = mat[j], mat[i]


def _swap_cols(mat: Matrix, i: int, j: int) -> None:
    for row in mat:
        row[i], row[j] = row[j], row[i]


def _add_row(mat: Matrix, src: int, dst: int, factor: int) -> None:
    """``row[dst] += factor * row[src]``."""
    if factor == 0:
        return
    row_src = mat[src]
    row_dst = mat[dst]
    for k in range(len(row_dst)):
        row_dst[k] += factor * row_src[k]


def _add_col(mat: Matrix, src: int, dst: int, factor: int) -> None:
    """``col[dst] += factor * col[src]``."""
    if factor == 0:
        return
    for row in mat:
        row[dst] += factor * row[src]


def _negate_row(mat: Matrix, i: int) -> None:
    mat[i] = [-x for x in mat[i]]


def _negate_col(mat: Matrix, j: int) -> None:
    for row in mat:
        row[j] = -row[j]


def _find_pivot(a: Matrix, start: int) -> Tuple[int, int] | None:
    """Locate the entry of smallest absolute value in the trailing block."""
    best = None
    best_val = None
    for i in range(start, len(a)):
        for j in range(start, len(a[0])):
            v = abs(a[i][j])
            if v != 0 and (best_val is None or v < best_val):
                best, best_val = (i, j), v
                if v == 1:
                    return best
    return best


@timed_call("linalg.smith")
def smith_normal_form(matrix: Sequence[Sequence[int]]) -> Tuple[Matrix, Matrix, Matrix]:
    """Compute the Smith normal form ``D = U @ A @ V``.

    Parameters
    ----------
    matrix:
        An ``m x n`` integer matrix ``A`` (sequence of rows).

    Returns
    -------
    (D, U, V):
        ``D`` is diagonal with non-negative entries ``d_1 | d_2 | ...``;
        ``U`` (``m x m``) and ``V`` (``n x n``) are unimodular and satisfy
        ``U A V = D`` exactly.
    """
    a: Matrix = [list(map(int, row)) for row in matrix]
    m = len(a)
    n = len(a[0]) if m else 0
    u = _identity(m)
    v = _identity(n)
    if m == 0 or n == 0:
        return a, u, v

    t = 0
    limit = min(m, n)
    while t < limit:
        pivot = _find_pivot(a, t)
        if pivot is None:
            break
        pi, pj = pivot
        if pi != t:
            _swap_rows(a, pi, t)
            _swap_rows(u, pi, t)
        if pj != t:
            _swap_cols(a, pj, t)
            _swap_cols(v, pj, t)

        # Eliminate the pivot row and column; restart if a remainder becomes
        # the new (smaller) pivot, which guarantees termination.
        dirty = False
        for i in range(t + 1, m):
            if a[i][t] != 0:
                q = a[i][t] // a[t][t]
                _add_row(a, t, i, -q)
                _add_row(u, t, i, -q)
                if a[i][t] != 0:
                    dirty = True
        for j in range(t + 1, n):
            if a[t][j] != 0:
                q = a[t][j] // a[t][t]
                _add_col(a, t, j, -q)
                _add_col(v, t, j, -q)
                if a[t][j] != 0:
                    dirty = True
        if dirty:
            continue

        # Enforce the divisibility chain: the pivot must divide every entry
        # of the trailing block.
        d = a[t][t]
        offender = None
        for i in range(t + 1, m):
            for j in range(t + 1, n):
                if a[i][j] % d != 0:
                    offender = (i, j)
                    break
            if offender:
                break
        if offender is not None:
            i, _ = offender
            _add_row(a, i, t, 1)
            _add_row(u, i, t, 1)
            continue
        t += 1

    # Normalise signs of the diagonal.
    for i in range(limit):
        if a[i][i] < 0:
            _negate_row(a, i)
            _negate_row(u, i)
    return a, u, v


@timed_call("linalg.smith_inverse")
def unimodular_inverse(matrix: Sequence[Sequence[int]]) -> Matrix:
    """Exact inverse of a unimodular integer matrix (determinant ``+-1``).

    Gauss--Jordan elimination over exact rationals; the result is integral
    because the determinant is a unit.  Used to turn the ``V`` transform of a
    Smith normal form into new generators (the decomposition step of
    Theorem 1 needs rows of ``V^{-1}``).
    """
    from fractions import Fraction

    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise ValueError("unimodular_inverse requires a square matrix")
    a = [[Fraction(int(x)) for x in row] + [Fraction(1 if i == j else 0) for j in range(n)] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((i for i in range(col, n) if a[i][col] != 0), None)
        if pivot is None:
            raise ValueError("matrix is singular")
        a[col], a[pivot] = a[pivot], a[col]
        pivot_value = a[col][col]
        a[col] = [x / pivot_value for x in a[col]]
        for i in range(n):
            if i != col and a[i][col] != 0:
                factor = a[i][col]
                a[i] = [x - factor * y for x, y in zip(a[i], a[col])]
    inverse = [[a[i][n + j] for j in range(n)] for i in range(n)]
    result: Matrix = []
    for row in inverse:
        out_row = []
        for value in row:
            if value.denominator != 1:
                raise ValueError("matrix is not unimodular (non-integer inverse)")
            out_row.append(int(value))
        result.append(out_row)
    return result


def diagonal_of_snf(matrix: Sequence[Sequence[int]]) -> List[int]:
    """Diagonal entries of the Smith normal form (including zeros)."""
    d, _, _ = smith_normal_form(matrix)
    k = min(len(d), len(d[0]) if d else 0)
    return [d[i][i] for i in range(k)]
