"""Exact linear algebra substrate.

These modules provide the integer / modular linear algebra underlying the
Abelian hidden subgroup reconstruction (Theorem 3 of the paper), the
Cheung--Mosca decomposition (Theorem 1), and the GF(2) computations used by
Theorem 13 (elementary Abelian normal 2-subgroups).

Contents
--------
``modular``
    Extended gcd, CRT, factorisation, multiplicative orders, discrete logs.
``smith``
    Smith normal form of integer matrices with unimodular transforms.
``hermite``
    Hermite normal form and integer lattice kernels/images.
``zmodule``
    Subgroup arithmetic inside ``Z_{s1} x ... x Z_{sr}`` (membership,
    annihilators/orthogonal subgroups, orders) built on the normal forms.
``gf2``
    Vectorised linear algebra over GF(2) (NumPy ``uint8`` arrays).
"""

from repro.linalg.modular import (
    crt,
    crt_pair,
    discrete_log,
    egcd,
    factorint,
    is_probable_prime,
    lcm,
    modinv,
    multiplicative_order,
)
from repro.linalg.smith import smith_normal_form
from repro.linalg.hermite import hermite_normal_form, integer_kernel
from repro.linalg.zmodule import (
    ZModule,
    annihilator,
    kernel_mod,
    member_coefficients,
    subgroup_order,
)
from repro.linalg.gf2 import GF2Matrix

__all__ = [
    "egcd",
    "modinv",
    "lcm",
    "crt_pair",
    "crt",
    "is_probable_prime",
    "factorint",
    "multiplicative_order",
    "discrete_log",
    "smith_normal_form",
    "hermite_normal_form",
    "integer_kernel",
    "ZModule",
    "kernel_mod",
    "annihilator",
    "member_coefficients",
    "subgroup_order",
    "GF2Matrix",
]
