"""Tests for the hidden normal subgroup algorithm (Theorem 8)."""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.base import GroupError
from repro.groups.catalog import wreath_instance
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, dihedral_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group
from repro.quantum.sampling import FourierSampler


def solve_and_verify(group, hidden_generators, rng, **kwargs):
    instance = HSPInstance.from_subgroup(group, hidden_generators)
    result = find_hidden_normal_subgroup(
        group, instance.oracle, sampler=FourierSampler(rng=rng), **kwargs
    )
    assert instance.verify(result.generators or [group.identity()]), result.generators
    return result


class TestAbelianQuotientPath:
    def test_alternating_inside_symmetric(self, rng):
        for n in [3, 4, 5]:
            result = solve_and_verify(symmetric_group(n), alternating_group(n).generators(), rng)
            assert result.method == "abelian-quotient"
            assert result.quotient_order == 2

    def test_rotation_subgroup_of_dihedral(self, rng):
        group = dihedral_semidirect(15)
        result = solve_and_verify(group, [group.embed_normal((1,))], rng)
        assert result.method == "abelian-quotient"

    def test_center_of_extraspecial_group(self, rng):
        for p in [3, 5]:
            group = extraspecial_group(p)
            result = solve_and_verify(group, group.center_generators(), rng)
            assert result.quotient_order == p * p

    def test_normal_subgroup_of_metacyclic_group(self, rng):
        group = metacyclic_group(13, 3)
        result = solve_and_verify(group, [group.embed_normal((1,))], rng)
        assert result.quotient_order == 3

    def test_whole_group_as_hidden_subgroup(self, rng):
        group = dihedral_semidirect(5)
        result = solve_and_verify(group, group.generators(), rng)
        assert result.quotient_order == 1

    def test_base_group_of_wreath_product(self, rng):
        group, normal_gens = wreath_instance(2)
        result = solve_and_verify(group, normal_gens, rng)
        assert result.quotient_order == 2

    def test_normal_subgroup_of_abelian_group(self, rng):
        group = AbelianTupleGroup([8, 9])
        solve_and_verify(group, [(2, 3)], rng)

    def test_commutator_subgroup_is_found(self, rng):
        # G' = <r^2> is hidden; G/G' is the Klein four group (Abelian).
        group = dihedral_semidirect(8)
        solve_and_verify(group, [group.embed_normal((2,))], rng)


class TestBoundedQuotientPath:
    def test_dihedral_with_dihedral_quotient(self, rng):
        group = dihedral_semidirect(15)
        result = solve_and_verify(group, [group.embed_normal((5,))], rng, quotient_bound=32)
        assert result.method == "bounded-quotient-schreier"
        assert result.quotient_order == 10

    def test_permutation_group_with_nonabelian_quotient(self, rng):
        # V_4 (the Klein four group) is normal in S_4 with quotient S_3.
        s4 = symmetric_group(4)
        klein = [(1, 0, 3, 2), (2, 3, 0, 1)]
        result = solve_and_verify(s4, klein, rng, quotient_bound=8)
        assert result.quotient_order == 6

    def test_trivial_hidden_subgroup_small_group(self, rng):
        group = dihedral_semidirect(4)
        instance = HSPInstance.from_subgroup(group, [group.identity()])
        result = find_hidden_normal_subgroup(
            group, instance.oracle, sampler=FourierSampler(rng=rng), quotient_bound=16
        )
        assert result.generators == [] or instance.verify(result.generators)
        assert result.quotient_order == 8

    def test_bound_violation_raises(self, rng):
        group = dihedral_semidirect(15)
        instance = HSPInstance.from_subgroup(group, [group.embed_normal((5,))])
        with pytest.raises(GroupError):
            find_hidden_normal_subgroup(
                group, instance.oracle, sampler=FourierSampler(rng=rng), quotient_bound=4
            )

    def test_nonabelian_quotient_without_bound_raises(self, rng):
        group = dihedral_semidirect(15)
        instance = HSPInstance.from_subgroup(group, [group.embed_normal((5,))])
        with pytest.raises(GroupError):
            find_hidden_normal_subgroup(group, instance.oracle, sampler=FourierSampler(rng=rng))


class TestQueryAccounting:
    def test_query_report_records_quantum_rounds(self, rng):
        group = symmetric_group(4)
        instance = HSPInstance.from_subgroup(group, alternating_group(4).generators())
        result = find_hidden_normal_subgroup(group, instance.oracle, sampler=FourierSampler(rng=rng))
        assert result.query_report["quantum_queries"] > 0
        assert result.relator_count >= 1

    def test_quantum_queries_scale_mildly_with_group_size(self, rng):
        small = solve_and_verify(dihedral_semidirect(6), [dihedral_semidirect(6).embed_normal((1,))], rng)
        big_group = dihedral_semidirect(60)
        big = solve_and_verify(big_group, [big_group.embed_normal((1,))], rng)
        assert big.query_report["quantum_queries"] <= 4 * max(small.query_report["quantum_queries"], 1) + 64
