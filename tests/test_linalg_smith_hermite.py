"""Unit tests for Smith/Hermite normal forms and integer kernels."""

import random

import pytest

from repro.linalg.hermite import (
    hermite_normal_form,
    integer_kernel,
    lattice_index,
    row_space_contains,
)
from repro.linalg.smith import diagonal_of_snf, smith_normal_form, unimodular_inverse


def matmul(a, b):
    return [[sum(a[i][k] * b[k][j] for k in range(len(b))) for j in range(len(b[0]))] for i in range(len(a))]


def det(matrix):
    n = len(matrix)
    if n == 1:
        return matrix[0][0]
    total = 0
    for j in range(n):
        minor = [row[:j] + row[j + 1 :] for row in matrix[1:]]
        total += ((-1) ** j) * matrix[0][j] * det(minor)
    return total


class TestSmithNormalForm:
    def test_simple_diagonal(self):
        d, u, v = smith_normal_form([[2, 0], [0, 3]])
        assert diagonal_of_snf([[2, 0], [0, 3]]) == [1, 6]
        assert matmul(matmul(u, [[2, 0], [0, 3]]), v) == d

    def test_known_invariant_factors(self):
        # Z_4 x Z_6 ~ Z_2 x Z_12
        assert diagonal_of_snf([[4, 0], [0, 6]]) == [2, 12]

    def test_zero_matrix(self):
        d, u, v = smith_normal_form([[0, 0], [0, 0]])
        assert d == [[0, 0], [0, 0]]

    def test_rectangular(self):
        a = [[2, 4, 4]]
        d, u, v = smith_normal_form(a)
        assert matmul(matmul(u, a), v) == d
        assert d[0][0] == 2

    @pytest.mark.parametrize("seed", range(20))
    def test_random_matrices_satisfy_uav_equals_d(self, seed):
        rnd = random.Random(seed)
        m, n = rnd.randint(1, 5), rnd.randint(1, 5)
        a = [[rnd.randint(-10, 10) for _ in range(n)] for _ in range(m)]
        d, u, v = smith_normal_form(a)
        assert matmul(matmul(u, a), v) == d
        # Unimodularity of the transforms.
        assert abs(det(u)) == 1
        assert abs(det(v)) == 1
        # Divisibility chain.
        diag = [d[i][i] for i in range(min(m, n))]
        for x, y in zip(diag, diag[1:]):
            if x != 0:
                assert y % x == 0 or y == 0
            else:
                assert y == 0
        assert all(x >= 0 for x in diag)

    def test_unimodular_inverse_roundtrip(self):
        rnd = random.Random(5)
        for _ in range(10):
            n = rnd.randint(1, 4)
            a = [[rnd.randint(-6, 6) for _ in range(n)] for _ in range(n)]
            _, u, _ = smith_normal_form(a)
            u_inv = unimodular_inverse(u)
            identity = [[1 if i == j else 0 for j in range(n)] for i in range(n)]
            assert matmul(u, u_inv) == identity

    def test_unimodular_inverse_rejects_singular(self):
        with pytest.raises(ValueError):
            unimodular_inverse([[1, 1], [1, 1]])

    def test_unimodular_inverse_rejects_non_unimodular(self):
        with pytest.raises(ValueError):
            unimodular_inverse([[2, 0], [0, 1]])


class TestHermiteNormalForm:
    def test_canonical_for_equal_lattices(self):
        a = [[2, 0], [0, 3]]
        b = [[2, 3], [2, 0], [4, 3]]
        assert hermite_normal_form(a) == hermite_normal_form(b)

    def test_removes_zero_rows(self):
        hnf = hermite_normal_form([[1, 2], [2, 4]])
        assert hnf == [[1, 2]]

    def test_empty(self):
        assert hermite_normal_form([]) == []

    def test_pivots_positive_and_reduced(self):
        hnf = hermite_normal_form([[4, 1], [0, 3]])
        pivots = []
        for row in hnf:
            pivot_col = next(j for j, x in enumerate(row) if x)
            pivots.append((pivot_col, row[pivot_col]))
            assert row[pivot_col] > 0
        # entries above each pivot reduced modulo the pivot
        for i, (col, value) in enumerate(pivots):
            for upper in hnf[:i]:
                assert 0 <= upper[col] < value

    def test_row_space_contains(self):
        basis = [[2, 0], [0, 3]]
        assert row_space_contains(basis, [4, 3])
        assert not row_space_contains(basis, [1, 0])


class TestIntegerKernel:
    def test_kernel_of_dependent_rows(self):
        kernel = integer_kernel([[1, 2], [2, 4]])
        assert len(kernel) == 1
        x = kernel[0]
        assert x[0] + 2 * x[1] == 0

    def test_full_rank_has_trivial_kernel(self):
        assert integer_kernel([[1, 0], [0, 1]]) == []

    def test_kernel_vectors_annihilate(self):
        rnd = random.Random(9)
        for _ in range(10):
            m, n = rnd.randint(1, 4), rnd.randint(1, 5)
            a = [[rnd.randint(-5, 5) for _ in range(n)] for _ in range(m)]
            for vec in integer_kernel(a):
                assert all(sum(a[i][j] * vec[j] for j in range(n)) == 0 for i in range(m))

    def test_lattice_index(self):
        assert lattice_index([[2, 0], [0, 3]]) == 6
        assert lattice_index([[1, 0], [0, 1]]) == 1

    def test_lattice_index_rank_deficient(self):
        with pytest.raises(ValueError):
            lattice_index([[1, 2]])
