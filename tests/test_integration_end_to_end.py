"""End-to-end integration tests across the whole solver stack.

Each test builds an instance the way the benchmark harness does (concrete
group + known hidden subgroup + structural promises), runs the top-level
dispatcher, and verifies the recovered subgroup against ground truth while
checking the cost accounting that the experiments report.
"""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance, random_abelian_hsp_instance
from repro.core.solver import solve_hsp
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.catalog import (
    affine_gf2_instance,
    elementary_abelian_semidirect_instance,
    wreath_instance,
)
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group
from repro.groups.subgroup import generate_subgroup_elements, subgroup_order
from repro.hsp.baseline_classical import classical_exhaustive_hsp
from repro.hsp.rotteler_beth import rotteler_beth_wreath
from repro.quantum.sampling import FourierSampler


class TestEndToEndFamilies:
    @pytest.mark.parametrize("seed", range(4))
    def test_abelian_scaling_instances(self, seed):
        rng = np.random.default_rng(seed)
        instance = random_abelian_hsp_instance([2**6, 3**4, 5**3], rng)
        solution = solve_hsp(instance, rng=rng)
        assert instance.verify(solution.generators or [instance.group.identity()])

    @pytest.mark.parametrize("p", [3, 5])
    def test_extraspecial_families(self, p, rng):
        group = extraspecial_group(p)
        for _ in range(2):
            hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
            instance = HSPInstance.from_subgroup(
                group, hidden, promises={"commutator_elements": group.commutator_subgroup_elements()}
            )
            solution = solve_hsp(instance, rng=rng)
            assert instance.verify(solution.generators or [group.identity()])

    @pytest.mark.parametrize("k", [2, 3])
    def test_wreath_families(self, k, rng):
        group, normal_gens = wreath_instance(k)
        hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
        instance = HSPInstance.from_subgroup(
            group, hidden, promises={"normal_generators": normal_gens, "cyclic_quotient": True}
        )
        solution = solve_hsp(instance, rng=rng)
        assert instance.verify(solution.generators or [group.identity()])

    def test_affine_family(self, rng):
        group, normal_gens = affine_gf2_instance(3)
        hidden = [group.random_element(rng)]
        instance = HSPInstance.from_subgroup(
            group, hidden, promises={"normal_generators": normal_gens, "cyclic_quotient": True}
        )
        solution = solve_hsp(instance, rng=rng)
        assert instance.verify(solution.generators or [group.identity()])

    def test_general_theorem13_family(self, rng):
        group, normal_gens = elementary_abelian_semidirect_instance(4, "S3")
        hidden = [group.random_element(rng)]
        instance = HSPInstance.from_subgroup(
            group, hidden, promises={"normal_generators": normal_gens, "cyclic_quotient": False, "quotient_bound": 8}
        )
        solution = solve_hsp(instance, rng=rng)
        assert instance.verify(solution.generators or [group.identity()])

    def test_hidden_normal_in_permutation_group(self, rng):
        s4 = symmetric_group(4)
        instance = HSPInstance.from_subgroup(
            s4, alternating_group(4).generators(), promises={"hidden_is_normal": True}
        )
        solution = solve_hsp(instance, rng=rng)
        assert instance.verify(solution.generators)

    def test_hidden_normal_in_metacyclic_group(self, rng):
        group = metacyclic_group(13, 3)
        instance = HSPInstance.from_subgroup(
            group, [group.embed_normal((1,))], promises={"hidden_is_normal": True}
        )
        solution = solve_hsp(instance, rng=rng)
        assert instance.verify(solution.generators)


class TestCrossSolverConsistency:
    def test_quantum_and_classical_agree_on_dihedral(self, rng):
        group = dihedral_semidirect(6)
        hidden = [group.embed_quotient((1,))]
        instance_q = HSPInstance.from_subgroup(group, hidden)
        instance_c = HSPInstance.from_subgroup(group, hidden)
        quantum = solve_hsp(instance_q, rng=rng)
        classical = classical_exhaustive_hsp(instance_c)
        base = group
        assert subgroup_order(base, quantum.generators) == subgroup_order(base, classical.generators) == 2

    def test_theorem13_matches_rotteler_beth(self, rng):
        group, normal_gens = wreath_instance(2)
        hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
        instance_a = HSPInstance.from_subgroup(
            group, hidden, promises={"normal_generators": normal_gens, "cyclic_quotient": True}
        )
        instance_b = HSPInstance.from_subgroup(group, hidden)
        ours = solve_hsp(instance_a, rng=rng)
        theirs = rotteler_beth_wreath(instance_b, FourierSampler(rng=rng))
        order_ours = subgroup_order(group, ours.generators or [group.identity()])
        order_theirs = subgroup_order(group, theirs.generators or [group.identity()])
        assert order_ours == order_theirs
        assert instance_a.verify(ours.generators or [group.identity()])
        assert instance_b.verify(theirs.generators or [group.identity()])

    def test_quantum_query_advantage_over_classical(self, rng):
        """The quantum solver uses far fewer oracle queries than exhaustive search."""
        group = AbelianTupleGroup([2**7, 3**4])
        hidden = [(2**3, 3**2)]
        instance_q = HSPInstance.from_subgroup(group, hidden)
        instance_c = HSPInstance.from_subgroup(group, hidden)
        quantum = solve_hsp(instance_q, sampler=FourierSampler("analytic", rng=rng), rng=rng)
        classical = classical_exhaustive_hsp(instance_c)
        quantum_queries = quantum.query_report["quantum_queries"] + quantum.query_report["classical_queries"]
        assert instance_q.verify(quantum.generators)
        assert quantum_queries * 20 < classical.oracle_queries

    def test_solution_subgroups_are_subgroups_of_truth(self, rng):
        group = extraspecial_group(3)
        hidden = [((1,), (2,), 0)]
        instance = HSPInstance.from_subgroup(group, hidden)
        solution = solve_hsp(instance, rng=rng)
        truth = set(generate_subgroup_elements(group, hidden))
        for g in solution.generators:
            assert g in truth
