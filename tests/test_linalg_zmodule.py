"""Unit tests for subgroup arithmetic in Z_{s1} x ... x Z_{sr}."""

import math

import numpy as np
import pytest

from repro.linalg.zmodule import (
    ZModule,
    annihilator,
    canonical_generators,
    coset_representative,
    cyclic_decomposition,
    kernel_mod,
    member_coefficients,
    reduce_element,
    subgroup_contains,
    subgroup_order,
)


class TestZModuleBasics:
    def test_order_and_exponent(self):
        module = ZModule([4, 6, 5])
        assert module.order == 120
        assert module.exponent == 60
        assert module.rank == 3

    def test_arithmetic(self):
        module = ZModule([4, 6])
        assert module.add((3, 5), (2, 2)) == (1, 1)
        assert module.neg((1, 2)) == (3, 4)
        assert module.sub((0, 0), (1, 1)) == (3, 5)
        assert module.scalar(5, (1, 1)) == (1, 5)

    def test_element_order(self):
        module = ZModule([4, 6])
        assert module.element_order((0, 0)) == 1
        assert module.element_order((2, 3)) == 2
        assert module.element_order((1, 1)) == 12

    def test_elements_enumeration(self):
        module = ZModule([2, 3])
        assert sorted(module.elements()) == [(i, j) for i in range(2) for j in range(3)]

    def test_requires_positive_moduli(self):
        with pytest.raises(ValueError):
            ZModule([4, 0])

    def test_pairing_phase(self):
        module = ZModule([4, 6])
        num, den = module.pairing_phase((1, 0), (2, 0))
        assert den == 12 and num == 6  # 1*2/4 = 1/2 turn

    def test_random_element_in_range(self):
        module = ZModule([4, 6, 5])
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = module.random_element(rng)
            assert all(0 <= v < m for v, m in zip(x, module.moduli))


class TestSubgroupArithmetic:
    def test_subgroup_order_matches_enumeration(self):
        module = ZModule([4, 6, 5])
        gens = [(2, 0, 0), (0, 3, 0)]
        assert subgroup_order(gens, module.moduli) == len(module.subgroup_elements(gens)) == 4

    def test_trivial_subgroup(self):
        assert subgroup_order([], [4, 6]) == 1
        assert subgroup_order([(0, 0)], [4, 6]) == 1

    def test_full_subgroup(self):
        assert subgroup_order([(1, 0), (0, 1)], [4, 6]) == 24

    def test_membership(self):
        moduli = [8, 9]
        gens = [(2, 3)]
        assert subgroup_contains(gens, (4, 6), moduli)
        assert subgroup_contains(gens, (6, 0), moduli)  # 3 * (2,3) = (6, 0) mod (8,9)
        assert not subgroup_contains(gens, (1, 0), moduli)

    def test_member_coefficients_reconstruct(self):
        moduli = [8, 9, 5]
        module = ZModule(moduli)
        gens = [(2, 3, 0), (0, 0, 1)]
        target = module.add(module.scalar(3, gens[0]), module.scalar(4, gens[1]))
        coeffs = member_coefficients(gens, target, moduli)
        assert coeffs is not None
        rebuilt = module.identity()
        for c, g in zip(coeffs, gens):
            rebuilt = module.add(rebuilt, module.scalar(c, g))
        assert rebuilt == target

    def test_member_coefficients_none_outside(self):
        assert member_coefficients([(2, 0)], (1, 0), [4, 4]) is None

    def test_canonical_generators_equality(self):
        moduli = [4, 6]
        a = [(2, 0), (0, 3)]
        b = [(2, 3), (2, 0), (0, 3)]
        assert canonical_generators(a, moduli) == canonical_generators(b, moduli)

    def test_kernel_mod(self):
        # x + 2y = 0 mod 4 over Z_4 x Z_4
        solutions = kernel_mod([[1, 2]], 4, [4, 4])
        module = ZModule([4, 4])
        for x in module.subgroup_elements(solutions):
            assert (x[0] + 2 * x[1]) % 4 == 0
        assert subgroup_order(solutions, [4, 4]) == 4


class TestAnnihilator:
    @pytest.mark.parametrize(
        "moduli,gens",
        [
            ([4, 6], [(2, 3)]),
            ([8, 9, 5], [(2, 0, 0), (0, 3, 0)]),
            ([2, 2, 2], [(1, 1, 0), (0, 1, 1)]),
            ([12], [(4,)]),
        ],
    )
    def test_double_annihilator_is_identity(self, moduli, gens):
        module = ZModule(moduli)
        double = annihilator(annihilator(gens, moduli), moduli)
        assert module.subgroups_equal(double, gens)

    @pytest.mark.parametrize(
        "moduli,gens",
        [([4, 6], [(2, 3)]), ([8, 3], [(2, 0)]), ([2, 2], [(1, 1)])],
    )
    def test_annihilator_orthogonality(self, moduli, gens):
        module = ZModule(moduli)
        dual = annihilator(gens, moduli)
        for x in module.subgroup_elements(gens):
            for y in module.subgroup_elements(dual):
                num, den = module.pairing_phase(x, y)
                assert num % den == 0

    def test_order_product(self):
        moduli = [4, 6]
        gens = [(2, 3)]
        dual = annihilator(gens, moduli)
        assert subgroup_order(gens, moduli) * subgroup_order(dual, moduli) == 24

    def test_annihilator_of_trivial_is_everything(self):
        moduli = [4, 6]
        dual = annihilator([], moduli)
        assert subgroup_order(dual, moduli) == 24

    def test_annihilator_of_everything_is_trivial(self):
        moduli = [4, 6]
        dual = annihilator([(1, 0), (0, 1)], moduli)
        assert subgroup_order(dual, moduli) == 1


class TestCosetRepresentative:
    def test_same_coset_same_representative(self):
        moduli = [8, 9]
        module = ZModule(moduli)
        gens = [(2, 3)]
        x = (5, 7)
        for element in module.subgroup_elements(gens):
            shifted = module.add(x, element)
            assert coset_representative(shifted, gens, moduli) == coset_representative(x, gens, moduli)

    def test_distinct_cosets_distinct_representatives(self):
        moduli = [6, 4]
        module = ZModule(moduli)
        gens = [(3, 2)]
        labels = {coset_representative(x, gens, moduli) for x in module.elements()}
        assert len(labels) == module.order // subgroup_order(gens, moduli)

    def test_identity_coset(self):
        moduli = [6, 4]
        gens = [(3, 2)]
        assert coset_representative((3, 2), gens, moduli) == coset_representative((0, 0), gens, moduli)


class TestCyclicDecomposition:
    @pytest.mark.parametrize("seed", range(15))
    def test_decomposition_invariants(self, seed):
        rng = np.random.default_rng(seed)
        moduli = [int(rng.choice([2, 3, 4, 6, 8, 9])) for _ in range(int(rng.integers(1, 4)))]
        module = ZModule(moduli)
        gens = [module.random_element(rng) for _ in range(int(rng.integers(1, 4)))]
        decomposition = cyclic_decomposition(gens, moduli)
        # orders multiply to the subgroup order
        product = math.prod([order for _, order in decomposition]) if decomposition else 1
        assert product == subgroup_order(gens, moduli)
        # element orders match and generators regenerate the subgroup
        for element, order in decomposition:
            assert module.element_order(element) == order
        regenerated = [element for element, _ in decomposition] or [module.identity()]
        assert module.subgroups_equal(gens, regenerated)

    def test_decomposition_divisibility_chain(self):
        moduli = [4, 6, 5]
        decomposition = cyclic_decomposition([(1, 0, 0), (0, 1, 0), (0, 0, 1)], moduli)
        orders = [order for _, order in decomposition]
        for a, b in zip(orders, orders[1:]):
            assert b % a == 0

    def test_trivial_input(self):
        assert cyclic_decomposition([(0, 0)], [4, 6]) == []
