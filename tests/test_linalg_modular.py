"""Unit tests for repro.linalg.modular (number theory primitives)."""

import math

import pytest

from repro.linalg.modular import (
    crt,
    crt_pair,
    discrete_log,
    divisors,
    egcd,
    element_order_from_exponent,
    euler_phi,
    factorint,
    is_probable_prime,
    lcm,
    lcm_list,
    modinv,
    multiplicative_order,
    next_prime,
    primitive_root,
)


class TestEgcdAndInverse:
    @pytest.mark.parametrize("a,b", [(12, 18), (35, 64), (0, 7), (7, 0), (-15, 25), (1, 1)])
    def test_egcd_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_egcd_nonnegative_gcd(self):
        g, _, _ = egcd(-12, -18)
        assert g == 6

    @pytest.mark.parametrize("a,m", [(3, 7), (10, 17), (5, 12), (7, 101)])
    def test_modinv(self, a, m):
        inv = modinv(a, m)
        assert (a * inv) % m == 1
        assert 0 <= inv < m

    def test_modinv_not_invertible(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    def test_lcm_values(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0
        assert lcm_list([2, 3, 4]) == 12
        assert lcm_list([]) == 1


class TestCrt:
    def test_crt_pair_coprime(self):
        r, m = crt_pair(2, 3, 3, 5)
        assert m == 15 and r % 3 == 2 and r % 5 == 3

    def test_crt_pair_non_coprime_compatible(self):
        r, m = crt_pair(2, 4, 6, 8)
        assert m == 8 and r % 4 == 2 and r % 8 == 6

    def test_crt_pair_incompatible(self):
        with pytest.raises(ValueError):
            crt_pair(1, 4, 2, 8)

    def test_crt_many(self):
        r, m = crt([1, 2, 3], [5, 7, 9])
        assert m == 315
        assert r % 5 == 1 and r % 7 == 2 and r % 9 == 3

    def test_crt_length_mismatch(self):
        with pytest.raises(ValueError):
            crt([1, 2], [3])


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729, 2**31 - 1])
    def test_primes_detected(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 561, 1105, 2821, 6601, 2**32 + 1])
    def test_composites_rejected(self, n):
        assert not is_probable_prime(n)

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(100) == 101
        assert next_prime(7918) == 7919


class TestFactorisation:
    @pytest.mark.parametrize(
        "n",
        [2, 12, 97, 360, 1024, 104729 * 7919, 2**20 - 1, 600851475143],
    )
    def test_factorint_reconstructs(self, n):
        factors = factorint(n)
        product = 1
        for p, e in factors.items():
            assert is_probable_prime(p)
            product *= p**e
        assert product == n

    def test_factorint_one(self):
        assert factorint(1) == {}

    def test_factorint_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorint(0)

    def test_divisors(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]

    def test_euler_phi(self):
        assert euler_phi(1) == 1
        assert euler_phi(12) == 4
        assert euler_phi(97) == 96


class TestOrdersAndLogs:
    @pytest.mark.parametrize("a,m,expected", [(2, 7, 3), (3, 7, 6), (2, 15, 4), (7, 100, 4)])
    def test_multiplicative_order(self, a, m, expected):
        assert multiplicative_order(a, m) == expected

    def test_multiplicative_order_non_unit(self):
        with pytest.raises(ValueError):
            multiplicative_order(6, 9)

    def test_element_order_from_exponent(self):
        # Order of 4 in Z_12 (additive): exponent 12, true order 3.
        order = element_order_from_exponent(lambda k: (4 * k) % 12, lambda x: x == 0, 12)
        assert order == 3

    def test_primitive_root_generates(self):
        for p in [3, 7, 11, 23, 101]:
            g = primitive_root(p)
            assert multiplicative_order(g, p) == p - 1

    def test_primitive_root_requires_prime(self):
        with pytest.raises(ValueError):
            primitive_root(12)

    @pytest.mark.parametrize("p", [11, 101, 1009])
    def test_discrete_log_roundtrip(self, p):
        g = primitive_root(p)
        for x in [1, 5, p // 2, p - 2]:
            target = pow(g, x, p)
            assert discrete_log(g, target, p) == x % (p - 1)

    def test_discrete_log_missing(self):
        # 2 generates a proper subgroup of Z_7^*; 3 is outside it.
        with pytest.raises(ValueError):
            discrete_log(2, 3, 7)
