"""Cayley-table persistence and the engine kill switch.

The optional ``cache_dir`` of :class:`~repro.groups.engine.CayleyBackend`
memory-maps the dense table to disk, keyed by a digest of the group
description, so a second process (or sweep invocation) reopens the filled
table and performs *zero* group multiplications for cached products.  The
cache is off by default.  :func:`~repro.groups.engine.engine_disabled`
forces the scalar configuration everywhere ``maybe_engine`` is consulted.
"""

import os

import numpy as np

from repro.groups.engine import (
    CayleyBackend,
    engine_cache,
    engine_disabled,
    get_engine,
    maybe_engine,
)
from repro.groups.extraspecial import extraspecial_group


def _count_oracle_calls(group):
    """Patch ``multiply``/``inverse`` on the instance and return the call tally.

    Installed *after* engine construction, so only post-construction oracle
    consultations (i.e. table fill-in) are counted.
    """
    calls = {"multiplications": 0, "inversions": 0}
    original_multiply, original_inverse = group.multiply, group.inverse

    def multiply(a, b):
        calls["multiplications"] += 1
        return original_multiply(a, b)

    def inverse(a):
        calls["inversions"] += 1
        return original_inverse(a)

    group.multiply, group.inverse = multiply, inverse
    return calls


class TestPersistence:
    def test_round_trip_skips_fill_in(self, tmp_path):
        cache_dir = str(tmp_path)
        group = extraspecial_group(3)
        writer = CayleyBackend(group, cache_dir=cache_dir)
        assert writer.mode == "table"
        n = writer.interned_count
        all_ids = np.arange(n, dtype=np.int64)
        expected = writer.mul_many(np.repeat(all_ids, n), np.tile(all_ids, n))
        expected_inverses = writer.inv_many(all_ids)
        assert writer.stats()["cached_products"] == n * n
        writer.flush_cache()

        fresh = extraspecial_group(3)
        reader = CayleyBackend(fresh, cache_dir=cache_dir)
        assert reader.cache_key == writer.cache_key
        assert reader.stats()["cached_products"] == n * n
        calls = _count_oracle_calls(fresh)
        products = reader.mul_many(np.repeat(all_ids, n), np.tile(all_ids, n))
        inverses = reader.inv_many(all_ids)
        assert calls == {"multiplications": 0, "inversions": 0}, (
            "a warm cache must not consult the group oracle"
        )
        # Identical id semantics: the element lists agree, so id arrays do too.
        assert np.array_equal(products, expected)
        assert np.array_equal(inverses, expected_inverses)
        assert reader.elements_of(products[:5]) == writer.elements_of(expected[:5])

    def test_cache_off_by_default(self, tmp_path):
        group = extraspecial_group(3)
        engine = CayleyBackend(group)
        assert engine.cache_dir is None and engine.cache_key is None
        assert not isinstance(engine._table, np.memmap)
        assert os.listdir(tmp_path) == []

    def test_partial_fill_resumes(self, tmp_path):
        cache_dir = str(tmp_path)
        writer = CayleyBackend(extraspecial_group(3), cache_dir=cache_dir)
        writer.mul(0, 1)
        filled = writer.stats()["cached_products"]
        writer.flush_cache()
        reader = CayleyBackend(extraspecial_group(3), cache_dir=cache_dir)
        assert reader.stats()["cached_products"] == filled
        reader.mul(0, 2)
        assert reader.stats()["cached_products"] == filled + 1

    def test_different_groups_use_different_keys(self, tmp_path):
        a = CayleyBackend(extraspecial_group(3), cache_dir=str(tmp_path))
        b = CayleyBackend(extraspecial_group(5), cache_dir=str(tmp_path))
        assert a.cache_key != b.cache_key
        assert len(os.listdir(tmp_path)) == 4  # one table + one inv file each

    def test_maybe_engine_forwards_cache_dir(self, tmp_path):
        group = extraspecial_group(3)
        engine = maybe_engine(group, cache_dir=str(tmp_path))
        assert engine is not None and engine.cache_key is not None
        assert os.listdir(tmp_path)

    def test_engine_cache_context_applies_to_implicit_installs(self, tmp_path):
        with engine_cache(str(tmp_path)):
            engine = maybe_engine(extraspecial_group(3))
        assert engine is not None and engine.cache_key is not None
        assert os.listdir(tmp_path)
        # Outside the context the default reverts to in-memory tables.
        fresh = maybe_engine(extraspecial_group(3))
        assert fresh.cache_dir is None

    def test_no_temp_files_left_behind(self, tmp_path):
        CayleyBackend(extraspecial_group(3), cache_dir=str(tmp_path))
        assert not [name for name in os.listdir(tmp_path) if ".tmp-" in name]

    def test_results_agree_with_group_arithmetic(self, tmp_path):
        group = extraspecial_group(3)
        engine = CayleyBackend(group, cache_dir=str(tmp_path))
        rng = np.random.default_rng(7)
        for _ in range(20):
            a = group.uniform_random_element(rng)
            b = group.uniform_random_element(rng)
            assert engine.element_of(engine.mul(engine.intern(a), engine.intern(b))) == group.multiply(a, b)


class TestEngineDisabled:
    def test_maybe_engine_returns_none_inside_context(self):
        group = extraspecial_group(3)
        with engine_disabled():
            assert maybe_engine(group) is None
        assert maybe_engine(group) is not None

    def test_context_restores_previous_state_on_error(self):
        group = extraspecial_group(5)
        try:
            with engine_disabled():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert maybe_engine(group) is not None

    def test_get_engine_still_explicit(self):
        # engine_disabled guards maybe_engine (the implicit install sites);
        # an explicit get_engine call remains the caller's decision.
        group = extraspecial_group(3)
        with engine_disabled():
            assert get_engine(group) is not None
