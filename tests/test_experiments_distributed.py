"""The queue-backed distributed runner (PR 5) and its transports (PR 6/10).

The contract under test, for ALL THREE queue transports (the
shared-directory queue, the single-file SQLite WAL database, and the HTTP
coordinator serving a SQLite queue to workers that have only a URL):

* a ``RunSpec`` round-trips exactly through its JSON task form — the
  descriptor *is* the unit of work a remote worker executes;
* ``enqueue`` materialises the pending runs as claimable tasks; ``work``
  processes claim them exactly-once under contention, heartbeat their
  leases, reclaim stale leases of dead workers, and append to per-worker
  shards;
* ``collect`` merges the shards — dedup by ``(index, seed)``, ok preferred
  over error — and produces rows byte-identical to a single-process
  ``run`` of the same spec, refusing an incomplete queue loudly;
* a task whose payload will not parse is *quarantined* at claim time and
  reported once — never crash-looped through stale-reclaim ping-pong;
* a fully covered queue with a live lease still outstanding refuses
  ``collect`` (``--force`` overrides with deterministic rows);
* killing a worker mid-task (the integration drill) loses nothing: the
  lease is reclaimed, a survivor re-executes the run, and the collected
  BENCH matches the uninterrupted baseline;
* a BENCH file and a surviving journal that *disagree* fail every reader
  loudly, naming the divergent ``(index, seed)`` pairs.
"""

import http.client
import itertools
import json
import os
import re
import signal
import sqlite3
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.experiments import (
    LedgerDivergence,
    QueueBusy,
    QueueCorrupt,
    QueueIncomplete,
    RunRecord,
    SweepSpec,
    check_journal_agreement,
    collect_queue,
    enqueue_sweep,
    load_bench,
    merge_journal_records,
    run_sweep,
    work_queue,
    write_bench,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.distributed import (
    claim_next,
    corrupt_report,
    default_heartbeat,
    lease_report,
    load_queue_spec,
    queue_db_path,
    queue_dir,
    queue_progress,
    queue_status,
    reclaim_stale,
    shard_path,
    validate_lease_timings,
)
from repro.experiments.runner import execute_run_safe
from repro.obs import load_trace_events, summarise_trace
from repro.experiments.results import (
    append_journal,
    journal_path,
    load_journal,
    merge_record_streams,
    rows_bytes,
    write_journal_header,
)
from repro.experiments.specs import RunSpec, SamplerSpec
from repro.experiments.transports import (
    Claim,
    CorruptTask,
    DirectoryTransport,
    HttpTransport,
    SqliteTransport,
    make_server,
    resolve_transport,
)
from repro.experiments.transports.http import (
    HTTP_PROTOCOL_VERSION,
    MAX_REQUEST_BYTES,
)

SEED = 20010202
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

TRANSPORTS = ["dir", "sqlite", "http"]


def tiny_spec(name="queued", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(name, "dihedral_rotation", {"n": [8, 12]}, **defaults)


def faulty_spec(name="queued-faulty", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(
        name, "diagnostic_fault", {"n": [8], "fail": [False, True]}, **defaults
    )


# HTTP queues are a coordinator process in front of a SQLite database; in
# tests the coordinator runs on a daemon thread in this process.  The
# registries let `make_queue` hand back a plain URL (what workers see) while
# the fault-injection helpers reach through to the backing database, and the
# autouse fixture below guarantees every coordinator dies with its test.
_LIVE_SERVERS = []
_HTTP_BACKING = {}


def start_http_queue(db_path, port=0):
    """Serve ``db_path`` over HTTP on a daemon thread; return the queue URL."""
    server = make_server(db_path, "127.0.0.1", port)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, bound_port = server.server_address[:2]
    url = f"http://{host}:{bound_port}"
    _LIVE_SERVERS.append(server)
    _HTTP_BACKING[url] = db_path
    return url


def stop_http_server(server):
    server.shutdown()
    server.server_close()
    if server in _LIVE_SERVERS:
        _LIVE_SERVERS.remove(server)


@pytest.fixture(autouse=True)
def _reap_http_servers():
    yield
    while _LIVE_SERVERS:
        stop_http_server(_LIVE_SERVERS[-1])
    _HTTP_BACKING.clear()


def backing_db(queue):
    """The SQLite file behind ``queue`` — the queue itself unless it is a
    coordinator URL started by :func:`start_http_queue`."""
    return _HTTP_BACKING.get(queue, queue)


def make_queue(tmp_path, kind, spec):
    """The queue location of ``spec`` for a transport kind under ``tmp_path``."""
    if kind == "dir":
        return queue_dir(str(tmp_path), spec.name)
    db = queue_db_path(str(tmp_path), spec.name)
    if kind == "http":
        return start_http_queue(db)
    return db


def cli_queue_args(tmp_path, kind, name="queue-smoke"):
    """(queue location, enqueue argv) for a CLI lifecycle test of ``kind``:
    HTTP queues are addressed by coordinator URL (``--queue-url``), the
    filesystem kinds by their ``QUEUE_<name>`` path under ``--out``."""
    out = str(tmp_path)
    if kind == "http":
        url = start_http_queue(queue_db_path(out, name))
        return url, ["enqueue", name, "--queue-url", url]
    suffix = ".sqlite" if kind == "sqlite" else ""
    queue = os.path.join(out, f"QUEUE_{name}{suffix}")
    return queue, ["enqueue", name, "--out", out, "--transport", kind]


def force_stale(queue, kind, age=900.0):
    """Backdate every live lease's liveness stamp by ``age`` seconds — the
    holder 'died' that long ago and its heartbeat froze."""
    if kind == "dir":
        leases = os.path.join(queue, "leases")
        stamp = time.time() - age
        for name in os.listdir(leases):
            os.utime(os.path.join(leases, name), (stamp, stamp))
    else:
        resolve_transport(backing_db(queue))._connect().execute(
            "UPDATE tasks SET heartbeat_at = heartbeat_at - ? WHERE status = 'running'",
            (age,),
        )


def plant_corrupt_task(queue, kind):
    """Corrupt the lowest-indexed pending task's payload (torn mid-write /
    hand-edited)."""
    if kind == "dir":
        tasks = os.path.join(queue, "tasks")
        task = os.path.join(tasks, sorted(os.listdir(tasks))[0])
        with open(task, "w", encoding="utf-8") as handle:
            handle.write('{"sweep": "queued", "ind')  # torn mid-write
    else:
        resolve_transport(backing_db(queue))._connect().execute(
            "UPDATE tasks SET run_json = '{\"torn' "
            "WHERE idx = (SELECT MIN(idx) FROM tasks WHERE status = 'pending')"
        )


@pytest.fixture(params=TRANSPORTS)
def kind(request):
    return request.param


class TestSpecSerialization:
    def test_run_spec_round_trips_through_json(self):
        spec = SweepSpec.from_grid(
            "rt",
            "abelian_random",
            {"moduli": [(16, 9, 5)], "confidence": [4]},
            repeats=3,
            seed=7,
            sampler=SamplerSpec(backend="analytic", shards=2),
            solver_options={"engine_cache_dir": "/tmp/cache"},
            engine=False,
        )
        for run in spec.expand():
            round_tripped = RunSpec.from_json_dict(json.loads(json.dumps(run.to_json_dict())))
            assert round_tripped == run

    def test_sweep_spec_round_trips_through_json(self):
        for spec in (tiny_spec(), faulty_spec(), SweepSpec.from_grid(
            "rt2", "abelian_random", {"moduli": [(8, 9), (16, 9, 5)]}, description="d"
        )):
            round_tripped = SweepSpec.from_json_dict(json.loads(json.dumps(spec.to_json_dict())))
            assert round_tripped == spec
            assert round_tripped.expand() == spec.expand()

    def test_sampler_spec_round_trips(self):
        for sampler in (SamplerSpec(), SamplerSpec(backend="statevector", batch=False, shards=3)):
            assert SamplerSpec.from_json_dict(sampler.to_json_dict()) == sampler


class TestTransportResolution:
    def test_explicit_kinds(self, tmp_path):
        assert isinstance(resolve_transport(str(tmp_path / "q"), "dir"), DirectoryTransport)
        assert isinstance(resolve_transport(str(tmp_path / "q.sqlite"), "sqlite"), SqliteTransport)

    def test_auto_detects_an_existing_directory(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="dir")
        assert isinstance(resolve_transport(queue), DirectoryTransport)

    def test_auto_detects_an_existing_database_by_magic(self, tmp_path):
        spec = tiny_spec()
        # deliberately no .sqlite extension: detection must sniff the header
        queue = str(tmp_path / "queue-without-extension")
        enqueue_sweep(spec, queue, kind="sqlite")
        assert isinstance(resolve_transport(queue), SqliteTransport)
        assert load_queue_spec(queue) == spec

    def test_auto_routes_missing_paths_by_extension(self, tmp_path):
        assert isinstance(resolve_transport(str(tmp_path / "q.sqlite")), SqliteTransport)
        assert isinstance(resolve_transport(str(tmp_path / "q.db")), SqliteTransport)
        assert isinstance(resolve_transport(str(tmp_path / "QUEUE_q")), DirectoryTransport)

    def test_auto_refuses_a_foreign_file(self, tmp_path):
        path = tmp_path / "not-a-queue.sqlite"
        path.write_text("just some text")
        with pytest.raises(QueueCorrupt, match="neither a queue directory nor"):
            resolve_transport(str(path))

    def test_transport_instances_pass_through(self, tmp_path):
        transport = DirectoryTransport(str(tmp_path / "q"))
        assert resolve_transport(transport) is transport

    def test_auto_detects_a_coordinator_url(self):
        # construction is lazy: no coordinator needs to be listening just to
        # resolve the kind from the URL scheme
        assert isinstance(resolve_transport("http://127.0.0.1:1"), HttpTransport)
        assert isinstance(resolve_transport("https://example.org/queue"), HttpTransport)
        assert isinstance(resolve_transport("http://127.0.0.1:1", "http"), HttpTransport)

    def test_http_kind_rejects_a_non_url(self, tmp_path):
        with pytest.raises(ValueError, match="http"):
            resolve_transport(str(tmp_path / "q.sqlite"), "http")


class TestEnqueue:
    def test_enqueue_materialises_every_run_as_a_task(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        counts = enqueue_sweep(spec, queue, kind=kind)
        assert counts == {"enqueued": 4, "already_done": 0}
        status = queue_status(queue)
        assert status == {"tasks": 4, "leases": 0, "shards": 0, "corrupt": 0}
        assert load_queue_spec(queue) == spec
        # tasks parse back to the exact expansion
        runs = []
        while True:
            claim = claim_next(queue, "w0")
            if claim is None:
                break
            assert isinstance(claim, Claim)
            runs.append(claim.run)
        assert runs == spec.expand()

    def test_enqueue_refuses_a_busy_queue(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        with pytest.raises(ValueError, match="outstanding"):
            enqueue_sweep(spec, queue)

    def test_enqueue_refuses_a_different_spec(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        with pytest.raises(ValueError, match="different sweep configuration"):
            enqueue_sweep(spec.with_overrides(seed=7), queue)

    def test_reenqueue_of_a_drained_queue_retries_errors_only(self, tmp_path, kind):
        spec = faulty_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w0")
        counts = enqueue_sweep(spec, queue)  # 2 ok rows stay done, 2 errors retry
        assert counts == {"enqueued": 2, "already_done": 2}
        status = queue_status(queue)
        assert status["tasks"] == 2


class TestClaimAndLease:
    def test_claim_is_exactly_once(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        seen = set()
        for worker in ("a", "b", "a", "b", "a"):
            claim = claim_next(queue, worker)
            if claim is None:
                break
            assert claim.run.index not in seen
            seen.add(claim.run.index)
        assert seen == {0, 1, 2, 3}
        assert claim_next(queue, "c") is None

    def test_fresh_leases_are_not_reclaimed(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        claim_next(queue, "w0")
        assert reclaim_stale(queue, stale_after=60.0) == 0
        assert queue_status(queue)["leases"] == 1

    def test_stale_lease_is_reclaimed_and_reexecuted(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        claim_next(queue, "dead")
        force_stale(queue, kind)  # the holder died; its heartbeat froze
        assert reclaim_stale(queue, stale_after=10.0) == 1
        status = queue_status(queue)
        assert (status["tasks"], status["leases"]) == (4, 0)
        # a live worker drains everything, including the reclaimed run
        stats = work_queue(queue, worker_id="alive")
        assert stats["executed"] == 4
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_lease_clock_starts_at_the_claim_not_at_enqueue(self, tmp_path):
        # os.rename preserves the task file's mtime, so without the
        # claim-time touch a task claimed long after enqueue would be born
        # stale and reclaimed out from under its live holder
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        stamp = time.time() - 900
        tasks = os.path.join(queue, "tasks")
        for name in os.listdir(tasks):
            os.utime(os.path.join(tasks, name), (stamp, stamp))
        claim_next(queue, "slowpoke")
        assert reclaim_stale(queue, stale_after=60.0) == 0
        assert queue_status(queue)["leases"] == 1

    def test_restarted_worker_recovers_a_truncated_shard(self, tmp_path):
        # a crash inside the header write leaves a zero-byte shard; a
        # restarted worker with the same id must re-head it (not append
        # records into a headerless file collect can never read)
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        open(shard_path(queue, "w0"), "w").close()
        stats = work_queue(queue, worker_id="w0")
        assert stats["executed"] == 4
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_restarted_worker_compacts_a_torn_shard_tail(self, tmp_path):
        # a crash mid-append leaves a torn trailing fragment; restarting the
        # worker must compact it so its own appends start on a clean line
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0", max_tasks=2)
        shard = shard_path(queue, "w0")
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "torn')  # no trailing newline
        stats = work_queue(queue, worker_id="w0")
        assert stats["executed"] == 2
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_worker_refuses_a_foreign_shard(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        # a shard left by a *different* sweep configuration must be refused
        write_journal_header(shard_path(queue, "w0"), spec.with_overrides(seed=7))
        with pytest.raises(ValueError, match="different sweep configuration"):
            work_queue(queue, worker_id="w0")


class TestCorruptQuarantine:
    """The corrupt-task lease bugfix: quarantine instead of the old
    crash-holding-the-lease → stale-reclaim → crash-again ping-pong."""

    def test_corrupt_task_is_quarantined_and_queue_drains(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        plant_corrupt_task(queue, kind)
        stats = work_queue(queue, worker_id="w0")
        # the queue drained around the corrupt task instead of crashing
        assert stats["executed"] == 3
        assert stats["corrupt"] == 1
        status = queue_status(queue)
        assert status["tasks"] == 0
        assert status["leases"] == 0
        assert status["corrupt"] == 1
        reports = corrupt_report(queue)
        assert len(reports) == 1
        assert isinstance(reports[0], CorruptTask)
        assert reports[0].reason

    def test_claim_next_surfaces_the_quarantine(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        plant_corrupt_task(queue, kind)
        claim = claim_next(queue, "w0")
        assert isinstance(claim, CorruptTask)
        # the quarantined task is out of the claimable set: no lease exists,
        # so no reclaim ping-pong can ever start
        assert queue_status(queue)["leases"] == 0
        assert reclaim_stale(queue, stale_after=0.001) == 0
        nxt = claim_next(queue, "w0")
        assert isinstance(nxt, Claim)

    def test_collect_refuses_a_quarantined_queue_naming_tasks(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        plant_corrupt_task(queue, kind)
        work_queue(queue, worker_id="w0")
        with pytest.raises(QueueCorrupt, match="quarantined 1 corrupt task"):
            collect_queue(queue, str(tmp_path))

    def test_reenqueue_reissues_quarantined_tasks(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        plant_corrupt_task(queue, kind)
        work_queue(queue, worker_id="w0")
        counts = enqueue_sweep(spec, queue)
        assert counts == {"enqueued": 1, "already_done": 3}
        assert corrupt_report(queue) == []
        work_queue(queue, worker_id="w1")
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_work_cli_reports_quarantine_once_and_exits_nonzero(self, tmp_path, kind, capsys):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        plant_corrupt_task(queue, kind)
        assert cli_main(["work", queue, "--worker-id", "w0"]) == 1
        captured = capsys.readouterr()
        assert "executed 3 task(s)" in captured.out
        assert captured.err.count("CORRUPT:") == 1
        assert "re-enqueue" in captured.err


class TestCollectBusy:
    """The collect-with-live-lease bugfix: a covered expansion plus an
    outstanding lease (a reclaim-after-append duplicate still executing)
    refuses collect unless forced."""

    def _covered_queue_with_live_lease(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w0")
        # simulate the reclaim-after-append state: the run's record is in
        # w0's shard, but a re-issued task for it is claimed and live
        resolve_transport(queue).enqueue([spec.expand()[0]])
        claim = claim_next(queue, "w-live")
        assert isinstance(claim, Claim)
        return spec, queue

    def test_collect_refuses_while_a_lease_is_live(self, tmp_path, kind):
        _, queue = self._covered_queue_with_live_lease(tmp_path, kind)
        with pytest.raises(QueueBusy, match="live lease"):
            collect_queue(queue, str(tmp_path))

    def test_force_collects_the_covered_rows(self, tmp_path, kind):
        spec, queue = self._covered_queue_with_live_lease(tmp_path, kind)
        _, payload = collect_queue(queue, str(tmp_path), force=True)
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_collect_cli_force_warns_but_succeeds(self, tmp_path, kind, capsys):
        _, queue = self._covered_queue_with_live_lease(tmp_path, kind)
        assert cli_main(["collect", queue, "--out", str(tmp_path)]) == 1
        assert "live lease" in capsys.readouterr().err
        assert cli_main(["collect", queue, "--out", str(tmp_path), "--force"]) == 0
        assert "warning: collected with 1 live lease(s)" in capsys.readouterr().err

    def test_incomplete_beats_busy_in_the_error_report(self, tmp_path, kind):
        # with records actually missing the error must say *incomplete*
        # (run more workers), not busy (wait) — the actionable message wins
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        claim = claim_next(queue, "w-live")
        assert isinstance(claim, Claim)
        with pytest.raises(QueueIncomplete, match="1 outstanding lease"):
            collect_queue(queue, str(tmp_path))


class TestLeaseTimings:
    """The heartbeat-default bugfix: 'every few seconds', never a quarter of
    the staleness threshold; degenerate timings rejected up front."""

    def test_default_heartbeat_is_a_tenth_capped_at_five_seconds(self):
        assert default_heartbeat(300.0) == 5.0  # was 75 s (stale/4)
        assert default_heartbeat(20.0) == 2.0
        assert default_heartbeat(1.2) == pytest.approx(0.12)

    def test_validate_rejects_degenerate_timings(self):
        with pytest.raises(ValueError, match="stale-after must be positive"):
            validate_lease_timings(0.0, 1.0, None)
        with pytest.raises(ValueError, match="stale-after must be positive"):
            validate_lease_timings(-5.0, 1.0, None)
        with pytest.raises(ValueError, match="poll must be positive"):
            validate_lease_timings(300.0, 0.0, None)
        with pytest.raises(ValueError, match="heartbeat"):
            validate_lease_timings(300.0, 1.0, 300.0)  # heartbeat == stale
        with pytest.raises(ValueError, match="heartbeat"):
            validate_lease_timings(300.0, 1.0, 0.0)
        validate_lease_timings(300.0, 1.0, 5.0)  # sane values pass

    def test_work_queue_rejects_zero_stale_after(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        with pytest.raises(ValueError, match="stale-after"):
            work_queue(queue, worker_id="w0", stale_after=0.0)

    def test_work_cli_rejects_nonpositive_timings_at_parse_time(self, tmp_path, capsys):
        for flags in (["--stale-after", "0"], ["--poll", "-1"], ["--heartbeat", "0"]):
            with pytest.raises(SystemExit):
                cli_main(["work", str(tmp_path)] + flags)
            assert "positive" in capsys.readouterr().err

    def test_work_cli_rejects_heartbeat_at_or_past_stale_after(self, tmp_path, kind, capsys):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        assert cli_main(["work", queue, "--stale-after", "10", "--heartbeat", "10"]) == 1
        assert "heartbeat" in capsys.readouterr().err


class TestWorkAndCollect:
    def test_single_worker_queue_matches_run(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        stats = work_queue(queue, worker_id="solo")
        assert stats == {"executed": 4, "errors": 0, "reclaimed": 0, "corrupt": 0}
        path, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        assert rows_bytes(load_bench(path)) == rows_bytes(baseline)

    def test_two_alternating_workers_match_run(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        # interleave two workers one task at a time: four shard-wise splits
        executed = 0
        while executed < 4:
            for worker in ("w1", "w2"):
                executed += work_queue(queue, worker_id=worker, max_tasks=1)["executed"]
        assert queue_status(queue)["shards"] == 2
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_noisy_sweep_distributed_matches_run(self, tmp_path, kind):
        # The noise-channel determinism drill: corrupted answers derive from
        # the per-run seed, never from which worker executes the run, so a
        # noisy 2-worker work/collect is byte-identical to the
        # single-process `run` on both transports.
        spec = SweepSpec.from_grid(
            "queued-noisy",
            "dihedral_rotation",
            {
                "n": [8, 12],
                "noise": ["oracle-flip(0.3)"],
                "strategy": ["hidden_normal", "classical_adaptive"],
            },
            repeats=2,
            seed=SEED,
        )
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        executed = 0
        while executed < len(spec.expand()):
            for worker in ("w1", "w2"):
                executed += work_queue(queue, worker_id=worker, max_tasks=1)["executed"]
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        statuses = {row["status"] for row in payload["rows"]}
        assert "error" not in statuses

    def test_error_rows_flow_through_the_queue(self, tmp_path, kind):
        spec = faulty_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        stats = work_queue(queue, worker_id="w0")
        assert stats["executed"] == 4 and stats["errors"] == 2
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        assert payload["aggregate"]["errors"] == 2

    def test_collect_refuses_an_incomplete_queue(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w0", max_tasks=2)
        with pytest.raises(QueueIncomplete, match=r"2 run\(s\) have no journaled record"):
            collect_queue(queue, str(tmp_path))

    def test_collect_refuses_foreign_shard_records(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w0")
        rogue = RunRecord(
            sweep=spec.name, index=99, family="dihedral_rotation", params={"n": 8},
            repeat=0, seed=1, strategy="auto", success=True, generators=[], query_report={},
        )
        resolve_transport(queue).append_record(spec, "w0", rogue)
        with pytest.raises(QueueCorrupt, match="outside the pinned sweep expansion"):
            collect_queue(queue, str(tmp_path))

    def test_partial_shard_torn_line_counts_as_missing(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0")
        shard = shard_path(queue, "w0")
        lines = open(shard, "r", encoding="utf-8").read().splitlines(keepends=True)
        with open(shard, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])  # tear the final record
        with pytest.raises(QueueIncomplete, match=r"1 run\(s\)"):
            collect_queue(queue, str(tmp_path))

    def test_duplicate_records_across_shards_dedup_preferring_ok(self, tmp_path, kind):
        spec = faulty_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w0")
        # a reclaimed-after-append duplicate: the same runs journaled again
        # by a second worker, with one legitimate error row flipped to ok —
        # the merge must prefer the ok record wherever one exists
        transport = resolve_transport(queue)
        streams = dict(transport.record_streams(spec))
        (records,) = streams.values()
        import dataclasses

        transport.prepare_shard(spec, "w1")
        for key, record in sorted(records.items()):
            if record.status == "error":
                record = dataclasses.replace(record, status="ok", error=None, success=True)
            transport.append_record(spec, "w1", record)
        streams = [recs for _, recs in transport.record_streams(spec)]
        merged = merge_record_streams(streams)
        assert len(merged) == 4
        assert all(record.status == "ok" for record in merged.values())
        # and the reverse shard order makes no difference
        reversed_merge = merge_record_streams(reversed(streams))
        assert {k: v.row() for k, v in merged.items()} == {
            k: v.row() for k, v in reversed_merge.items()
        }


class TestSqliteSpecifics:
    def test_database_runs_in_wal_mode(self, tmp_path):
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        (mode,) = resolve_transport(queue)._connect().execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"

    def test_record_rows_store_journal_identical_lines(self, tmp_path):
        # the byte-identity contract rests on both transports serializing
        # records to the exact same sorted-key JSON form
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        work_queue(queue, worker_id="w0", max_tasks=1)
        (line,) = resolve_transport(queue)._connect().execute(
            "SELECT record_json FROM records"
        ).fetchone()
        record = RunRecord.from_json_dict(json.loads(line))
        assert json.dumps(record.to_json_dict(), sort_keys=True) == line

    def test_wrong_layout_version_is_refused(self, tmp_path):
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        resolve_transport(queue)._connect().execute(
            "UPDATE meta SET value = '999' WHERE key = 'queue_version'"
        )
        with pytest.raises(QueueCorrupt, match="layout version"):
            load_queue_spec(queue)

    def test_unparseable_record_row_stops_that_shard_stream(self, tmp_path):
        # mirror of the journal torn-line contract: a hand-edited record row
        # ends that shard at the last good record instead of crashing
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        work_queue(queue, worker_id="w0")
        resolve_transport(queue)._connect().execute(
            "UPDATE records SET record_json = 'garbage' WHERE seq = 2"
        )
        with pytest.raises(QueueIncomplete, match=r"2 run\(s\)"):
            collect_queue(queue, str(tmp_path))

    def test_missing_database_is_a_corrupt_queue(self, tmp_path):
        with pytest.raises(QueueCorrupt, match="does not exist"):
            work_queue(str(tmp_path / "no-such.sqlite"), worker_id="w0")


class TestKillAWorker:
    def _spawn_worker(self, queue, worker_id):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments", "work", queue,
                "--worker-id", worker_id,
                "--stale-after", "1.2", "--poll", "0.1", "--heartbeat", "0.25",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def _live_leases(self, queue, kind):
        if kind == "dir":
            leases = os.path.join(queue, "leases")
            return [name.split("@", 1)[1] for name in os.listdir(leases) if "@" in name]
        rows = resolve_transport(backing_db(queue))._connect().execute(
            "SELECT worker FROM tasks WHERE status = 'running'"
        ).fetchall()
        return [worker for (worker,) in rows]

    def test_sigkilled_worker_loses_nothing(self, tmp_path, kind):
        # 3 workers on one queue; one is SIGKILLed mid-task.  Its lease must
        # go stale and be reclaimed, a survivor re-executes the run, and the
        # collected BENCH rows are byte-identical to an uninterrupted
        # single-process run.  The diagnostic family's `delay` parameter
        # guarantees a wide mid-task window to land the kill in.
        spec = SweepSpec.from_grid(
            "kill-drill",
            "diagnostic_fault",
            {"n": [8], "delay": [0.4]},
            repeats=6,
            seed=SEED,
        )
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        workers = {wid: self._spawn_worker(queue, wid) for wid in ("w0", "w1", "w2")}
        victim = None
        deadline = time.time() + 20.0
        while time.time() < deadline:
            held = self._live_leases(queue, kind)
            if held:
                victim = held[0]
                break
            time.sleep(0.005)
        assert victim is not None, "no worker ever claimed a task"
        workers[victim].send_signal(signal.SIGKILL)
        workers[victim].wait(timeout=30)
        survivor_output = []
        for wid, proc in workers.items():
            if wid == victim:
                continue
            out, _ = proc.communicate(timeout=90)
            survivor_output.append(out)
            assert proc.returncode == 0, out
        assert queue_status(queue)["tasks"] == 0
        assert queue_status(queue)["leases"] == 0, "the dead worker's lease must be reclaimed"
        path, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        assert rows_bytes(load_bench(path)) == rows_bytes(baseline)
        assert payload["aggregate"]["runs"] == 6
        assert payload["aggregate"]["errors"] == 0


class TestLedgerDivergence:
    def _completed_bench_with_journal(self, tmp_path, mutate):
        spec = tiny_spec("diverge")
        path, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path))
        # resurrect the journal as if the process crashed between write_bench
        # and remove_journal, then apply `mutate` to the payload rows to
        # fabricate the disagreement
        jpath = journal_path(str(tmp_path), "diverge")
        write_journal_header(jpath, spec)
        for row in payload["rows"]:
            entry = dict(row)
            entry["sweep"] = spec.name
            entry["wall_time_seconds"] = 0.0
            record = RunRecord.from_json_dict(entry)
            append_journal(jpath, record)
        mutated = json.loads(json.dumps(payload))
        mutate(mutated)
        write_bench(str(tmp_path), "diverge", mutated)
        return path

    def test_agreeing_journal_is_accepted(self, tmp_path):
        path = self._completed_bench_with_journal(tmp_path, lambda payload: None)
        assert cli_main(["report", "diverge", "--out", str(tmp_path)]) == 0

    def test_divergent_journal_fails_report_naming_pairs(self, tmp_path, capsys):
        def flip(payload):
            payload["rows"][1]["success"] = not payload["rows"][1]["success"]

        self._completed_bench_with_journal(tmp_path, flip)
        assert cli_main(["report", "diverge", "--out", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "disagree" in err
        assert "(1," in err  # the divergent (index, seed) pair is named

    def test_divergent_journal_fails_summarise(self, tmp_path, capsys):
        def flip(payload):
            payload["rows"][0]["query_report"]["quantum_queries"] = 10**6

        self._completed_bench_with_journal(tmp_path, flip)
        assert cli_main(["summarise", "diverge", "--out", str(tmp_path)]) == 1
        assert "disagree" in capsys.readouterr().err

    def test_journal_of_a_different_spec_is_divergence(self, tmp_path):
        spec = tiny_spec("diverge2")
        _, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path))
        jpath = journal_path(str(tmp_path), "diverge2")
        write_journal_header(jpath, spec.with_overrides(seed=99))
        with pytest.raises(LedgerDivergence, match="different sweep configuration"):
            check_journal_agreement(payload, jpath, path="BENCH_diverge2.json")


class TestQueueCLI:
    def test_enqueue_work_collect_lifecycle(self, tmp_path, kind, capsys):
        out = str(tmp_path)
        queue, enqueue_argv = cli_queue_args(tmp_path, kind)
        assert cli_main(enqueue_argv) == 0
        assert "enqueued 6 task(s)" in capsys.readouterr().out
        assert cli_main(["work", queue, "--worker-id", "w1", "--max-tasks", "3"]) == 0
        assert cli_main(["work", queue, "--worker-id", "w2"]) == 0
        assert cli_main(["collect", queue, "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "6 runs" in captured
        assert os.path.exists(os.path.join(out, "BENCH_queue-smoke.json"))

    def test_enqueue_queue_db_overrides_location(self, tmp_path):
        db = str(tmp_path / "nested" / "my-queue.db")
        assert cli_main(["enqueue", "queue-smoke", "--queue-db", db]) == 0
        assert os.path.exists(db)
        assert queue_status(db)["tasks"] == 6
        assert load_queue_spec(db).name == "queue-smoke"

    def test_collect_incomplete_queue_exits_nonzero(self, tmp_path, capsys):
        out = str(tmp_path)
        queue = os.path.join(out, "QUEUE_queue-smoke")
        assert cli_main(["enqueue", "queue-smoke", "--out", out]) == 0
        assert cli_main(["collect", queue, "--out", out]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_enqueue_unknown_workload_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["enqueue", "no-such-sweep", "--out", str(tmp_path)]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_work_on_a_non_queue_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["work", str(tmp_path)]) == 1
        assert "spec.json" in capsys.readouterr().err

    def test_enqueue_with_overrides_round_trips(self, tmp_path, kind):
        queue, enqueue_argv = cli_queue_args(tmp_path, kind)
        assert cli_main(enqueue_argv + ["--repeats", "1", "--seed", "5"]) == 0
        spec = load_queue_spec(queue)
        assert spec.repeats == 1 and spec.seed == 5
        assert queue_status(queue)["tasks"] == 3

    def test_enqueue_transport_http_requires_a_queue_url(self, tmp_path, capsys):
        assert cli_main(
            ["enqueue", "queue-smoke", "--out", str(tmp_path), "--transport", "http"]
        ) == 1
        assert "--queue-url" in capsys.readouterr().err


class TestStatusObservability:
    """The PR 7 observability surface: transport status parity, lease
    details with heartbeat ages, the heartbeat clock-step regression, and
    the traced-drain byte-identity acceptance check."""

    def test_status_parity_across_all_task_states(self, tmp_path):
        # every transport must report identical counts at every lifecycle
        # stage: pending, quarantined, running, and done-with-shard
        spec = tiny_spec()
        histories = {}
        for kind in TRANSPORTS:
            root = tmp_path / kind
            root.mkdir()
            queue = make_queue(root, kind, spec)
            enqueue_sweep(spec, queue, kind=kind)
            transport = resolve_transport(queue)
            history = [transport.status()]                    # all pending
            plant_corrupt_task(queue, kind)
            first = transport.claim_next("w0")
            assert isinstance(first, CorruptTask)
            history.append(transport.status())                # one quarantined
            claim = transport.claim_next("w0")
            assert isinstance(claim, Claim)
            history.append(transport.status())                # one running
            record = execute_run_safe(claim.run)
            transport.prepare_shard(spec, "w0")
            transport.append_record(spec, "w0", record)
            transport.release(claim)
            history.append(transport.status())                # done + shard
            histories[kind] = history
        assert histories["dir"] == histories["sqlite"] == histories["http"]
        assert histories["dir"] == [
            {"tasks": 4, "leases": 0, "shards": 0, "corrupt": 0},
            {"tasks": 3, "leases": 0, "shards": 0, "corrupt": 1},
            {"tasks": 2, "leases": 1, "shards": 0, "corrupt": 1},
            {"tasks": 2, "leases": 0, "shards": 1, "corrupt": 1},
        ]

    def test_lease_details_name_holder_and_age(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        assert lease_report(queue) == []
        claim = claim_next(queue, "w-obs")
        (entry,) = lease_report(queue)
        assert entry["task_id"] == claim.task_id
        assert entry["worker"] == "w-obs"
        assert 0.0 <= entry["age_seconds"] < 60.0
        force_stale(queue, kind, age=900.0)
        (aged,) = lease_report(queue)
        assert aged["age_seconds"] > 800.0
        # purely observational: reading details must not touch liveness
        assert reclaim_stale(queue, stale_after=600.0) == 1

    def test_sqlite_heartbeat_survives_a_backwards_clock_step(self, tmp_path, monkeypatch):
        # regression: an NTP step back between beats used to rewind
        # heartbeat_at into the stale window, so a *live* lease was
        # reclaimed out from under its holder
        from repro.experiments.transports import sqlite as sqlite_mod

        spec = tiny_spec()
        queue = make_queue(tmp_path, "sqlite", spec)
        enqueue_sweep(spec, queue, kind="sqlite")
        transport = resolve_transport(queue)
        clock = {"t": 1000.0}
        monkeypatch.setattr(sqlite_mod, "_now", lambda: clock["t"])
        claim = transport.claim_next("w0")
        assert isinstance(claim, Claim)
        assert transport.heartbeat(claim)
        clock["t"] = 400.0                      # wall clock steps back 10 min
        assert transport.heartbeat(claim)       # stamp must not rewind
        clock["t"] = 1005.0
        (entry,) = transport.lease_details()
        assert entry["age_seconds"] == pytest.approx(5.0)
        assert transport.reclaim_stale(300.0) == 0  # the live lease survives
        clock["t"] = 1400.0                     # now genuinely silent
        assert transport.reclaim_stale(300.0) == 1

    def test_queue_progress_reports_per_worker_records(self, tmp_path, kind):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w1", max_tasks=3)
        work_queue(queue, worker_id="w2")
        progress = queue_progress(queue)
        assert progress["name"] == spec.name
        assert progress["expected"] == 4 and progress["covered"] == 4
        assert progress["errors"] == 0
        by_worker = {entry["worker"]: entry["records"] for entry in progress["workers"]}
        assert by_worker == {"w1": 3, "w2": 1}

    def test_traced_two_worker_drain_matches_untraced_run(self, tmp_path, kind):
        # the PR acceptance check: tracing through work_queue leaves the
        # collected BENCH byte-identical, and the trace covers the solver,
        # sampler, and engine layers plus the worker loop itself
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        trace = str(tmp_path / "trace.jsonl")
        executed = 0
        while executed < 4:
            for worker in ("w1", "w2"):
                executed += work_queue(
                    queue, worker_id=worker, max_tasks=1, trace=trace
                )["executed"]
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        summary = summarise_trace(load_trace_events([trace]))
        assert {"w1", "w2"} <= set(summary["workers"])
        names = set(summary["spans"])
        assert {"worker", "task", "run", "sampler.batch", "engine.build"} <= names
        assert any(name.startswith("solver.strategy.") for name in names)
        assert summary["spans"]["worker"]["counters"]["executed"] == 4


class TestStatusCLI:
    def test_status_shows_progress_workers_and_leases(self, tmp_path, kind, capsys):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        work_queue(queue, worker_id="w1", max_tasks=2)
        claim = claim_next(queue, "w2")  # leave one live lease outstanding
        assert isinstance(claim, Claim)
        assert cli_main(["status", queue]) == 0
        out = capsys.readouterr().out
        assert "2/4 run(s) journaled" in out
        assert "w1: 2 record(s)" in out
        assert "held by w2" in out
        assert "STALE" not in out

    def test_status_flags_stale_leases(self, tmp_path, kind, capsys):
        spec = tiny_spec()
        queue = make_queue(tmp_path, kind, spec)
        enqueue_sweep(spec, queue, kind=kind)
        claim_next(queue, "w-dead")
        force_stale(queue, kind, age=900.0)
        assert cli_main(["status", queue]) == 0
        out = capsys.readouterr().out
        assert "held by w-dead" in out
        assert "STALE (reclaimable)" in out

    def test_status_on_a_non_queue_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["status", str(tmp_path / "nope")]) == 1
        assert capsys.readouterr().err

    def test_status_cli_rejects_nonpositive_stale_after_at_parse_time(self, tmp_path, capsys):
        # the staleness annotation uses the same lease-timing validation as
        # `work`: zero/negative thresholds are argparse errors, not silent
        # every-lease-is-stale reports
        for value in ("0", "-3"):
            with pytest.raises(SystemExit):
                cli_main(["status", str(tmp_path), "--stale-after", value])
            assert "positive" in capsys.readouterr().err

    def test_traced_work_cli_matches_untraced_collect(self, tmp_path, kind, capsys):
        # end-to-end through the CLI: --trace on work never perturbs collect
        out = str(tmp_path)
        queue, enqueue_argv = cli_queue_args(tmp_path, kind)
        trace = os.path.join(out, "trace.jsonl")
        assert cli_main(enqueue_argv) == 0
        assert cli_main(["work", queue, "--worker-id", "w1", "--trace", trace]) == 0
        assert cli_main(["collect", queue, "--out", out]) == 0
        capsys.readouterr()
        from repro.experiments.workloads import get_workload

        _, baseline = run_sweep(get_workload("queue-smoke"), out_dir=None)
        collected = load_bench(os.path.join(out, "BENCH_queue-smoke.json"))
        assert rows_bytes(collected) == rows_bytes(baseline)
        assert cli_main(["trace", "summarise", trace]) == 0
        assert "worker" in capsys.readouterr().out


class TestMergeStatusRanking:
    """The cross-shard merge ranks ``ok > no_convergence > error`` — a
    reclaimed-after-append duplicate can never demote a success to a
    diagnostic row, whatever order the shards enumerate in."""

    _RANK = {"error": 0, "no_convergence": 1, "ok": 2}

    @staticmethod
    def _record(status):
        return RunRecord(
            sweep="merge", index=0, family="dihedral_rotation", params={"n": 8},
            repeat=0, seed=1, strategy="auto", success=status == "ok",
            generators=[], query_report={}, status=status,
            error="boom" if status == "error" else None,
        )

    @pytest.mark.parametrize(
        "first,second",
        list(itertools.permutations(["ok", "no_convergence", "error"], 2)),
    )
    def test_higher_rank_wins_in_either_arrival_order(self, first, second):
        merged = merge_record_streams([
            {(0, 1): self._record(first)},
            {(0, 1): self._record(second)},
        ])
        winner = max(first, second, key=self._RANK.get)
        assert merged[(0, 1)].status == winner

    def test_equal_rank_keeps_the_first_shard_record(self):
        for status in ("ok", "no_convergence", "error"):
            first, duplicate = self._record(status), self._record(status)
            merged = merge_record_streams([{(0, 1): first}, {(0, 1): duplicate}])
            assert merged[(0, 1)] is first

    def test_unknown_statuses_rank_with_error_at_the_bottom(self):
        import dataclasses

        exotic = dataclasses.replace(self._record("error"), status="future-status")
        for other in ("ok", "no_convergence"):
            merged = merge_record_streams([{(0, 1): exotic}, {(0, 1): self._record(other)}])
            assert merged[(0, 1)].status == other
        # against error it is a rank tie, and ties keep the first arrival
        merged = merge_record_streams([{(0, 1): exotic}, {(0, 1): self._record("error")}])
        assert merged[(0, 1)] is exotic


class TestSqliteErrorTranslation:
    """heartbeat/release translate backend failures into QueueCorrupt like
    every other operation — a worker's beat loop sees the transport's
    exception vocabulary, never a raw sqlite3.Error."""

    class _FailingConnection:
        def execute(self, *args, **kwargs):
            raise sqlite3.OperationalError("disk I/O error")

        def close(self):
            pass

    def _claimed_transport(self, tmp_path):
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        transport = SqliteTransport(queue)
        claim = transport.claim_next("w0")
        assert isinstance(claim, Claim)
        transport.close()
        transport._con = self._FailingConnection()
        return transport, claim

    def test_heartbeat_translates_sqlite_errors(self, tmp_path):
        transport, claim = self._claimed_transport(tmp_path)
        with pytest.raises(QueueCorrupt, match="refused the heartbeat"):
            transport.heartbeat(claim)

    def test_release_translates_sqlite_errors(self, tmp_path):
        transport, claim = self._claimed_transport(tmp_path)
        with pytest.raises(QueueCorrupt, match="refused the release"):
            transport.release(claim)


class TestTransportClose:
    """Transport.close() plumbing: helpers close what they open, so a
    drained SQLite queue leaves no WAL sidecar files behind, and transports
    owned by the caller are never closed out from under them."""

    @staticmethod
    def _sidecars(tmp_path):
        return sorted(
            name for name in os.listdir(str(tmp_path))
            if name.endswith(("-wal", "-shm"))
        )

    def test_drained_cycle_leaves_no_wal_sidecars(self, tmp_path):
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        work_queue(queue, worker_id="w0")
        collect_queue(queue, str(tmp_path))
        queue_status(queue)
        lease_report(queue)
        queue_progress(queue)
        assert self._sidecars(tmp_path) == []
        assert os.path.exists(queue)

    def test_status_cli_leaves_no_wal_sidecars(self, tmp_path, capsys):
        spec = tiny_spec()
        queue = queue_db_path(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue, kind="sqlite")
        assert cli_main(["status", queue]) == 0
        capsys.readouterr()
        assert self._sidecars(tmp_path) == []

    def test_caller_owned_transports_stay_open(self, tmp_path):
        spec = tiny_spec()
        transport = SqliteTransport(queue_db_path(str(tmp_path), spec.name))
        enqueue_sweep(spec, transport)
        assert transport._con is not None, "helpers must not close a caller's transport"
        assert queue_status(transport)["tasks"] == 4
        assert transport._con is not None
        transport.close()
        assert transport._con is None
        transport.close()  # idempotent

    def test_directory_close_is_a_noop(self, tmp_path):
        transport = DirectoryTransport(str(tmp_path / "q"))
        transport.close()


class TestHttpSpecifics:
    """The HTTP coordinator: restart resilience, request hygiene, and the
    version-checked handshake."""

    def _start(self, db, port=0):
        server = make_server(db, "127.0.0.1", port)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        _LIVE_SERVERS.append(server)
        return server

    @staticmethod
    def _url(server):
        host, port = server.server_address[:2]
        return f"http://{host}:{port}"

    def test_make_server_refuses_urls_and_directory_queues(self, tmp_path):
        with pytest.raises(ValueError, match="not a URL"):
            make_server("http://127.0.0.1:8765")
        with pytest.raises(ValueError, match="directory queue"):
            make_server(str(tmp_path))

    def test_client_retries_through_a_coordinator_restart(self, tmp_path):
        spec = tiny_spec()
        db = queue_db_path(str(tmp_path), spec.name)
        server = self._start(db)
        port = server.server_address[1]
        url = self._url(server)
        enqueue_sweep(spec, url, kind="http")
        transport = HttpTransport(url, backoff=0.05)
        assert transport.status()["tasks"] == 4
        stop_http_server(server)

        def relaunch():
            time.sleep(0.4)
            self._start(db, port=port)

        threading.Thread(target=relaunch, daemon=True).start()
        # issued while the coordinator is down: the client must stall in its
        # backoff loop, reconnect to the relaunched process, and succeed
        assert transport.status()["tasks"] == 4
        transport.close()

    def test_exhausted_retries_surface_as_queue_corrupt(self, tmp_path):
        spec = tiny_spec()
        db = queue_db_path(str(tmp_path), spec.name)
        server = self._start(db)
        url = self._url(server)
        enqueue_sweep(spec, url, kind="http")
        transport = HttpTransport(url, retries=2, backoff=0.01)
        assert transport.status()["tasks"] == 4
        stop_http_server(server)
        with pytest.raises(QueueCorrupt, match="unreachable after 3 attempt"):
            transport.status()

    def test_coordinator_restart_mid_sweep_loses_nothing(self, tmp_path):
        # the acceptance drill: a worker mid-drain survives its coordinator
        # being killed and relaunched on the same port, and the collected
        # rows stay byte-identical to a single-process run
        spec = SweepSpec.from_grid(
            "restart-drill",
            "diagnostic_fault",
            {"n": [8], "delay": [0.3]},
            repeats=4,
            seed=SEED,
        )
        db = queue_db_path(str(tmp_path), spec.name)
        server = self._start(db)
        port = server.server_address[1]
        url = self._url(server)
        enqueue_sweep(spec, url, kind="http")
        outcome = {}

        def drain():
            outcome["stats"] = work_queue(
                url, worker_id="w0", stale_after=60.0, poll=0.1
            )

        worker = threading.Thread(target=drain)
        worker.start()
        time.sleep(0.45)  # inside a task's 0.3 s execution window
        stop_http_server(server)
        time.sleep(0.2)
        self._start(db, port=port)
        worker.join(timeout=120)
        assert not worker.is_alive(), "worker never finished after the restart"
        assert outcome["stats"]["executed"] == 4
        assert outcome["stats"]["errors"] == 0
        _, payload = collect_queue(url, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_malformed_requests_are_rejected_and_the_server_survives(self, tmp_path):
        spec = tiny_spec()
        url = start_http_queue(queue_db_path(str(tmp_path), spec.name))
        enqueue_sweep(spec, url, kind="http")

        def post(path, body, headers=None):
            request = urllib.request.Request(
                f"{url}{path}", data=body, method="POST", headers=headers or {}
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            return excinfo.value.code, json.loads(excinfo.value.read())

        code, payload = post("/api/status", b"{not json")
        assert code == 400 and "malformed request body" in payload["error"]["message"]
        code, payload = post("/api/no-such-op", b"{}")
        assert code == 404
        code, payload = post("/api/heartbeat", b"{}")  # structurally wrong payload
        assert code == 400 and "malformed request payload" in payload["error"]["message"]
        code, payload = post("/elsewhere", b"{}")
        assert code == 404
        code, payload = post("/api/status", b"{}", {"X-Queue-Protocol": "999"})
        assert code == 400 and "protocol" in payload["error"]["message"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{url}/api/status")  # GET
        assert excinfo.value.code == 405
        # after all of that abuse the coordinator still serves real clients
        assert queue_status(url)["tasks"] == 4

    def test_oversized_request_is_rejected_unread(self, tmp_path):
        spec = tiny_spec()
        url = start_http_queue(queue_db_path(str(tmp_path), spec.name))
        enqueue_sweep(spec, url, kind="http")
        host, _, port = url[len("http://"):].partition(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            # declare a body over the cap but never send it: the refusal must
            # arrive without the server waiting to drain the payload
            connection.putrequest("POST", "/api/status")
            connection.putheader("Content-Length", str(MAX_REQUEST_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert "cap" in json.loads(response.read())["error"]["message"]
        finally:
            connection.close()
        assert queue_status(url)["tasks"] == 4

    def test_protocol_version_mismatch_refuses_the_handshake(self, tmp_path, monkeypatch):
        import repro.experiments.transports.http as http_mod

        spec = tiny_spec()
        url = start_http_queue(queue_db_path(str(tmp_path), spec.name))
        enqueue_sweep(spec, url, kind="http")
        monkeypatch.setitem(
            http_mod._OPERATIONS,
            "handshake",
            lambda transport, payload: {
                "protocol": HTTP_PROTOCOL_VERSION + 1,
                "queue_version": 1,
                "backend": transport.kind,
            },
        )
        client = HttpTransport(url)
        with pytest.raises(QueueCorrupt, match="wire protocol"):
            client.status()

    def test_queue_layout_version_mismatch_refuses_the_handshake(self, tmp_path, monkeypatch):
        import repro.experiments.transports.http as http_mod

        spec = tiny_spec()
        url = start_http_queue(queue_db_path(str(tmp_path), spec.name))
        enqueue_sweep(spec, url, kind="http")
        monkeypatch.setitem(
            http_mod._OPERATIONS,
            "handshake",
            lambda transport, payload: {
                "protocol": HTTP_PROTOCOL_VERSION,
                "queue_version": 999,
                "backend": transport.kind,
            },
        )
        client = HttpTransport(url)
        with pytest.raises(QueueCorrupt, match="layout version"):
            client.status()

    def test_handshake_happens_once_per_session(self, tmp_path):
        spec = tiny_spec()
        url = start_http_queue(queue_db_path(str(tmp_path), spec.name))
        enqueue_sweep(spec, url, kind="http")
        client = HttpTransport(url)
        calls = []
        original = client._rpc

        def counting_rpc(operation, payload=None):
            calls.append(operation)
            return original(operation, payload)

        client._rpc = counting_rpc
        client.status()
        client.status()
        client.close()
        assert calls.count("handshake") == 1
        assert calls.count("status") == 2


class TestServeCLI:
    def test_serve_refuses_urls_and_directories(self, tmp_path, capsys):
        assert cli_main(["serve", "http://127.0.0.1:1"]) == 1
        assert "not a URL" in capsys.readouterr().err
        assert cli_main(["serve", str(tmp_path)]) == 1
        assert "directory queue" in capsys.readouterr().err

    def test_serve_lifecycle_end_to_end(self, tmp_path):
        # the full deployment shape: a `serve` subprocess fronts the queue,
        # CLI enqueue/work/collect speak only its URL, and the collected
        # BENCH is byte-identical to a single-process run
        db = queue_db_path(str(tmp_path), "queue-smoke")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        coordinator = subprocess.Popen(
            [sys.executable, "-m", "repro.experiments", "serve", db, "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = coordinator.stdout.readline()
            match = re.search(r"http://[0-9.]+:[0-9]+", banner)
            assert match, f"no coordinator URL in banner: {banner!r}"
            url = match.group(0)
            assert "no auth" in banner
            assert cli_main(["enqueue", "queue-smoke", "--queue-url", url]) == 0
            assert cli_main(["work", url, "--worker-id", "w1", "--max-tasks", "3"]) == 0
            assert cli_main(["work", url, "--worker-id", "w2"]) == 0
            assert cli_main(["collect", url, "--out", str(tmp_path)]) == 0
        finally:
            coordinator.terminate()
            coordinator.wait(timeout=30)
        from repro.experiments.workloads import get_workload

        _, baseline = run_sweep(get_workload("queue-smoke"), workers=1, out_dir=None)
        collected = load_bench(os.path.join(str(tmp_path), "BENCH_queue-smoke.json"))
        assert rows_bytes(collected) == rows_bytes(baseline)
        # SIGTERM is a *clean* shutdown: the coordinator closed its SQLite
        # connection, so the WAL sidecars merged back into the database
        sidecars = [
            name for name in os.listdir(str(tmp_path))
            if name.endswith(("-wal", "-shm"))
        ]
        assert sidecars == [], f"coordinator left WAL sidecars: {sidecars}"
