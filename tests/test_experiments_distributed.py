"""The queue-backed distributed runner (PR 5).

The contract under test:

* a ``RunSpec`` round-trips exactly through its JSON task-file form — the
  descriptor *is* the unit of work a remote worker executes;
* ``enqueue`` materialises the pending runs as atomically-written task
  files; ``work`` processes claim them via atomic ``os.rename`` leases
  (exactly-once under contention), heartbeat by mtime, reclaim stale
  leases of dead workers, and journal to per-worker shards;
* ``collect`` merges the shards — dedup by ``(index, seed)``, ok preferred
  over error — and produces rows byte-identical to a single-process
  ``run`` of the same spec, refusing an incomplete queue loudly;
* killing a worker mid-task (the integration drill) loses nothing: the
  lease is reclaimed, a survivor re-executes the run, and the collected
  BENCH matches the uninterrupted baseline;
* a BENCH file and a surviving journal that *disagree* fail every reader
  loudly, naming the divergent ``(index, seed)`` pairs.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.experiments import (
    LedgerDivergence,
    QueueCorrupt,
    QueueIncomplete,
    RunRecord,
    SweepSpec,
    check_journal_agreement,
    collect_queue,
    enqueue_sweep,
    load_bench,
    merge_journal_records,
    run_sweep,
    work_queue,
    write_bench,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.distributed import (
    claim_next,
    load_queue_spec,
    queue_dir,
    queue_status,
    reclaim_stale,
    shard_path,
)
from repro.experiments.results import (
    append_journal,
    journal_path,
    load_journal,
    rows_bytes,
    write_journal_header,
)
from repro.experiments.specs import RunSpec, SamplerSpec

SEED = 20010202
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def tiny_spec(name="queued", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(name, "dihedral_rotation", {"n": [8, 12]}, **defaults)


def faulty_spec(name="queued-faulty", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(
        name, "diagnostic_fault", {"n": [8], "fail": [False, True]}, **defaults
    )


class TestSpecSerialization:
    def test_run_spec_round_trips_through_json(self):
        spec = SweepSpec.from_grid(
            "rt",
            "abelian_random",
            {"moduli": [(16, 9, 5)], "confidence": [4]},
            repeats=3,
            seed=7,
            sampler=SamplerSpec(backend="analytic", shards=2),
            solver_options={"engine_cache_dir": "/tmp/cache"},
            engine=False,
        )
        for run in spec.expand():
            round_tripped = RunSpec.from_json_dict(json.loads(json.dumps(run.to_json_dict())))
            assert round_tripped == run

    def test_sweep_spec_round_trips_through_json(self):
        for spec in (tiny_spec(), faulty_spec(), SweepSpec.from_grid(
            "rt2", "abelian_random", {"moduli": [(8, 9), (16, 9, 5)]}, description="d"
        )):
            round_tripped = SweepSpec.from_json_dict(json.loads(json.dumps(spec.to_json_dict())))
            assert round_tripped == spec
            assert round_tripped.expand() == spec.expand()

    def test_sampler_spec_round_trips(self):
        for sampler in (SamplerSpec(), SamplerSpec(backend="statevector", batch=False, shards=3)):
            assert SamplerSpec.from_json_dict(sampler.to_json_dict()) == sampler


class TestEnqueue:
    def test_enqueue_materialises_every_run_as_a_task(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        counts = enqueue_sweep(spec, queue)
        assert counts == {"enqueued": 4, "already_done": 0}
        status = queue_status(queue)
        assert status == {"tasks": 4, "leases": 0, "shards": 0}
        assert load_queue_spec(queue) == spec
        # tasks parse back to the exact expansion
        runs = []
        while True:
            claim = claim_next(queue, "w0")
            if claim is None:
                break
            runs.append(claim[1])
        assert runs == spec.expand()

    def test_enqueue_refuses_a_busy_queue(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        with pytest.raises(ValueError, match="outstanding"):
            enqueue_sweep(spec, queue)

    def test_enqueue_refuses_a_different_spec(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        with pytest.raises(ValueError, match="different sweep configuration"):
            enqueue_sweep(spec.with_overrides(seed=7), queue)

    def test_reenqueue_of_a_drained_queue_retries_errors_only(self, tmp_path):
        spec = faulty_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0")
        counts = enqueue_sweep(spec, queue)  # 2 ok rows stay done, 2 errors retry
        assert counts == {"enqueued": 2, "already_done": 2}
        status = queue_status(queue)
        assert status["tasks"] == 2


class TestClaimAndLease:
    def test_claim_is_exactly_once(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        seen = set()
        for worker in ("a", "b", "a", "b", "a"):
            claim = claim_next(queue, worker)
            if claim is None:
                break
            lease, run = claim
            assert os.path.exists(lease)
            assert run.index not in seen
            seen.add(run.index)
        assert seen == {0, 1, 2, 3}
        assert claim_next(queue, "c") is None

    def test_fresh_leases_are_not_reclaimed(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        claim_next(queue, "w0")
        assert reclaim_stale(queue, stale_after=60.0) == 0
        assert queue_status(queue)["leases"] == 1

    def test_lease_clock_starts_at_the_claim_not_at_enqueue(self, tmp_path):
        # os.rename preserves the task file's mtime, so without the
        # claim-time touch a task claimed long after enqueue would be born
        # stale and reclaimed out from under its live holder
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        stamp = time.time() - 900
        tasks = os.path.join(queue, "tasks")
        for name in os.listdir(tasks):
            os.utime(os.path.join(tasks, name), (stamp, stamp))
        claim_next(queue, "slowpoke")
        assert reclaim_stale(queue, stale_after=60.0) == 0
        assert queue_status(queue)["leases"] == 1

    def test_stale_lease_is_reclaimed_and_reexecuted(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        lease, run = claim_next(queue, "dead")
        stamp = time.time() - 900
        os.utime(lease, (stamp, stamp))  # the holder died; its heartbeat froze
        assert reclaim_stale(queue, stale_after=10.0) == 1
        assert queue_status(queue) == {"tasks": 4, "leases": 0, "shards": 0}
        # a live worker drains everything, including the reclaimed run
        stats = work_queue(queue, worker_id="alive")
        assert stats["executed"] == 4
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_torn_task_file_is_refused_as_corrupt(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        task = os.path.join(queue, "tasks", sorted(os.listdir(os.path.join(queue, "tasks")))[0])
        with open(task, "w", encoding="utf-8") as handle:
            handle.write('{"sweep": "queued", "ind')  # torn mid-write
        with pytest.raises(QueueCorrupt, match="corrupt"):
            work_queue(queue, worker_id="w0")

    def test_restarted_worker_recovers_a_truncated_shard(self, tmp_path):
        # a crash inside the header write leaves a zero-byte shard; a
        # restarted worker with the same id must re-head it (not append
        # records into a headerless file collect can never read)
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        open(shard_path(queue, "w0"), "w").close()
        stats = work_queue(queue, worker_id="w0")
        assert stats["executed"] == 4
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_restarted_worker_compacts_a_torn_shard_tail(self, tmp_path):
        # a crash mid-append leaves a torn trailing fragment; restarting the
        # worker must compact it so its own appends start on a clean line
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0", max_tasks=2)
        shard = shard_path(queue, "w0")
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "torn')  # no trailing newline
        stats = work_queue(queue, worker_id="w0")
        assert stats["executed"] == 2
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_worker_refuses_a_foreign_shard(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        # a shard left by a *different* sweep configuration must be refused
        write_journal_header(shard_path(queue, "w0"), spec.with_overrides(seed=7))
        with pytest.raises(ValueError, match="different sweep configuration"):
            work_queue(queue, worker_id="w0")


class TestWorkAndCollect:
    def test_single_worker_queue_matches_run(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        stats = work_queue(queue, worker_id="solo")
        assert stats == {"executed": 4, "errors": 0, "reclaimed": 0}
        path, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        assert rows_bytes(load_bench(path)) == rows_bytes(baseline)

    def test_two_alternating_workers_match_run(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        # interleave two workers one task at a time: four shards-wise splits
        executed = 0
        while executed < 4:
            for worker in ("w1", "w2"):
                executed += work_queue(queue, worker_id=worker, max_tasks=1)["executed"]
        assert queue_status(queue)["shards"] == 2
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_error_rows_flow_through_the_queue(self, tmp_path):
        spec = faulty_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        stats = work_queue(queue, worker_id="w0")
        assert stats["executed"] == 4 and stats["errors"] == 2
        _, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        assert payload["aggregate"]["errors"] == 2

    def test_collect_refuses_an_incomplete_queue(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0", max_tasks=2)
        with pytest.raises(QueueIncomplete, match=r"2 run\(s\) have no journaled record"):
            collect_queue(queue, str(tmp_path))

    def test_collect_refuses_foreign_shard_records(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0")
        rogue = RunRecord(
            sweep=spec.name, index=99, family="dihedral_rotation", params={"n": 8},
            repeat=0, seed=1, strategy="auto", success=True, generators=[], query_report={},
        )
        append_journal(shard_path(queue, "w0"), rogue)
        with pytest.raises(QueueCorrupt, match="outside the pinned sweep expansion"):
            collect_queue(queue, str(tmp_path))

    def test_partial_shard_torn_line_counts_as_missing(self, tmp_path):
        spec = tiny_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0")
        shard = shard_path(queue, "w0")
        lines = open(shard, "r", encoding="utf-8").read().splitlines(keepends=True)
        with open(shard, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:-1])
            handle.write(lines[-1][: len(lines[-1]) // 2])  # tear the final record
        with pytest.raises(QueueIncomplete, match=r"1 run\(s\)"):
            collect_queue(queue, str(tmp_path))

    def test_duplicate_records_across_shards_dedup_preferring_ok(self, tmp_path):
        spec = faulty_spec()
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        work_queue(queue, worker_id="w0")
        # a reclaimed-after-append duplicate: the same runs journaled again
        # by a second worker, with one legitimate error row flipped to ok —
        # the merge must prefer the ok record wherever one exists
        records = load_journal(shard_path(queue, "w0"), spec)
        duplicate = shard_path(queue, "w1")
        write_journal_header(duplicate, spec)
        import dataclasses

        for key, record in sorted(records.items()):
            if record.status == "error":
                record = dataclasses.replace(record, status="ok", error=None, success=True)
            append_journal(duplicate, record)
        merged = merge_journal_records([shard_path(queue, "w0"), duplicate], spec)
        assert len(merged) == 4
        assert all(record.status == "ok" for record in merged.values())
        # and the reverse shard order makes no difference
        reversed_merge = merge_journal_records([duplicate, shard_path(queue, "w0")], spec)
        assert {k: v.row() for k, v in merged.items()} == {
            k: v.row() for k, v in reversed_merge.items()
        }


class TestKillAWorker:
    def _spawn_worker(self, queue, worker_id):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments", "work", queue,
                "--worker-id", worker_id,
                "--stale-after", "1.2", "--poll", "0.1", "--heartbeat", "0.25",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sigkilled_worker_loses_nothing(self, tmp_path):
        # 3 workers on one queue; one is SIGKILLed mid-task.  Its lease must
        # go stale and be reclaimed, a survivor re-executes the run, and the
        # collected BENCH rows are byte-identical to an uninterrupted
        # single-process run.  The diagnostic family's `delay` parameter
        # guarantees a wide mid-task window to land the kill in.
        spec = SweepSpec.from_grid(
            "kill-drill",
            "diagnostic_fault",
            {"n": [8], "delay": [0.4]},
            repeats=6,
            seed=SEED,
        )
        queue = queue_dir(str(tmp_path), spec.name)
        enqueue_sweep(spec, queue)
        workers = {wid: self._spawn_worker(queue, wid) for wid in ("w0", "w1", "w2")}
        leases = os.path.join(queue, "leases")
        victim = None
        deadline = time.time() + 20.0
        while time.time() < deadline:
            held = [name for name in os.listdir(leases) if "@" in name]
            if held:
                task_name, victim = held[0].split("@", 1)
                break
            time.sleep(0.005)
        assert victim is not None, "no worker ever claimed a task"
        workers[victim].send_signal(signal.SIGKILL)
        workers[victim].wait(timeout=30)
        survivor_output = []
        for wid, proc in workers.items():
            if wid == victim:
                continue
            out, _ = proc.communicate(timeout=90)
            survivor_output.append(out)
            assert proc.returncode == 0, out
        assert queue_status(queue)["tasks"] == 0
        assert queue_status(queue)["leases"] == 0, "the dead worker's lease must be reclaimed"
        path, payload = collect_queue(queue, str(tmp_path))
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)
        assert rows_bytes(load_bench(path)) == rows_bytes(baseline)
        assert payload["aggregate"]["runs"] == 6
        assert payload["aggregate"]["errors"] == 0


class TestLedgerDivergence:
    def _completed_bench_with_journal(self, tmp_path, mutate):
        spec = tiny_spec("diverge")
        path, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path))
        # resurrect the journal as if the process crashed between write_bench
        # and remove_journal, then apply `mutate` to the payload rows to
        # fabricate the disagreement
        jpath = journal_path(str(tmp_path), "diverge")
        write_journal_header(jpath, spec)
        for row in payload["rows"]:
            entry = dict(row)
            entry["sweep"] = spec.name
            entry["wall_time_seconds"] = 0.0
            record = RunRecord.from_json_dict(entry)
            append_journal(jpath, record)
        mutated = json.loads(json.dumps(payload))
        mutate(mutated)
        write_bench(str(tmp_path), "diverge", mutated)
        return path

    def test_agreeing_journal_is_accepted(self, tmp_path):
        path = self._completed_bench_with_journal(tmp_path, lambda payload: None)
        assert cli_main(["report", "diverge", "--out", str(tmp_path)]) == 0

    def test_divergent_journal_fails_report_naming_pairs(self, tmp_path, capsys):
        def flip(payload):
            payload["rows"][1]["success"] = not payload["rows"][1]["success"]

        self._completed_bench_with_journal(tmp_path, flip)
        assert cli_main(["report", "diverge", "--out", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "disagree" in err
        assert "(1," in err  # the divergent (index, seed) pair is named

    def test_divergent_journal_fails_summarise(self, tmp_path, capsys):
        def flip(payload):
            payload["rows"][0]["query_report"]["quantum_queries"] = 10**6

        self._completed_bench_with_journal(tmp_path, flip)
        assert cli_main(["summarise", "diverge", "--out", str(tmp_path)]) == 1
        assert "disagree" in capsys.readouterr().err

    def test_journal_of_a_different_spec_is_divergence(self, tmp_path):
        spec = tiny_spec("diverge2")
        _, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path))
        jpath = journal_path(str(tmp_path), "diverge2")
        write_journal_header(jpath, spec.with_overrides(seed=99))
        with pytest.raises(LedgerDivergence, match="different sweep configuration"):
            check_journal_agreement(payload, jpath, path="BENCH_diverge2.json")


class TestQueueCLI:
    def test_enqueue_work_collect_lifecycle(self, tmp_path, capsys):
        out = str(tmp_path)
        queue = os.path.join(out, "QUEUE_queue-smoke")
        assert cli_main(["enqueue", "queue-smoke", "--out", out]) == 0
        assert "enqueued 6 task(s)" in capsys.readouterr().out
        assert cli_main(["work", queue, "--worker-id", "w1", "--max-tasks", "3"]) == 0
        assert cli_main(["work", queue, "--worker-id", "w2"]) == 0
        assert cli_main(["collect", queue, "--out", out]) == 0
        captured = capsys.readouterr().out
        assert "6 runs" in captured
        assert os.path.exists(os.path.join(out, "BENCH_queue-smoke.json"))

    def test_collect_incomplete_queue_exits_nonzero(self, tmp_path, capsys):
        out = str(tmp_path)
        queue = os.path.join(out, "QUEUE_queue-smoke")
        assert cli_main(["enqueue", "queue-smoke", "--out", out]) == 0
        assert cli_main(["collect", queue, "--out", out]) == 1
        assert "incomplete" in capsys.readouterr().err

    def test_enqueue_unknown_workload_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["enqueue", "no-such-sweep", "--out", str(tmp_path)]) == 1
        assert "unknown workload" in capsys.readouterr().err

    def test_work_on_a_non_queue_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["work", str(tmp_path)]) == 1
        assert "spec.json" in capsys.readouterr().err

    def test_enqueue_with_overrides_round_trips(self, tmp_path):
        out = str(tmp_path)
        assert cli_main(["enqueue", "queue-smoke", "--out", out, "--repeats", "1", "--seed", "5"]) == 0
        queue = os.path.join(out, "QUEUE_queue-smoke")
        spec = load_queue_spec(queue)
        assert spec.repeats == 1 and spec.seed == 5
        assert queue_status(queue)["tasks"] == 3
