"""Exhaustive coverage of ``_choose_strategy`` and the ``solve_hsp`` dispatcher.

One test per dispatch branch: every promise key, Abelian auto-detection
(including through the black-box wrapper), the default fallback, explicit
strategy overrides, and the error paths (unknown strategy, missing promise).
"""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance
from repro.blackbox.oracle import BlackBoxGroup
from repro.core.solver import _choose_strategy, solve_hsp
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.base import GroupError
from repro.groups.catalog import wreath_instance
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import dihedral_semidirect
from repro.quantum.sampling import FourierSampler


def abelian_instance():
    group = AbelianTupleGroup([4, 6])
    return HSPInstance.from_subgroup(group, [(2, 3)])


def extraspecial_instance(promises=None):
    group = extraspecial_group(3)
    return HSPInstance.from_subgroup(group, [((1,), (1,), 0)], promises=promises), group


class TestChooseStrategy:
    def test_normal_generators_promise_selects_elementary_abelian_two(self):
        group, normal_gens = wreath_instance(2)
        instance = HSPInstance.from_subgroup(
            group,
            [group.identity()],
            promises={"normal_generators": normal_gens, "cyclic_quotient": True},
        )
        assert _choose_strategy(instance) == "elementary_abelian_two"

    def test_normal_generators_wins_over_other_promises(self):
        group, normal_gens = wreath_instance(2)
        instance = HSPInstance.from_subgroup(
            group,
            [group.identity()],
            promises={
                "normal_generators": normal_gens,
                "commutator_bound": 4,
                "hidden_is_normal": True,
            },
        )
        assert _choose_strategy(instance) == "elementary_abelian_two"

    def test_abelian_group_detected(self):
        assert _choose_strategy(abelian_instance()) == "abelian"

    def test_abelian_detection_unwraps_black_box(self):
        group = AbelianTupleGroup([12])
        instance = HSPInstance.from_subgroup(BlackBoxGroup(group), [(3,)])
        assert isinstance(instance.group, BlackBoxGroup)
        assert _choose_strategy(instance) == "abelian"

    def test_abelian_wins_over_commutator_promise(self):
        # An Abelian ambient group dispatches to Theorem 3 even when a
        # (vacuous) commutator promise is attached.
        group = AbelianTupleGroup([8])
        instance = HSPInstance.from_subgroup(group, [(2,)], promises={"commutator_bound": 1})
        assert _choose_strategy(instance) == "abelian"

    def test_commutator_elements_promise_selects_small_commutator(self):
        instance, group = extraspecial_instance(
            promises={"commutator_elements": extraspecial_group(3).commutator_subgroup_elements()}
        )
        assert _choose_strategy(instance) == "small_commutator"

    def test_commutator_bound_promise_selects_small_commutator(self):
        instance, _ = extraspecial_instance(promises={"commutator_bound": 3})
        assert _choose_strategy(instance) == "small_commutator"

    def test_hidden_is_normal_promise_selects_hidden_normal(self):
        group = dihedral_semidirect(6)
        instance = HSPInstance.from_subgroup(
            group, [group.embed_normal((1,))], promises={"hidden_is_normal": True}
        )
        assert _choose_strategy(instance) == "hidden_normal"

    def test_falsy_hidden_is_normal_falls_through_to_default(self):
        group = dihedral_semidirect(6)
        instance = HSPInstance.from_subgroup(
            group, [group.embed_normal((1,))], promises={"hidden_is_normal": False}
        )
        assert _choose_strategy(instance) == "small_commutator"

    def test_default_for_promise_free_nonabelian_group(self):
        instance, _ = extraspecial_instance()
        assert _choose_strategy(instance) == "small_commutator"


class TestSolveDispatch:
    def test_auto_solves_abelian_instance(self, rng):
        instance = abelian_instance()
        solution = solve_hsp(instance, sampler=FourierSampler(rng=rng))
        assert solution.strategy == "abelian"
        assert instance.verify(solution.generators)

    def test_explicit_strategy_overrides_auto(self, rng):
        # Auto would choose "abelian"; the override must win and still solve.
        instance = abelian_instance()
        solution = solve_hsp(instance, strategy="classical", rng=rng)
        assert solution.strategy == "classical"
        assert instance.verify(solution.generators)

    def test_explicit_hidden_normal_on_promise_free_instance(self, rng):
        group = dihedral_semidirect(6)
        instance = HSPInstance.from_subgroup(group, [group.embed_normal((1,))])
        solution = solve_hsp(instance, strategy="hidden_normal", sampler=FourierSampler(rng=rng))
        assert solution.strategy == "hidden_normal"
        assert instance.verify(solution.generators)

    def test_promise_driven_elementary_abelian_two_solve(self, rng):
        group, normal_gens = wreath_instance(2)
        hidden = [group.uniform_random_element(rng)]
        instance = HSPInstance.from_subgroup(
            group,
            hidden,
            promises={"normal_generators": normal_gens, "cyclic_quotient": True},
        )
        solution = solve_hsp(instance, sampler=FourierSampler(rng=rng))
        assert solution.strategy == "elementary_abelian_two"
        assert instance.verify(solution.generators or [group.identity()])

    def test_elementary_abelian_two_requires_promise(self, rng):
        instance, _ = extraspecial_instance()
        with pytest.raises(GroupError, match="normal_generators"):
            solve_hsp(instance, strategy="elementary_abelian_two", rng=rng)

    def test_unknown_strategy_rejected(self, rng):
        instance = abelian_instance()
        with pytest.raises(GroupError, match="unknown strategy"):
            solve_hsp(instance, strategy="quantum_annealing", rng=rng)

    def test_classical_adaptive_strategy_solves(self, rng):
        group = dihedral_semidirect(6)
        instance = HSPInstance.from_subgroup(group, [group.embed_normal((1,))])
        solution = solve_hsp(instance, strategy="classical_adaptive", rng=rng)
        assert solution.strategy == "classical_adaptive"
        assert solution.details.method == "adaptive"
        assert instance.verify(solution.generators or [group.identity()])

    def test_solution_reports_strategy_timing_and_queries(self, rng):
        instance, group = extraspecial_instance(
            promises={"commutator_elements": extraspecial_group(3).commutator_subgroup_elements()}
        )
        solution = solve_hsp(instance, sampler=FourierSampler(rng=rng))
        assert solution.strategy == "small_commutator"
        assert solution.elapsed_seconds >= 0.0
        assert solution.query_report["quantum_queries"] > 0
        assert instance.verify(solution.generators or [group.identity()])


class TestConfidenceOption:
    """``confidence`` must reach the strategies that consume it and raise —
    never be silently ignored — for every strategy that does not."""

    def test_abelian_accepts_confidence(self, rng):
        instance = abelian_instance()
        solution = solve_hsp(instance, strategy="abelian", rng=rng, confidence=4)
        assert solution.status == "ok"
        assert instance.verify(solution.generators)

    def test_hidden_normal_accepts_confidence(self, rng):
        group = dihedral_semidirect(6)
        instance = HSPInstance.from_subgroup(
            group, [group.embed_normal((1,))], promises={"hidden_is_normal": True}
        )
        solution = solve_hsp(instance, strategy="hidden_normal", rng=rng, confidence=8)
        assert solution.status == "ok"
        assert instance.verify(solution.generators or [group.identity()])

    def test_elementary_abelian_two_rejects_confidence(self, rng):
        group, normal_gens = wreath_instance(2)
        instance = HSPInstance.from_subgroup(
            group,
            [group.identity()],
            promises={"normal_generators": normal_gens, "cyclic_quotient": True},
        )
        with pytest.raises(ValueError, match="confidence"):
            solve_hsp(instance, strategy="elementary_abelian_two", rng=rng, confidence=4)

    def test_small_commutator_rejects_confidence(self, rng):
        instance, _ = extraspecial_instance(promises={"commutator_bound": 3})
        with pytest.raises(ValueError, match="confidence"):
            solve_hsp(instance, strategy="small_commutator", rng=rng, confidence=4)

    def test_classical_rejects_confidence(self, rng):
        instance = abelian_instance()
        with pytest.raises(ValueError, match="confidence"):
            solve_hsp(instance, strategy="classical", rng=rng, confidence=4)

    def test_classical_adaptive_rejects_confidence(self, rng):
        instance = abelian_instance()
        with pytest.raises(ValueError, match="confidence"):
            solve_hsp(instance, strategy="classical_adaptive", rng=rng, confidence=4)

    def test_auto_resolution_rejects_confidence_on_non_consuming_branch(self, rng):
        # "auto" resolves this instance to small_commutator, which does not
        # consume confidence — the error must name the *resolved* strategy.
        instance, _ = extraspecial_instance()
        with pytest.raises(ValueError, match="small_commutator"):
            solve_hsp(instance, rng=rng, confidence=4)

    def test_auto_resolution_accepts_confidence_on_abelian_branch(self, rng):
        instance = abelian_instance()
        solution = solve_hsp(instance, rng=rng, confidence=4)
        assert solution.strategy == "abelian"
        assert instance.verify(solution.generators)
