"""Unit tests for the Abelian, matrix, extraspecial and product group families."""

import numpy as np
import pytest

from repro.groups.abelian import AbelianTupleGroup, cyclic_group, elementary_abelian_group
from repro.groups.base import GroupError
from repro.groups.extraspecial import HeisenbergGroup, extraspecial_group
from repro.groups.matrix import (
    GFMatrixGroup,
    affine_type_group,
    heisenberg_matrix_group,
    matrix_inverse_mod,
    special_linear_generators,
)
from repro.groups.products import (
    DirectProduct,
    SemidirectProduct,
    dihedral_semidirect,
    generalized_dihedral,
    metacyclic_group,
    wreath_product_z2,
)
from repro.groups.subgroup import commutator_subgroup_generators, generate_subgroup_elements


def check_group_axioms(group, rng, samples=8):
    """Associativity, identity and inverse axioms on random samples."""
    elements = [group.random_element(rng) for _ in range(samples)]
    identity = group.identity()
    for a in elements:
        assert group.equal(group.multiply(a, identity), a)
        assert group.equal(group.multiply(identity, a), a)
        assert group.is_identity(group.multiply(a, group.inverse(a)))
    for a, b, c in zip(elements, elements[1:], elements[2:]):
        left = group.multiply(group.multiply(a, b), c)
        right = group.multiply(a, group.multiply(b, c))
        assert group.equal(left, right)


class TestAbelianTupleGroup:
    def test_order_and_generators(self):
        group = AbelianTupleGroup([4, 6, 5])
        assert group.order() == 120
        assert len(group.generators()) == 3

    def test_skips_trivial_factors_in_generators(self):
        group = AbelianTupleGroup([1, 5])
        assert group.generators() == [(0, 1)]

    def test_axioms(self, rng):
        check_group_axioms(AbelianTupleGroup([4, 9]), rng)

    def test_power_uses_scalar(self):
        group = AbelianTupleGroup([10])
        assert group.power((3,), 7) == (1,)
        assert group.power((3,), -1) == (7,)

    def test_encode_decode(self):
        group = AbelianTupleGroup([12, 7])
        assert group.decode(group.encode((11, 3))) == (11, 3)

    def test_subgroup_helpers(self):
        group = AbelianTupleGroup([8, 9])
        assert group.subgroup_order([(2, 0)]) == 4
        assert group.subgroup_contains([(2, 0)], (6, 0))
        assert not group.subgroup_contains([(2, 0)], (1, 0))

    def test_factories(self):
        assert cyclic_group(7).order() == 7
        assert elementary_abelian_group(2, 5).order() == 32

    def test_rejects_empty(self):
        with pytest.raises(GroupError):
            AbelianTupleGroup([])


class TestHeisenbergGroup:
    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_order(self, p):
        group = HeisenbergGroup(p)
        assert group.order() == p**3
        assert len(group.element_list()) == p**3

    def test_axioms(self, rng):
        check_group_axioms(HeisenbergGroup(5), rng)
        check_group_axioms(HeisenbergGroup(3, n=2), rng)

    def test_extraspecial_structure(self):
        group = HeisenbergGroup(5)
        commutator_gens = commutator_subgroup_generators(group)
        derived = generate_subgroup_elements(group, commutator_gens)
        assert len(derived) == 5
        assert set(derived) == set(group.commutator_subgroup_elements())

    def test_center_is_commutator_subgroup(self):
        group = HeisenbergGroup(3)
        center = group.center_generators()
        for z in center:
            for g in group.generators():
                assert group.equal(group.multiply(z, g), group.multiply(g, z))

    def test_exponent_odd_p(self, rng):
        group = HeisenbergGroup(7)
        for _ in range(10):
            g = group.uniform_random_element(rng)
            assert group.is_identity(group.power(g, 7))

    def test_nonabelian(self):
        assert not HeisenbergGroup(3).is_abelian()

    def test_rejects_bad_parameters(self):
        with pytest.raises(GroupError):
            HeisenbergGroup(4)
        with pytest.raises(GroupError):
            HeisenbergGroup(3, 0)

    def test_encode_decode(self):
        group = extraspecial_group(3, 2)
        element = ((1, 2), (0, 1), 2)
        assert group.decode(group.encode(element)) == element


class TestMatrixGroups:
    def test_matrix_inverse_mod(self):
        inv = matrix_inverse_mod([[1, 1], [0, 1]], 5)
        assert inv.tolist() == [[1, 4], [0, 1]]

    def test_matrix_inverse_singular(self):
        with pytest.raises(GroupError):
            matrix_inverse_mod([[1, 1], [1, 1]], 2)

    @pytest.mark.parametrize("p", [3, 5])
    def test_heisenberg_matrix_group_order(self, p):
        group = heisenberg_matrix_group(p)
        assert len(group.element_list()) == p**3

    def test_axioms(self, rng):
        check_group_axioms(heisenberg_matrix_group(3), rng)

    def test_sl2_order(self):
        group = special_linear_generators(3)
        assert len(group.element_list()) == 24  # |SL(2,3)|

    def test_affine_type_structure(self):
        group = affine_type_group(3)
        elements = group.element_list()
        # |G| = |N| * |G/N| where N is the translation subgroup spanned by the
        # orbit of e_1 under the block and G/N is generated by the block.
        assert len(elements) % 2 == 0
        for m in group.generators():
            arr = np.array(m)
            assert arr.shape == (4, 4)
            assert arr[3, 3] == 1

    def test_affine_rejects_bad_input(self):
        with pytest.raises(GroupError):
            affine_type_group(0)
        with pytest.raises(GroupError):
            affine_type_group(2, translations=[[1]])

    def test_requires_prime_modulus(self):
        with pytest.raises(GroupError):
            GFMatrixGroup([[[1, 0], [0, 1]]], 4)

    def test_encode_decode(self):
        group = heisenberg_matrix_group(3)
        g = group.generators()[0]
        assert group.decode(group.encode(g)) == g


class TestProducts:
    def test_direct_product_order_and_axioms(self, rng):
        product = DirectProduct([cyclic_group(4), cyclic_group(6)])
        assert product.order() == 24
        check_group_axioms(product, rng)

    def test_direct_product_generators(self):
        product = DirectProduct([cyclic_group(4), cyclic_group(6)])
        assert len(product.generators()) == 2

    def test_dihedral_semidirect(self, rng):
        group = dihedral_semidirect(9)
        assert len(group.element_list()) == 18
        check_group_axioms(group, rng)
        r = group.embed_normal((1,))
        s = group.embed_quotient((1,))
        assert group.conjugate(s, r) == group.inverse(r)

    def test_metacyclic(self, rng):
        group = metacyclic_group(7, 3)
        assert len(group.element_list()) == 21
        check_group_axioms(group, rng)
        assert not group.is_abelian()

    def test_metacyclic_rejects_bad_q(self):
        with pytest.raises(GroupError):
            metacyclic_group(7, 4)

    def test_wreath_product(self, rng):
        group = wreath_product_z2(2)
        assert len(group.element_list()) == 32
        check_group_axioms(group, rng)
        # the swap element conjugates a base vector to its swapped version
        swap = group.embed_quotient((1,))
        vector = group.embed_normal((1, 0, 0, 0))
        conjugated = group.conjugate(swap, vector)
        assert conjugated == group.embed_normal((0, 0, 1, 0))

    def test_generalized_dihedral(self, rng):
        group = generalized_dihedral([3, 3])
        assert len(group.element_list()) == 18
        check_group_axioms(group, rng)

    def test_exponent_bound_is_multiple_of_orders(self, rng):
        for group in [dihedral_semidirect(6), wreath_product_z2(2), metacyclic_group(5, 2)]:
            bound = group.exponent_bound()
            for _ in range(8):
                g = group.random_element(rng)
                assert bound % group.element_order(g, bound) == 0

    def test_embeddings(self):
        group = wreath_product_z2(2)
        n = group.embed_normal((1, 1, 0, 0))
        k = group.embed_quotient((1,))
        assert n[1] == (0,)
        assert k[0] == (0, 0, 0, 0)
        assert len(group.normal_part_generators()) == 4
