"""Statistics post-processing tests (PR 4): ``summarise``/``plot``.

The contract under test:

* Wilson score intervals behave at the edges (0/N, N/N) and an empty cell
  has no estimate at all (``None``, never 1.0);
* cells group by grid axes only — seed/repeat/index never reach the key;
* the ``1-(1-p)^r`` saturation fit recovers a planted ``p`` from exact
  synthetic data, deterministically;
* crossover interpolation locates the intersection of two cost curves on a
  hand-built two-strategy BENCH fixture, with an interval from the
  per-cell standard errors;
* ``ANALYSIS_<name>.json`` is byte-identical across reruns on the same
  BENCH input (golden-file determinism);
* row loading rejects stale files whose rows disagree with the recorded
  spec header (:class:`SpecMismatch` naming the offending keys), and
  all-error files make ``report``/``summarise`` exit non-zero with the
  error count instead of dividing by zero;
* ``cache prune --max-bytes 0`` evicts everything and negative values are
  rejected at argparse level.
"""

import json
import math
import os

import pytest

from repro.experiments import (
    SpecMismatch,
    SweepSpec,
    analyse,
    axis_roles,
    fit_saturation,
    get_analysis,
    load_validated_bench,
    locate_crossover,
    run_sweep,
    wilson_interval,
    write_bench,
)
from repro.experiments.analysis import (
    analysis_path,
    ascii_plot,
    directive_for,
    format_summary,
    format_table,
    group_cells,
    render_svg,
    write_analysis,
)
from repro.experiments import RunRecord
from repro.experiments.cli import main as cli_main
from repro.experiments.results import (
    append_journal,
    error_rows,
    journal_path,
    load_journal_payload,
    resolve_bench,
    validate_rows,
    write_journal_header,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SEED = 20010202


# ---------------------------------------------------------------------------
# Fixtures: hand-built BENCH payloads
# ---------------------------------------------------------------------------


def make_row(index, params, success=True, status="ok", queries=None, seed=0):
    return {
        "index": index,
        "family": "synthetic",
        "params": dict(params),
        "repeat": 0,
        "seed": seed,
        "strategy": params.get("strategy", "auto"),
        "status": status,
        "error": "Traceback ..." if status == "error" else None,
        "success": success if status == "ok" else False,
        "generators": [],
        "query_report": dict(queries or {}),
    }


def make_payload(name, grid, rows):
    spec = SweepSpec.from_grid(name, "synthetic", grid, repeats=1, seed=SEED)
    ok = [row for row in rows if row["status"] == "ok"]
    return {
        "sweep": spec.to_json_dict(),
        "workers": 1,
        "rows": rows,
        "timings": [{"index": row["index"], "wall_time_seconds": 0.0} for row in rows],
        "aggregate": {
            "runs": len(rows),
            "successes": sum(1 for row in ok if row["success"]),
            "errors": len(rows) - len(ok),
            "success_rate": None,
            "strategies": {},
            "query_totals": {},
            "wall_time_seconds": 0.0,
        },
    }


def crossover_payload():
    """Two strategies whose total-query curves cross between x=4 and x=8.

    ``slow`` costs 2x (8, 16, 32, 64 at x = 4..32); ``flat`` costs a
    constant 24 with a small spread across repeats.  The curves cross where
    2x = 24, i.e. x = 12 — between the measured x=8 and x=16 points.
    """
    rows = []
    index = 0
    for x in (4, 8, 16, 32):
        for strategy in ("flat", "slow"):
            for repeat, jitter in enumerate((-1, 0, 1)):
                cost = 24 + jitter if strategy == "flat" else 2 * x
                row = make_row(
                    index,
                    {"x": x, "strategy": strategy},
                    queries={"classical_queries": cost},
                    seed=index,
                )
                row["repeat"] = repeat
                rows.append(row)
                index += 1
    return make_payload("synthetic-crossover", {"x": [4, 8, 16, 32], "strategy": ["flat", "slow"]}, rows)


# ---------------------------------------------------------------------------
# Wilson intervals
# ---------------------------------------------------------------------------


class TestWilsonInterval:
    def test_empty_cell_has_no_estimate(self):
        assert wilson_interval(0, 0) is None

    def test_zero_of_n_lower_bound_is_zero_upper_positive(self):
        low, high = wilson_interval(0, 8)
        assert low == 0.0
        assert 0.0 < high < 0.5

    def test_n_of_n_upper_is_one_lower_below_one(self):
        low, high = wilson_interval(8, 8)
        assert high == 1.0
        assert 0.5 < low < 1.0

    def test_known_value(self):
        # 4/8 at z=1.96: the Wilson interval is symmetric around 0.5.
        low, high = wilson_interval(4, 8)
        assert low == pytest.approx(1.0 - high, abs=1e-12)
        assert low == pytest.approx(0.2152, abs=1e-3)

    def test_more_trials_tighten_the_interval(self):
        low8, high8 = wilson_interval(4, 8)
        low80, high80 = wilson_interval(40, 80)
        assert high80 - low80 < high8 - low8

    def test_out_of_range_successes_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(9, 8)
        with pytest.raises(ValueError):
            wilson_interval(-1, 8)


# ---------------------------------------------------------------------------
# Cell grouping
# ---------------------------------------------------------------------------


class TestGroupCells:
    def test_repeats_collapse_into_one_cell(self):
        rows = [
            make_row(0, {"n": 8}, success=True, seed=11),
            make_row(1, {"n": 8}, success=False, seed=22),
            make_row(2, {"n": 16}, success=True, seed=33),
        ]
        cells = group_cells(make_payload("g", {"n": [8, 16]}, rows))
        assert len(cells) == 2
        assert cells[0]["params"] == {"n": 8}
        assert cells[0]["runs"] == 2 and cells[0]["successes"] == 1
        assert cells[0]["success_rate"] == 0.5

    def test_seed_and_repeat_never_enter_the_key(self):
        rows = [make_row(i, {"n": 8}, seed=1000 + i) for i in range(4)]
        for i, row in enumerate(rows):
            row["repeat"] = i
        cells = group_cells(make_payload("g", {"n": [8]}, rows))
        assert len(cells) == 1
        assert cells[0]["runs"] == 4

    def test_error_rows_tallied_not_counted(self):
        rows = [
            make_row(0, {"n": 8}, success=True),
            make_row(1, {"n": 8}, status="error"),
        ]
        cells = group_cells(make_payload("g", {"n": [8]}, rows))
        assert cells[0]["runs"] == 1
        assert cells[0]["errors"] == 1
        assert cells[0]["success_rate"] == 1.0

    def test_all_error_cell_reports_none_not_one(self):
        rows = [make_row(0, {"n": 8}, status="error"), make_row(1, {"n": 8}, status="error")]
        cells = group_cells(make_payload("g", {"n": [8]}, rows))
        assert cells[0]["success_rate"] is None
        assert cells[0]["wilson_low"] is None and cells[0]["wilson_high"] is None
        assert cells[0]["mean_queries"] == {}

    def test_mean_queries_over_ok_rows(self):
        rows = [
            make_row(0, {"n": 8}, queries={"quantum_queries": 10}),
            make_row(1, {"n": 8}, queries={"quantum_queries": 20}),
        ]
        cells = group_cells(make_payload("g", {"n": [8]}, rows))
        assert cells[0]["mean_queries"] == {"quantum_queries": 15.0}


# ---------------------------------------------------------------------------
# Saturation fit
# ---------------------------------------------------------------------------


class TestSaturationFit:
    def planted(self, p, xs=(1, 2, 4, 8, 16), runs=1000):
        # Exact expected counts: successes = runs * (1-(1-p)^r), fractional
        # counts are fine for the fitter (it only forms rates).
        return [(x, runs * (1.0 - (1.0 - p) ** x), runs) for x in xs]

    @pytest.mark.parametrize("p", [0.1, 0.3, 0.5, 0.72, 0.9])
    def test_recovers_planted_parameter(self, p):
        fit = fit_saturation(self.planted(p))
        assert fit is not None
        assert fit["p"] == pytest.approx(p, abs=2e-4)
        assert all(abs(point["residual"]) < 1e-3 for point in fit["points"])

    def test_deterministic(self):
        points = self.planted(0.37)
        assert fit_saturation(points) == fit_saturation(points)

    def test_needs_two_points(self):
        assert fit_saturation([(1, 5, 10)]) is None
        assert fit_saturation([]) is None
        assert fit_saturation([(1, 5, 10), (2, 0, 0)]) is None  # empty cell excluded

    def test_perfect_success_fits_p_near_one(self):
        fit = fit_saturation([(1, 8, 8), (2, 8, 8), (4, 8, 8)])
        assert fit["p"] > 0.99

    def test_residuals_consistent_with_model(self):
        fit = fit_saturation([(1, 3, 8), (2, 6, 8), (4, 8, 8), (8, 8, 8)])
        for point in fit["points"]:
            predicted = 1.0 - (1.0 - fit["p"]) ** point["x"]
            assert point["fitted"] == pytest.approx(predicted, abs=1e-9)
            assert point["residual"] == pytest.approx(point["rate"] - predicted, abs=1e-9)


# ---------------------------------------------------------------------------
# Crossover interpolation
# ---------------------------------------------------------------------------


class TestCrossover:
    def test_locates_planted_intersection(self):
        analysis = analyse(crossover_payload())
        crossover = analysis["crossover"]
        assert crossover is not None
        assert crossover["series"] == ["flat", "slow"]
        # diff(x) = flat - slow = 24 - 2x crosses zero at x = 12; log2
        # interpolation between the measured x=8 and x=16 lands close by.
        assert 10.0 < crossover["x"] < 14.0
        assert crossover["low"] <= crossover["x"] <= crossover["high"]
        assert crossover["scale"] == "log2"
        assert crossover["x_axis"] == "x"

    def test_interval_reflects_spread(self):
        crossover = analyse(crossover_payload())["crossover"]
        # The flat strategy has a ±1 spread over 3 repeats, so the interval
        # must have positive width but stay inside the measured range.
        assert crossover["high"] > crossover["low"]
        assert crossover["low"] >= 4 and crossover["high"] <= 32

    def test_no_intersection_reports_none(self):
        series = {
            "a": [(4.0, 10.0, 0.0, 3), (8.0, 10.0, 0.0, 3)],
            "b": [(4.0, 20.0, 0.0, 3), (8.0, 30.0, 0.0, 3)],
        }
        assert locate_crossover(series) is None

    def test_exact_zero_at_a_grid_point(self):
        series = {
            "a": [(4.0, 10.0, 0.0, 3), (8.0, 20.0, 0.0, 3)],
            "b": [(4.0, 10.0, 0.0, 3), (8.0, 10.0, 0.0, 3)],
        }
        located = locate_crossover(series)
        assert located is not None
        assert located["x"] == 4.0

    def test_requires_exactly_two_series(self):
        point = [(4.0, 10.0, 0.0, 3), (8.0, 20.0, 0.0, 3)]
        assert locate_crossover({"a": point}) is None
        assert locate_crossover({"a": point, "b": point, "c": point}) is None

    def test_error_rows_excluded_from_cost_curves(self):
        payload = crossover_payload()
        # Poison one x=8/slow repeat with an error: means must not change
        # location drastically because the error row is excluded.
        for row in payload["rows"]:
            if row["params"] == {"x": 8, "strategy": "slow"} and row["repeat"] == 0:
                row["status"], row["success"], row["query_report"] = "error", False, {}
        crossover = analyse(payload)["crossover"]
        assert crossover is not None
        assert 10.0 < crossover["x"] < 14.0


# ---------------------------------------------------------------------------
# Directives and axis roles
# ---------------------------------------------------------------------------


class TestDirectives:
    def test_axis_roles_split_reserved_keys(self):
        roles = axis_roles(["n", "strategy", "confidence", "p"])
        assert roles["statistical"] == ["confidence", "strategy"]
        assert roles["structural"] == ["n", "p"]

    def test_declared_workloads_have_directives(self):
        assert get_analysis("success-vs-rounds").kind == "saturation"
        assert get_analysis("success-vs-rounds-abelian").kind == "saturation"
        crossover = get_analysis("strategy-crossover")
        assert crossover.kind == "crossover"
        assert crossover.x_axis == "n" and crossover.series_axis == "strategy"

    def test_unknown_sweep_falls_back_to_grid_shape(self):
        payload = crossover_payload()  # not a declared workload name
        directive = directive_for(payload)
        assert directive.kind == "crossover"
        assert directive.x_axis == "x" and directive.series_axis == "strategy"

    def test_plain_grid_defaults_to_table(self):
        payload = make_payload("plain", {"n": [8]}, [make_row(0, {"n": 8})])
        assert directive_for(payload).kind == "table"


# ---------------------------------------------------------------------------
# Golden-file determinism of ANALYSIS_<name>.json
# ---------------------------------------------------------------------------


def checked_in_bench(name):
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


class TestAnalysisDeterminism:
    @pytest.mark.parametrize(
        "name", ["strategy-crossover", "success-vs-rounds", "success-vs-rounds-abelian"]
    )
    def test_checked_in_bench_analyses_byte_identically(self, name, tmp_path):
        source = checked_in_bench(name)
        if not os.path.exists(source):
            pytest.skip(f"no checked-in BENCH_{name}.json")
        for out in ("first", "second"):
            code = cli_main(["summarise", source, "--out", str(tmp_path / out)])
            assert code == 0
        first = (tmp_path / "first" / f"ANALYSIS_{name}.json").read_bytes()
        second = (tmp_path / "second" / f"ANALYSIS_{name}.json").read_bytes()
        assert first == second

    def test_checked_in_analysis_files_are_current(self):
        # The repo-root ANALYSIS files are goldens: regenerating them from
        # their BENCH inputs must reproduce the committed bytes exactly.
        for name in ("strategy-crossover", "success-vs-rounds", "success-vs-rounds-abelian"):
            golden = os.path.join(REPO_ROOT, f"ANALYSIS_{name}.json")
            source = checked_in_bench(name)
            if not (os.path.exists(golden) and os.path.exists(source)):
                pytest.skip("goldens not checked in")
            payload = load_validated_bench(source)
            analysis = analyse(payload, source=source)
            regenerated = json.dumps(analysis, indent=2, sort_keys=True) + "\n"
            with open(golden, "r", encoding="utf-8") as handle:
                assert handle.read() == regenerated, f"{golden} is stale; re-run summarise"

    def test_fixture_analysis_deterministic_and_path_normalized(self, tmp_path):
        payload = crossover_payload()
        analysis = analyse(payload, source="/somewhere/deep/BENCH_x.json")
        assert analysis["source"] == "BENCH_x.json"  # no absolute paths
        path1 = write_analysis(str(tmp_path / "a"), "x", analysis)
        path2 = write_analysis(str(tmp_path / "b"), "x", analyse(payload, source="BENCH_x.json"))
        assert open(path1, "rb").read() == open(path2, "rb").read()

    def test_write_analysis_is_atomic_and_named(self, tmp_path):
        path = write_analysis(str(tmp_path), "some/name with space", {"analysis_version": 1})
        assert os.path.basename(path) == "ANALYSIS_some-name-with-space.json"
        assert [n for n in os.listdir(tmp_path) if n.startswith("ANALYSIS_")] == [
            os.path.basename(path)
        ]
        assert analysis_path(str(tmp_path), "some/name with space") == path

    def test_saturation_fit_on_checked_in_rows(self):
        source = checked_in_bench("success-vs-rounds")
        if not os.path.exists(source):
            pytest.skip("no checked-in BENCH")
        analysis = analyse(load_validated_bench(source), source=source)
        assert analysis["kind"] == "saturation"
        assert len(analysis["fits"]) == 2  # one slice per group size n
        for fit in analysis["fits"]:
            assert 0.0 < fit["p"] <= 1.0
            assert fit["model"] == "1-(1-p)^r"

    def test_crossover_on_checked_in_rows(self):
        source = checked_in_bench("strategy-crossover")
        if not os.path.exists(source):
            pytest.skip("no checked-in BENCH")
        analysis = analyse(load_validated_bench(source), source=source)
        crossover = analysis["crossover"]
        assert crossover is not None
        assert crossover["series"] == ["classical", "hidden_normal"]
        assert 8 <= crossover["low"] <= crossover["x"] <= crossover["high"] <= 16


# ---------------------------------------------------------------------------
# Spec-header validation (stale/edited files)
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_valid_payload_passes(self):
        payload = crossover_payload()
        assert len(validate_rows(payload)) == len(payload["rows"])

    def test_row_with_wrong_keys_rejected_naming_them(self, tmp_path):
        payload = crossover_payload()
        payload["rows"][3]["params"] = {"m": 4, "strategy": "flat"}
        path = str(tmp_path / "BENCH_stale.json")
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(SpecMismatch) as excinfo:
            load_validated_bench(path)
        message = str(excinfo.value)
        assert "'m'" in message and "'x'" in message and "index 3" in str(excinfo.value)

    def test_row_with_value_outside_grid_rejected(self):
        payload = crossover_payload()
        payload["rows"][0]["params"]["x"] = 999
        with pytest.raises(SpecMismatch) as excinfo:
            validate_rows(payload)
        assert "['x']" in str(excinfo.value)

    def test_non_sweep_payload_rejected(self):
        with pytest.raises(ValueError, match="not a sweep BENCH file"):
            validate_rows({"benchmark": "engine"})

    def test_tuple_list_round_trip_tolerated(self, tmp_path):
        # A freshly-written sweep: grid values are tuples in memory, lists
        # after the JSON round-trip — both must validate.
        spec = SweepSpec.from_grid("t", "abelian_random", {"moduli": [(8, 9)]})
        row = make_row(0, {"moduli": [8, 9]})
        payload = {"sweep": spec.to_json_dict(), "rows": [row]}
        assert validate_rows(payload) == [row]

    def test_cli_report_rejects_stale_file(self, tmp_path, capsys):
        payload = crossover_payload()
        payload["rows"][0]["params"] = {"bogus": 1}
        path = str(tmp_path / "BENCH_stale.json")
        with open(path, "w") as handle:
            json.dump(payload, handle)
        assert cli_main(["report", path]) == 1
        assert "disagrees with the recorded sweep spec" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# All-error BENCH files
# ---------------------------------------------------------------------------


def all_error_bench(tmp_path, runs=3):
    rows = [make_row(i, {"n": 8}, status="error", seed=i) for i in range(runs)]
    payload = make_payload("allerr", {"n": [8]}, rows)
    return write_bench(str(tmp_path), "allerr", payload)


class TestAllErrorHandling:
    def test_error_rows_helper(self, tmp_path):
        payload = load_validated_bench(all_error_bench(tmp_path))
        assert len(error_rows(payload)) == 3

    @pytest.mark.parametrize("command", ["report", "summarise", "plot"])
    def test_cli_exits_nonzero_with_error_count(self, command, tmp_path, capsys):
        path = all_error_bench(tmp_path)
        assert cli_main([command, path, "--out", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "all 3 run(s) errored" in err
        assert "re-run the sweep" in err

    def test_summarise_writes_no_analysis_for_all_error_file(self, tmp_path):
        path = all_error_bench(tmp_path)
        cli_main(["summarise", path, "--out", str(tmp_path)])
        assert not os.path.exists(analysis_path(str(tmp_path), "allerr"))

    def test_mixed_file_still_reports(self, tmp_path, capsys):
        rows = [
            make_row(0, {"n": 8}, success=True, queries={"quantum_queries": 3}),
            make_row(1, {"n": 8}, status="error", seed=1),
        ]
        write_bench(str(tmp_path), "mixed", make_payload("mixed", {"n": [8]}, rows))
        assert cli_main(["report", "mixed", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ERR" in out  # the errored row is marked, not hidden


# ---------------------------------------------------------------------------
# Analysing an interrupted sweep's journal
# ---------------------------------------------------------------------------


def write_partial_journal(tmp_path, name="jtest", rows=3):
    spec = SweepSpec.from_grid(name, "synthetic", {"n": [8, 16]}, repeats=2, seed=SEED)
    jpath = journal_path(str(tmp_path), name)
    write_journal_header(jpath, spec)
    for index in range(rows):
        append_journal(
            jpath,
            RunRecord(
                sweep=name,
                index=index,
                family="synthetic",
                params={"n": 8 if index < 2 else 16},
                repeat=index % 2,
                seed=100 + index,
                strategy="auto",
                success=index != 1,
                generators=[],
                query_report={"quantum_queries": 5},
            ),
        )
    return jpath


class TestJournalAnalysis:
    def test_load_journal_payload_reconstructs_rows(self, tmp_path):
        jpath = write_partial_journal(tmp_path)
        payload = load_journal_payload(jpath)
        assert payload["partial"] is True
        assert [row["index"] for row in payload["rows"]] == [0, 1, 2]
        assert payload["aggregate"]["runs"] == 3
        assert validate_rows(payload, path=jpath)

    def test_summarise_falls_back_to_journal_for_unfinished_sweep(self, tmp_path, capsys):
        write_partial_journal(tmp_path)
        assert cli_main(["summarise", "jtest", "--out", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "in-progress journal" in captured.err
        assert "3 completed run(s)" in captured.out.replace("completed run(s)", "completed run(s)")
        assert os.path.exists(analysis_path(str(tmp_path), "jtest"))

    def test_explicit_journal_path_target(self, tmp_path, capsys):
        jpath = write_partial_journal(tmp_path)
        assert cli_main(["report", jpath, "--out", str(tmp_path)]) == 0
        assert "in-progress journal" in capsys.readouterr().err

    def test_bench_file_wins_over_an_agreeing_journal(self, tmp_path, capsys):
        # Once the sweep finished, the BENCH file is authoritative — but
        # only because the surviving journal (a crash landed between
        # write_bench and the journal removal) *agrees* with it.  The
        # journal's rows must be a subset of the BENCH rows; a journal that
        # disagrees fails loudly instead (PR 5, see
        # test_experiments_distributed.TestLedgerDivergence).
        jpath = write_partial_journal(tmp_path, name="done")
        jpayload = load_journal_payload(jpath)
        spec = SweepSpec.from_grid("done", "synthetic", {"n": [8, 16]}, repeats=2, seed=SEED)
        payload = {
            "sweep": spec.to_json_dict(),
            "workers": 1,
            "rows": jpayload["rows"],
            "timings": [],
            "aggregate": {
                "runs": len(jpayload["rows"]),
                "successes": 2,
                "errors": 0,
                "success_rate": None,
                "strategies": {},
                "query_totals": {},
                "wall_time_seconds": 0.0,
            },
        }
        write_bench(str(tmp_path), "done", payload)
        assert cli_main(["report", "done", "--out", str(tmp_path)]) == 0
        assert "in-progress journal" not in capsys.readouterr().err

    def test_headerless_journal_rejected(self, tmp_path, capsys):
        jpath = journal_path(str(tmp_path), "broken")
        with open(jpath, "w") as handle:
            handle.write("")
        assert cli_main(["summarise", "broken", "--out", str(tmp_path)]) == 1
        assert "no journal header" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# CLI drills: summarise / plot / cache prune
# ---------------------------------------------------------------------------


class TestCli:
    def run_tiny_sweep(self, tmp_path):
        spec = SweepSpec.from_grid(
            "tiny-stats",
            "dihedral_rotation",
            {"n": [8, 12], "confidence": [1, 4]},
            repeats=2,
            seed=SEED,
        )
        path, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path))
        return path

    def test_summarise_end_to_end(self, tmp_path, capsys):
        self.run_tiny_sweep(tmp_path)
        assert cli_main(["summarise", "tiny-stats", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Wilson CI" in out
        assert "saturation fit" in out
        assert os.path.exists(analysis_path(str(tmp_path), "tiny-stats"))

    def test_summarize_alias(self, tmp_path, capsys):
        self.run_tiny_sweep(tmp_path)
        assert cli_main(["summarize", "tiny-stats", "--out", str(tmp_path)]) == 0
        assert "wrote" in capsys.readouterr().out

    def test_plot_ascii_and_svg(self, tmp_path, capsys):
        self.run_tiny_sweep(tmp_path)
        svg_path = str(tmp_path / "tiny.svg")
        assert cli_main(["plot", "tiny-stats", "--out", str(tmp_path), "--svg", svg_path]) == 0
        out = capsys.readouterr().out
        assert "success rate vs confidence" in out
        content = open(svg_path).read()
        assert content.startswith("<svg ") and content.rstrip().endswith("</svg>")
        assert "polyline" in content

    def test_svg_deterministic(self, tmp_path):
        payload = crossover_payload()
        analysis = analyse(payload, source="BENCH_x.json")
        assert render_svg(analysis) == render_svg(analysis)
        assert "crossover" in render_svg(analysis)

    def test_plot_missing_target(self, tmp_path, capsys):
        assert cli_main(["plot", "nope", "--out", str(tmp_path)]) == 1
        assert "run the sweep first" in capsys.readouterr().err

    def test_ascii_plot_handles_empty_series(self):
        payload = make_payload("empty", {"n": [8]}, [])
        assert "nothing to plot" in ascii_plot(analyse(payload))

    def test_format_table_marks_empty_cells(self):
        rows = [make_row(0, {"n": 8}, status="error")]
        analysis = analyse(make_payload("g", {"n": [8]}, rows))
        table = format_table(analysis)
        assert "n/a" in table and "(no completed runs)" in table
        assert "(cell table only" in format_summary(analysis)

    def test_resolve_bench_prefers_existing_path(self, tmp_path):
        path = all_error_bench(tmp_path)
        assert resolve_bench(path, ".") == path
        assert resolve_bench("allerr", str(tmp_path)) == path

    def test_cache_prune_zero_evicts_everything(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        cache.mkdir()
        for digest in ("aaa", "bbb"):
            for kind in ("table", "inv"):
                (cache / f"cayley-{digest}-{kind}.npy").write_bytes(b"x" * 64)
        assert cli_main(["cache", "prune", str(cache), "--max-bytes", "0"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert list(cache.iterdir()) == []

    def test_cache_prune_rejects_negative_at_argparse_level(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["cache", "prune", str(tmp_path), "--max-bytes", "-1"])
        assert excinfo.value.code == 2
        assert "must be non-negative" in capsys.readouterr().err

    def test_cache_prune_rejects_garbage_at_argparse_level(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            cli_main(["cache", "prune", str(tmp_path), "--max-bytes", "lots"])
        assert "expected an integer byte count" in capsys.readouterr().err
