"""Tests for the small-commutator-subgroup HSP solver (Theorem 11, Corollary 12)."""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance
from repro.core.small_commutator import solve_hsp_small_commutator
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import dihedral_semidirect, metacyclic_group
from repro.groups.subgroup import generate_subgroup_elements
from repro.quantum.sampling import FourierSampler


def solve_and_verify(group, hidden_generators, rng, **kwargs):
    instance = HSPInstance.from_subgroup(group, hidden_generators)
    result = solve_hsp_small_commutator(
        group, instance.oracle, sampler=FourierSampler(rng=rng), **kwargs
    )
    assert instance.verify(result.generators or [group.identity()]), result.generators
    return result


class TestExtraspecialGroups:
    """Corollary 12: extraspecial p-groups, |G'| = p."""

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_cyclic_hidden_subgroups(self, p, rng):
        group = extraspecial_group(p)
        hidden = [group.uniform_random_element(rng)]
        result = solve_and_verify(group, hidden, rng, commutator_elements=group.commutator_subgroup_elements())
        assert result.commutator_order == p

    @pytest.mark.parametrize("p", [3, 5])
    def test_two_generator_hidden_subgroups(self, p, rng):
        group = extraspecial_group(p)
        for _ in range(3):
            hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
            solve_and_verify(group, hidden, rng, commutator_elements=group.commutator_subgroup_elements())

    def test_trivial_hidden_subgroup(self, rng):
        group = extraspecial_group(3)
        result = solve_and_verify(group, [group.identity()], rng)
        assert result.generators == []

    def test_whole_group_hidden(self, rng):
        group = extraspecial_group(3)
        solve_and_verify(group, group.generators(), rng)

    def test_center_hidden(self, rng):
        group = extraspecial_group(5)
        result = solve_and_verify(group, group.center_generators(), rng)
        assert result.intersection_generators  # H = Z(G) = G' is found via the intersection

    def test_commutator_subgroup_enumerated_when_not_supplied(self, rng):
        group = extraspecial_group(3)
        hidden = [group.uniform_random_element(rng)]
        result = solve_and_verify(group, hidden, rng)
        assert result.commutator_order == 3

    def test_generalised_heisenberg(self, rng):
        group = extraspecial_group(3, n=2)  # order 3^5
        hidden = [group.uniform_random_element(rng)]
        solve_and_verify(group, hidden, rng)


class TestOtherSmallCommutatorGroups:
    def test_dihedral_group(self, rng):
        # D_6: G' = <r^2> of order 3.
        group = dihedral_semidirect(6)
        for hidden in [
            [group.embed_quotient((1,))],
            [group.embed_normal((2,))],
            [group.embed_normal((3,))],
            [group.multiply(group.embed_normal((1,)), group.embed_quotient((1,)))],
        ]:
            result = solve_and_verify(group, hidden, rng)
            assert result.commutator_order == 3

    def test_metacyclic_group(self, rng):
        # Z_7 : Z_3 has G' = Z_7.
        group = metacyclic_group(7, 3)
        for hidden in [[group.embed_normal((1,))], [group.embed_quotient((1,))]]:
            result = solve_and_verify(group, hidden, rng)
            assert result.commutator_order == 7

    def test_abelian_group_has_trivial_commutator(self, rng):
        group = AbelianTupleGroup([6, 4])
        result = solve_and_verify(group, [(2, 2)], rng)
        assert result.commutator_order == 1

    def test_query_cost_scales_with_commutator_order(self, rng):
        small = solve_and_verify(extraspecial_group(3), [extraspecial_group(3).uniform_random_element(rng)], rng)
        big = solve_and_verify(extraspecial_group(7), [extraspecial_group(7).uniform_random_element(rng)], rng)
        assert small.commutator_order == 3 and big.commutator_order == 7
        # classical query cost grows with |G'| (the bundled oracle costs |G'| per value)
        assert big.query_report["classical_queries"] > small.query_report["classical_queries"]

    def test_result_structure(self, rng):
        group = extraspecial_group(3)
        hidden = [((1,), (0,), 0), ((0,), (0,), 1)]
        instance = HSPInstance.from_subgroup(group, hidden)
        result = solve_hsp_small_commutator(group, instance.oracle, sampler=FourierSampler(rng=rng))
        assert instance.verify(result.generators)
        subgroup = set(generate_subgroup_elements(group, hidden))
        for g in result.generators:
            assert g in subgroup
