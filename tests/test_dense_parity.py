"""Dense-id path vs scalar path parity across every registry family.

The dense-id refactor makes int64 ids the currency from the hiding oracle
down to the linear algebra, but the accounting contract is that the route
must be invisible: at a fixed seed, the dense path and the
:func:`repro.groups.engine.engine_disabled` scalar path must return the
same generators, the same strategy, the same query report, and — through
the experiment runner — byte-identical journal rows.  These tests pin that
contract for every family in the instance registry, and a counting test
double asserts the stronger structural claim behind the BENCH_scaling
speedups: batch-protocol groups never see a scalar ``multiply`` call
inside the Cayley table fills or the Fourier-sampling label loops.
"""

from contextlib import nullcontext

import numpy as np
import pytest

from repro.core.solver import solve_hsp
from repro.experiments.registry import build_instance, families
from repro.experiments.results import rows_bytes
from repro.experiments.runner import run_sweep
from repro.experiments.specs import DEFAULT_SEED, SweepSpec, derive_seed
from repro.groups.engine import engine_disabled, get_engine
from repro.groups.products import dihedral_semidirect
from repro.quantum.sampling import FourierSampler

SEED = DEFAULT_SEED

#: One cheap grid point per registered family — kept in sync with the
#: registry by ``test_family_points_cover_registry``.
FAMILY_POINTS = [
    ("abelian_random", {"moduli": (8, 9)}),
    ("dihedral_rotation", {"n": 12}),
    ("dihedral_bounded_quotient", {"d": 3}),
    ("metacyclic_core", {"pq": (7, 3)}),
    ("symmetric_alternating", {"n": 4}),
    ("extraspecial_center", {"p": 3}),
    ("extraspecial_random", {"p": 3}),
    ("wreath_random", {"k": 2}),
    ("diagnostic_fault", {"n": 8, "fail": False}),
]


def test_family_points_cover_registry():
    assert {family for family, _ in FAMILY_POINTS} == set(families())


def _solve(family, params, dense):
    """One cold solve; ``dense=False`` forces the scalar per-element paths."""
    context = nullcontext() if dense else engine_disabled()
    with context:
        instance = build_instance(family, dict(params), np.random.default_rng(derive_seed(SEED, 0)))
        # The sampler's batch flag is a declared option that changes how many
        # rounds are drawn; the route comparison holds it fixed so any report
        # difference is an accounting divergence, not a sampler-profile one.
        sampler = FourierSampler(backend="auto", rng=np.random.default_rng(SEED), batch=True)
        solution = solve_hsp(instance, sampler=sampler, use_engine=dense)
        assert instance.verify(solution.generators or [instance.group.identity()])
    return solution, instance.query_report()


@pytest.mark.parametrize("family,params", FAMILY_POINTS, ids=[f for f, _ in FAMILY_POINTS])
def test_dense_path_matches_scalar_path(family, params):
    dense_solution, dense_report = _solve(family, params, dense=True)
    scalar_solution, scalar_report = _solve(family, params, dense=False)
    assert dense_solution.strategy == scalar_solution.strategy
    assert dense_solution.generators == scalar_solution.generators
    assert dense_report == scalar_report


def test_journal_rows_identical_across_engine_configurations():
    """The runner's journal rows must not depend on the execution route.

    Both sweeps carry the same name on purpose: every deterministic row
    field (sweep, seed, params, generators, query report) must coincide, so
    the two payloads serialize to the same bytes.
    """
    payloads = {}
    for engine in (True, False):
        spec = SweepSpec.from_grid(
            "dense-parity",
            "dihedral_rotation",
            {"n": [8, 12]},
            repeats=2,
            engine=engine,
        )
        _, payloads[engine] = run_sweep(spec, out_dir=None)
    assert rows_bytes(payloads[True]) == rows_bytes(payloads[False])


# ---------------------------------------------------------------------------
# Counting test double: no scalar multiply in the batch hot loops
# ---------------------------------------------------------------------------


class _ScalarMultiplyProbe:
    """Context manager that counts scalar ``multiply`` calls on a group."""

    def __init__(self, group):
        self.group = group
        self.calls = 0

    def __enter__(self):
        original = type(self.group).multiply

        def counting(group_self, a, b):
            self.calls += 1
            return original(group_self, a, b)

        self.group.multiply = counting.__get__(self.group)
        return self

    def __exit__(self, *exc):
        del self.group.multiply
        return False


def test_table_fill_uses_no_scalar_multiplies():
    group = dihedral_semidirect(16)
    engine = get_engine(group)
    assert engine.kernel is not None, "dihedral must expose a dense kernel"
    ids = np.arange(group.order(), dtype=np.int64)
    with _ScalarMultiplyProbe(group) as probe:
        engine.mul_many(np.repeat(ids, ids.size), np.tile(ids, ids.size))
        engine.inv_many(ids)
    assert probe.calls == 0


def test_fourier_label_loop_uses_no_scalar_multiplies():
    instance = build_instance(
        "dihedral_rotation", {"n": 12}, np.random.default_rng(derive_seed(SEED, 0))
    )
    group = instance.group.group
    elements = [group.uniform_random_element(np.random.default_rng(SEED)) for _ in range(64)]
    with _ScalarMultiplyProbe(group) as probe:
        labels = instance.oracle.evaluate_many(elements)
    assert len(labels) == len(elements)
    assert probe.calls == 0
