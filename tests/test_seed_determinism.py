"""Seed-determinism regression: identical seeds give identical solver runs.

Two full ``solve_hsp`` executions over freshly built but identically seeded
instances must return the same generators, the same strategy, and the same
query report — across every dispatch strategy, both sampling backends, and
both the engine and the scalar execution paths.  This pins down the
reproducibility contract that the benchmark harness and the paper's query
counts rely on.
"""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance, random_abelian_hsp_instance
from repro.core.solver import solve_hsp
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.catalog import wreath_instance
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import dihedral_semidirect
from repro.quantum.sampling import FourierSampler

SEED = 20010202


def build_instance(strategy):
    """A fresh instance (fresh groups, oracles and counters) per call."""
    rng = np.random.default_rng(SEED)
    if strategy == "abelian":
        group = AbelianTupleGroup([8, 9])
        return HSPInstance.from_subgroup(group, [group.module.random_element(rng)])
    if strategy == "small_commutator":
        group = extraspecial_group(3)
        return HSPInstance.from_subgroup(
            group,
            [group.uniform_random_element(rng)],
            promises={"commutator_elements": group.commutator_subgroup_elements()},
        )
    if strategy == "hidden_normal":
        group = dihedral_semidirect(12)
        return HSPInstance.from_subgroup(
            group, [group.embed_normal((1,))], promises={"hidden_is_normal": True}
        )
    if strategy == "elementary_abelian_two":
        group, normal_gens = wreath_instance(2)
        return HSPInstance.from_subgroup(
            group,
            [group.uniform_random_element(rng)],
            promises={"normal_generators": normal_gens, "cyclic_quotient": True},
        )
    if strategy == "classical":
        group = AbelianTupleGroup([6, 4])
        return HSPInstance.from_subgroup(group, [(3, 2)])
    raise ValueError(strategy)


STRATEGIES = ["abelian", "small_commutator", "hidden_normal", "elementary_abelian_two", "classical"]


def run_once(strategy, backend="auto", batch=True):
    instance = build_instance(strategy)
    rng = np.random.default_rng(SEED)
    sampler = FourierSampler(backend=backend, rng=rng, batch=batch)
    explicit = strategy if strategy == "classical" else "auto"
    solution = solve_hsp(instance, strategy=explicit, sampler=sampler)
    assert instance.verify(solution.generators or [instance.group.identity()])
    return solution


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_identical_seeds_identical_runs(strategy):
    first = run_once(strategy)
    second = run_once(strategy)
    assert first.strategy == strategy
    assert second.strategy == strategy
    assert first.generators == second.generators
    assert first.query_report == second.query_report


@pytest.mark.parametrize("strategy", ["abelian", "small_commutator", "hidden_normal"])
@pytest.mark.parametrize("batch", [False, True])
def test_determinism_holds_on_both_sampling_paths(strategy, batch):
    first = run_once(strategy, batch=batch)
    second = run_once(strategy, batch=batch)
    assert first.generators == second.generators
    assert first.query_report == second.query_report


@pytest.mark.parametrize("strategy", ["abelian", "small_commutator"])
def test_determinism_on_statevector_backend(strategy):
    first = run_once(strategy, backend="statevector")
    second = run_once(strategy, backend="statevector")
    assert first.generators == second.generators
    assert first.query_report == second.query_report


def test_random_instance_generation_is_seeded():
    a = random_abelian_hsp_instance([16, 9], np.random.default_rng(SEED))
    b = random_abelian_hsp_instance([16, 9], np.random.default_rng(SEED))
    assert a.hidden_generators == b.hidden_generators
