"""Tests for the top-level dispatcher (solve_hsp) and the Corollary 5 toolkit facade."""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance, hiding_oracle_from_subgroup
from repro.core.beals_babai import BlackBoxToolkit
from repro.core.solver import HSPSolution, solve_hsp
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.base import GroupError
from repro.groups.catalog import wreath_instance
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group
from repro.quantum.sampling import FourierSampler


class TestSolveHspDispatch:
    def test_abelian_strategy(self, rng):
        group = AbelianTupleGroup([16, 9])
        instance = HSPInstance.from_subgroup(group, [(4, 3)])
        solution = solve_hsp(instance, rng=rng)
        assert solution.strategy == "abelian"
        assert instance.verify(solution.generators)

    def test_small_commutator_strategy(self, rng):
        group = extraspecial_group(5)
        hidden = [group.uniform_random_element(rng)]
        instance = HSPInstance.from_subgroup(
            group, hidden, promises={"commutator_elements": group.commutator_subgroup_elements()}
        )
        solution = solve_hsp(instance, rng=rng)
        assert solution.strategy == "small_commutator"
        assert instance.verify(solution.generators or [group.identity()])

    def test_default_strategy_is_small_commutator(self, rng):
        group = dihedral_semidirect(6)
        instance = HSPInstance.from_subgroup(group, [group.embed_quotient((1,))])
        solution = solve_hsp(instance, rng=rng)
        assert solution.strategy == "small_commutator"
        assert instance.verify(solution.generators)

    def test_elementary_abelian_two_strategy(self, rng):
        group, normal_gens = wreath_instance(2)
        instance = HSPInstance.from_subgroup(
            group,
            [group.uniform_random_element(rng)],
            promises={"normal_generators": normal_gens, "cyclic_quotient": True},
        )
        solution = solve_hsp(instance, rng=rng)
        assert solution.strategy == "elementary_abelian_two"
        assert instance.verify(solution.generators or [group.identity()])

    def test_hidden_normal_strategy(self, rng):
        group = metacyclic_group(7, 3)
        instance = HSPInstance.from_subgroup(
            group, [group.embed_normal((1,))], promises={"hidden_is_normal": True}
        )
        solution = solve_hsp(instance, rng=rng)
        assert solution.strategy == "hidden_normal"
        assert instance.verify(solution.generators)

    def test_explicit_classical_strategy(self, rng):
        group = AbelianTupleGroup([6])
        instance = HSPInstance.from_subgroup(group, [(3,)])
        solution = solve_hsp(instance, strategy="classical", rng=rng)
        assert solution.strategy == "classical"
        assert instance.verify(solution.generators)

    def test_unknown_strategy_rejected(self, rng):
        instance = HSPInstance.from_subgroup(AbelianTupleGroup([4]), [(2,)])
        with pytest.raises(GroupError):
            solve_hsp(instance, strategy="quantum-annealing", rng=rng)

    def test_missing_promise_rejected(self, rng):
        instance = HSPInstance.from_subgroup(AbelianTupleGroup([4]), [(2,)])
        with pytest.raises(GroupError):
            solve_hsp(instance, strategy="elementary_abelian_two", rng=rng)

    def test_solution_reports_cost(self, rng):
        group = AbelianTupleGroup([32])
        instance = HSPInstance.from_subgroup(group, [(8,)])
        solution = solve_hsp(instance, rng=rng)
        assert solution.elapsed_seconds >= 0
        assert solution.query_report["quantum_queries"] > 0
        assert list(iter(solution)) == solution.generators


class TestBlackBoxToolkit:
    def test_element_order_accounting(self):
        toolkit = BlackBoxToolkit(AbelianTupleGroup([60]))
        assert toolkit.element_order((12,)) == 5
        assert toolkit.query_report()["order_oracle_calls"] == 1

    def test_constructive_membership(self, rng):
        toolkit = BlackBoxToolkit(AbelianTupleGroup([8, 9]), sampler=FourierSampler(rng=rng))
        exponents = toolkit.constructive_membership([(2, 0), (0, 3)], (4, 6))
        assert exponents is not None
        assert toolkit.constructive_membership([(2, 0)], (1, 0)) is None

    def test_abelian_decomposition_and_order(self, rng):
        toolkit = BlackBoxToolkit(AbelianTupleGroup([4, 6]), sampler=FourierSampler(rng=rng))
        assert toolkit.abelian_subgroup_order() == 24
        decomposition = toolkit.abelian_decomposition()
        assert sorted(decomposition.invariant_factors) == [2, 12]

    def test_sylow_generators(self, rng):
        toolkit = BlackBoxToolkit(AbelianTupleGroup([8, 9, 5]), sampler=FourierSampler(rng=rng))
        sylow = toolkit.abelian_sylow_generators()
        group = AbelianTupleGroup([8, 9, 5])
        assert set(sylow) == {2, 3, 5}
        for prime, generators in sylow.items():
            for g in generators:
                order = group.element_order(g)
                assert order > 1 and order % prime == 0 and all(order % q for q in {2, 3, 5} - {prime})

    def test_hidden_normal_subgroup(self, rng):
        s4 = symmetric_group(4)
        toolkit = BlackBoxToolkit(s4, sampler=FourierSampler(rng=rng))
        oracle = hiding_oracle_from_subgroup(s4, alternating_group(4).generators())
        result = toolkit.hidden_normal_subgroup(oracle)
        from repro.groups.subgroup import subgroup_order

        assert subgroup_order(s4, result.generators) == 12

    def test_quotient_constructors(self):
        group = dihedral_semidirect(9)
        toolkit = BlackBoxToolkit(group)
        oracle = hiding_oracle_from_subgroup(group, [group.embed_normal((1,))])
        assert toolkit.hidden_quotient(oracle).order_modulo(group.embed_quotient((1,))) == 2
        assert toolkit.generated_quotient([group.embed_normal((1,))]).order_modulo(group.embed_quotient((1,))) == 2

    def test_structural_queries(self):
        toolkit = BlackBoxToolkit(dihedral_semidirect(6))
        assert toolkit.is_solvable()
        assert len(toolkit.derived_series()) >= 2
        center = toolkit.center_of_small_group()
        assert len(center) == 2  # Z(D_6) = {1, r^3}

    def test_center_size_limit(self):
        toolkit = BlackBoxToolkit(AbelianTupleGroup([1 << 20]))
        with pytest.raises(ValueError):
            toolkit.center_of_small_group(max_order=100)
