"""Tests for constructive membership (Theorem 6) and the factor-group toolkits (Theorems 7, 10)."""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance, hiding_oracle_from_subgroup
from repro.blackbox.oracle import QueryCounter
from repro.core.constructive_membership import abelian_subgroup_membership, constructive_membership
from repro.core.factor_group import GeneratedQuotient, HiddenQuotient
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group, wreath_product_z2
from repro.quantum.sampling import FourierSampler


def rebuild(group, elements, exponents):
    product = group.identity()
    for element, exponent in zip(elements, exponents):
        product = group.multiply(product, group.power(element, exponent))
    return product


class TestConstructiveMembership:
    def test_expresses_member_in_abelian_group(self, sampler):
        group = AbelianTupleGroup([8, 9])
        h = [(2, 0), (0, 3)]
        target = (6, 6)
        exponents = constructive_membership(group, h, target, sampler=sampler)
        assert exponents is not None
        assert rebuild(group, h, exponents) == target

    def test_rejects_non_member(self, sampler):
        group = AbelianTupleGroup([8, 9])
        assert constructive_membership(group, [(2, 0), (0, 3)], (1, 0), sampler=sampler) is None
        assert not abelian_subgroup_membership(group, [(2, 0)], (1, 0), sampler=sampler)

    def test_identity_target(self, sampler):
        group = AbelianTupleGroup([8])
        exponents = constructive_membership(group, [(2,)], (0,), sampler=sampler)
        assert exponents is not None
        assert rebuild(group, [(2,)], exponents) == (0,)

    def test_empty_generating_set(self, sampler):
        group = AbelianTupleGroup([8])
        assert constructive_membership(group, [], (0,), sampler=sampler) == []
        assert constructive_membership(group, [], (2,), sampler=sampler) is None

    def test_commuting_elements_of_nonabelian_group(self, sampler):
        group = extraspecial_group(5)
        x = ((1,), (0,), 0)
        z = ((0,), (0,), 1)
        target = group.multiply(group.power(x, 2), group.power(z, 3))
        exponents = constructive_membership(group, [x, z], target, sampler=sampler)
        assert exponents is not None
        assert group.equal(rebuild(group, [x, z], exponents), target)

    def test_non_member_in_nonabelian_group(self, sampler):
        group = extraspecial_group(5)
        x = ((1,), (0,), 0)
        y = ((0,), (1,), 0)
        assert constructive_membership(group, [x], y, sampler=sampler) is None

    def test_permutation_group_cyclic_subgroup(self, sampler):
        group = symmetric_group(6)
        cycle = (1, 2, 3, 4, 5, 0)
        target = group.power(cycle, 4)
        exponents = constructive_membership(group, [cycle], target, sampler=sampler)
        assert exponents is not None
        assert group.equal(rebuild(group, [cycle], exponents), target)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_abelian_instances(self, seed):
        rng = np.random.default_rng(seed)
        sampler = FourierSampler(rng=rng)
        group = AbelianTupleGroup([16, 9, 5])
        h = [group.module.random_element(rng) for _ in range(2)]
        coefficients = [int(rng.integers(0, 20)) for _ in range(2)]
        target = rebuild(group, h, coefficients)
        exponents = constructive_membership(group, h, target, sampler=sampler)
        assert exponents is not None
        assert rebuild(group, h, exponents) == target

    def test_membership_modulo_hidden_subgroup(self, sampler):
        """Theorem 7 variant: the expression holds modulo the hidden normal subgroup."""
        group = dihedral_semidirect(9)
        rotation = group.embed_normal((1,))
        oracle = hiding_oracle_from_subgroup(group, [group.embed_normal((3,))])
        flip = group.embed_quotient((1,))
        # modulo <r^3>, the rotation r has order 3
        exponents = constructive_membership(group, [rotation], group.embed_normal((7,)), sampler=sampler, hiding=oracle)
        assert exponents is not None
        assert exponents[0] % 3 == 7 % 3
        assert constructive_membership(group, [rotation], flip, sampler=sampler, hiding=oracle) is None


class TestHiddenQuotient:
    def test_kernel_and_coset_tests(self):
        group = symmetric_group(4)
        oracle = hiding_oracle_from_subgroup(group, alternating_group(4).generators())
        quotient = HiddenQuotient(group, oracle)
        assert quotient.in_kernel((1, 2, 0, 3))
        assert not quotient.in_kernel((1, 0, 2, 3))
        assert quotient.coset_equal((1, 0, 2, 3), (0, 2, 1, 3))

    def test_order_modulo(self):
        group = dihedral_semidirect(15)
        oracle = hiding_oracle_from_subgroup(group, [group.embed_normal((5,))])
        quotient = HiddenQuotient(group, oracle)
        assert quotient.order_modulo(group.embed_normal((1,))) == 5
        assert quotient.order_modulo(group.embed_quotient((1,))) == 2

    def test_is_abelian_detection(self):
        group = dihedral_semidirect(9)
        rotations = hiding_oracle_from_subgroup(group, [group.embed_normal((1,))])
        sub_rotations = hiding_oracle_from_subgroup(group, [group.embed_normal((3,))])
        assert HiddenQuotient(group, rotations).is_abelian()
        assert not HiddenQuotient(group, sub_rotations).is_abelian()

    def test_abelian_presentation(self, sampler):
        group = symmetric_group(4)
        oracle = hiding_oracle_from_subgroup(group, alternating_group(4).generators())
        quotient = HiddenQuotient(group, oracle)
        presentation = quotient.abelian_presentation(sampler=sampler)
        assert presentation.quotient_order() == 2
        for relator in presentation.relator_elements(group):
            assert quotient.in_kernel(relator)

    def test_presentation_of_trivial_quotient(self, sampler):
        group = AbelianTupleGroup([6])
        oracle = hiding_oracle_from_subgroup(group, [(1,)])
        presentation = HiddenQuotient(group, oracle).abelian_presentation(sampler=sampler)
        assert presentation.rank == 0
        assert presentation.quotient_order() == 1


class TestGeneratedQuotient:
    def test_membership_and_orders(self):
        group = wreath_product_z2(2)
        normal = group.normal_part_generators()
        quotient = GeneratedQuotient(group, normal)
        assert quotient.in_kernel(group.embed_normal((1, 0, 1, 1)))
        assert not quotient.in_kernel(group.embed_quotient((1,)))
        assert quotient.order_modulo(group.embed_quotient((1,))) == 2
        assert quotient.is_abelian()

    def test_quotient_order_bound(self):
        group = metacyclic_group(7, 3)
        quotient = GeneratedQuotient(group, [group.embed_normal((1,))])
        assert quotient.quotient_order_bound() == 3

    def test_cyclic_prime_power_representatives_cover_subgroups(self):
        """For a cyclic quotient the representative set meets every subgroup."""
        group = dihedral_semidirect(12)  # N = <r>: G/N = Z_2
        quotient = GeneratedQuotient(group, [group.embed_normal((1,))])
        reps = quotient.cyclic_prime_power_representatives()
        assert any(not quotient.in_kernel(z) for z in reps)

    def test_cyclic_representatives_in_affine_group(self):
        from repro.groups.catalog import affine_gf2_instance

        group, normal = affine_gf2_instance(3)
        quotient = GeneratedQuotient(group, normal)
        reps = quotient.cyclic_prime_power_representatives()
        # |G/N| = 7 (prime): one Sylow generator suffices.
        assert len(reps) >= 1
        assert all(not quotient.in_kernel(z) for z in reps[:1])

    def test_abelian_presentation_of_generated_quotient(self, sampler):
        group = wreath_product_z2(2)
        quotient = GeneratedQuotient(group, group.normal_part_generators())
        presentation = quotient.abelian_presentation(sampler=sampler)
        assert presentation.quotient_order() == 2
