"""The noise-channel layer: spec grammar, channel determinism, solver and
harness behaviour under corruption.

The load-bearing guarantees:

* ``NoiseSpec`` round-trips through its text and JSON forms and rejects
  malformed input at parse time.
* ``oracle-flip`` corruption is a pure function of ``(run seed, element)`` —
  identical across the scalar, batch and dense-id query paths, across fresh
  oracle views, and across repeated queries.
* ``sample-depolarise`` corruption is identical whether the sampler shards a
  batch or not.
* ε=0 is byte-identical to no noise at all (the channel is never installed);
  ε=1 terminates with failure rows instead of hanging.
* A noisy solve either verifies against the uncorrupted ground truth or
  reports ``status="no_convergence"`` — never a silently wrong subgroup.
* The honest adaptive classical baseline certifies its answer without
  reading the instance's declared hidden generators.
"""

import json

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance
from repro.blackbox.noise import (
    NOISE_KINDS,
    NoiseSpec,
    OracleFlipChannel,
    SampleDepolariseChannel,
    install_noise,
)
from repro.blackbox.oracle import BlackBoxGroup
from repro.core.solver import solve_hsp
from repro.experiments.runner import run_sweep
from repro.experiments.specs import SamplerSpec, SweepSpec
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.products import dihedral_semidirect
from repro.hsp.baseline_classical import classical_adaptive_hsp
from repro.quantum.sampling import FourierSampler


def dihedral_instance(n=8, promises=None):
    group = dihedral_semidirect(n)
    return HSPInstance.from_subgroup(
        group,
        [group.embed_normal((1,))],
        promises=promises if promises is not None else {"hidden_is_normal": True},
    )


class TestNoiseSpec:
    def test_round_trip_text(self):
        for kind in NOISE_KINDS:
            spec = NoiseSpec(kind, 0.25)
            assert NoiseSpec.parse(spec.to_text()) == spec

    def test_round_trip_json(self):
        spec = NoiseSpec("oracle-flip", 0.5)
        data = json.loads(json.dumps(spec.to_json_dict()))
        assert NoiseSpec.from_json_dict(data) == spec

    def test_none_parses_to_no_channel(self):
        assert NoiseSpec.parse("none") is None
        assert NoiseSpec.parse("") is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown noise kind"):
            NoiseSpec.parse("bit-rot(0.5)")

    def test_epsilon_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="epsilon"):
            NoiseSpec.parse("oracle-flip(1.5)")
        with pytest.raises(ValueError, match="epsilon"):
            NoiseSpec("oracle-flip", -0.1)

    def test_malformed_text_rejected(self):
        with pytest.raises(ValueError, match="unparseable"):
            NoiseSpec.parse("oracle-flip")

    def test_try_parse_returns_none_for_ordinary_strings(self):
        assert NoiseSpec.try_parse("hidden_normal") is None
        assert NoiseSpec.try_parse("oracle-flip(0.25)") == NoiseSpec("oracle-flip", 0.25)


class TestOracleFlipChannel:
    def test_flip_decision_is_element_keyed(self):
        group = dihedral_semidirect(8)
        channel = OracleFlipChannel(0.5, group, run_seed=7)
        elements = [group.embed_normal((k,)) for k in range(8)]
        first = [channel.replacement(e) for e in elements]
        second = [channel.replacement(e) for e in elements[::-1]][::-1]
        assert first == second  # order-independent, query-count-independent

    def test_flip_rate_tracks_epsilon(self):
        group = dihedral_semidirect(512)
        elements = group.element_list()
        for epsilon in (0.0, 0.25, 1.0):
            channel = OracleFlipChannel(epsilon, group, run_seed=3)
            flips = sum(channel.replacement(e) is not None for e in elements)
            assert abs(flips / len(elements) - epsilon) < 0.06

    def test_different_seeds_give_different_corruption(self):
        group = dihedral_semidirect(64)
        elements = group.element_list()
        a = OracleFlipChannel(0.5, group, run_seed=1)
        b = OracleFlipChannel(0.5, group, run_seed=2)
        assert [a.replacement(e) for e in elements] != [b.replacement(e) for e in elements]

    def test_scalar_batch_and_dense_paths_agree(self):
        instance = dihedral_instance(8)
        sampler = FourierSampler()
        install_noise(NoiseSpec("oracle-flip", 0.4), instance, sampler, run_seed=11)
        group = instance.group
        base = group.group if isinstance(group, BlackBoxGroup) else group
        elements = base.element_list()
        scalar = [instance.oracle(e) for e in elements]
        batch = instance.oracle.evaluate_many(elements)
        assert scalar == batch
        engine = instance.oracle.dense_engine
        if engine is not None:
            ids = engine.intern_many(elements)
            assert list(instance.oracle.evaluate_ids(ids)) == scalar
        view = instance.oracle.fresh_view()
        assert [view(e) for e in elements] == scalar

    def test_accounting_unchanged_by_noise(self):
        clean = dihedral_instance(8)
        noisy = dihedral_instance(8)
        sampler = FourierSampler()
        install_noise(NoiseSpec("oracle-flip", 0.7), noisy, sampler, run_seed=5)
        base = clean.group.group
        elements = base.element_list()
        clean.oracle.evaluate_many(elements)
        clean.oracle.evaluate_many(elements)  # cached: free
        noisy.oracle.evaluate_many(elements)
        noisy.oracle.evaluate_many(elements)
        assert (
            clean.oracle.counter.classical_queries
            == noisy.oracle.counter.classical_queries
        )

    def test_double_install_rejected(self):
        instance = dihedral_instance(8)
        sampler = FourierSampler()
        install_noise(NoiseSpec("oracle-flip", 0.4), instance, sampler, run_seed=1)
        with pytest.raises(ValueError, match="already installed"):
            install_noise(NoiseSpec("oracle-flip", 0.4), instance, sampler, run_seed=1)

    def test_zero_epsilon_installs_nothing(self):
        instance = dihedral_instance(8)
        sampler = FourierSampler()
        install_noise(NoiseSpec("oracle-flip", 0.0), instance, sampler, run_seed=1)
        assert instance.oracle.noise is None
        assert sampler.noise is None


class TestSampleDepolariseChannel:
    def test_shard_counts_do_not_change_corruption(self, rng):
        group = AbelianTupleGroup([16, 9, 5])
        instance = HSPInstance.from_subgroup(group, [(4, 3, 0)])
        results = []
        for shards in (None, 4):
            sampler = FourierSampler(rng=np.random.default_rng(99), shards=shards)
            local = HSPInstance.from_subgroup(group, [(4, 3, 0)])
            install_noise(NoiseSpec("sample-depolarise", 0.3), local, sampler, run_seed=21)
            solution = solve_hsp(
                local,
                strategy="abelian",
                sampler=sampler,
                noise=NoiseSpec("sample-depolarise", 0.3),
            )
            results.append(sorted(repr(g) for g in solution.generators))
        assert results[0] == results[1]

    def test_flip_rate_tracks_epsilon(self):
        channel = SampleDepolariseChannel(0.25, run_seed=13)
        samples = [(0, 0)] * 4000
        corrupted = channel.corrupt(samples, (7, 5))
        changed = sum(1 for s in corrupted if s != (0, 0))
        # A replacement can coincide with the original (prob 1/35), so the
        # observed change rate sits slightly below ε.
        assert abs(changed / len(samples) - 0.25 * (1 - 1 / 35)) < 0.03
        assert abs(channel.flips / len(samples) - 0.25) < 0.03

    def test_replacements_lie_in_dual_group(self):
        channel = SampleDepolariseChannel(1.0, run_seed=13)
        corrupted = channel.corrupt([(0, 0, 0)] * 500, (16, 9, 5))
        for sample in corrupted:
            assert all(0 <= v < m for v, m in zip(sample, (16, 9, 5)))


class TestNoisySolver:
    def test_noisy_failure_reports_no_convergence_not_crash(self):
        instance = dihedral_instance(8)
        sampler = FourierSampler(rng=np.random.default_rng(2))
        spec = NoiseSpec("oracle-flip", 1.0)
        install_noise(spec, instance, sampler, run_seed=17)
        solution = solve_hsp(instance, sampler=sampler, noise=spec)
        assert solution.status in ("ok", "no_convergence")
        if solution.status == "no_convergence":
            assert solution.generators == []

    def test_without_noise_exceptions_propagate(self, rng):
        # The graceful-failure path must not swallow honest-oracle bugs: an
        # elementary_abelian_two solve without its promise raises whether or
        # not the graceful path exists.
        instance = dihedral_instance(8, promises={})
        from repro.groups.base import GroupError

        with pytest.raises(GroupError):
            solve_hsp(instance, strategy="elementary_abelian_two", rng=rng)

    def test_ok_candidates_verify_against_ground_truth(self):
        # Whatever a noisy solve returns with status "ok" is checked against
        # concrete group arithmetic — assert the verification oracle itself
        # is not routed through the corrupted hiding function.
        instance = dihedral_instance(8)
        sampler = FourierSampler(rng=np.random.default_rng(4))
        spec = NoiseSpec("oracle-flip", 0.9)
        install_noise(spec, instance, sampler, run_seed=23)
        truth = list(instance.hidden_generators)
        assert instance.verify(truth)  # unaffected by the installed channel


class TestAdaptiveBaseline:
    def test_recovers_hidden_subgroup(self):
        instance = dihedral_instance(12, promises={})
        result = classical_adaptive_hsp(instance)
        assert result.method == "adaptive"
        assert instance.verify(result.generators or [instance.group.identity()])

    def test_adaptive_queries_fewer_than_exhaustive(self):
        group = dihedral_semidirect(64)
        instance = HSPInstance.from_subgroup(group, [group.embed_normal((1,))])
        result = classical_adaptive_hsp(instance)
        assert instance.verify(result.generators or [group.identity()])
        # |G| = 128: exhaustive queries all 128 elements; the sieve stops as
        # soon as its certificate fires.
        assert result.oracle_queries < 128

    def test_does_not_read_declared_hidden_generators(self):
        instance = dihedral_instance(12, promises={})
        instance.oracle.hidden_subgroup_generators = None  # honesty drill
        result = classical_adaptive_hsp(instance)
        group = dihedral_semidirect(12)
        restored = HSPInstance.from_subgroup(group, [group.embed_normal((1,))])
        assert restored.verify(result.generators or [group.identity()])

    def test_terminates_on_fully_corrupted_oracle(self):
        instance = dihedral_instance(8, promises={})
        sampler = FourierSampler()
        install_noise(NoiseSpec("oracle-flip", 1.0), instance, sampler, run_seed=31)
        result = classical_adaptive_hsp(instance)  # must not hang
        assert result.method == "adaptive"


class TestSweepIntegration:
    def test_zero_epsilon_rows_byte_identical_to_no_noise(self):
        plain = SweepSpec.from_grid(
            "noise-zero", "dihedral_rotation", {"n": [8, 12]}, repeats=2
        )
        zero = SweepSpec.from_grid(
            "noise-zero",
            "dihedral_rotation",
            {"n": [8, 12], "noise": ["oracle-flip(0)"]},
            repeats=2,
        )
        _, plain_payload = run_sweep(plain, workers=1, out_dir=None)
        _, zero_payload = run_sweep(zero, workers=1, out_dir=None)
        stripped = [
            dict(row, params={k: v for k, v in row["params"].items() if k != "noise"})
            for row in zero_payload["rows"]
        ]
        assert json.dumps(stripped, sort_keys=True) == json.dumps(
            plain_payload["rows"], sort_keys=True
        )

    def test_epsilon_one_terminates_with_failure_rows(self):
        spec = SweepSpec.from_grid(
            "noise-one",
            "dihedral_rotation",
            {"n": [8], "noise": ["oracle-flip(1)"], "strategy": ["hidden_normal"]},
            repeats=2,
        )
        _, payload = run_sweep(spec, workers=1, out_dir=None)
        assert payload["rows"]
        for row in payload["rows"]:
            assert row["status"] in ("ok", "no_convergence")
            assert row["status"] != "error"

    def test_depolarise_epsilon_one_terminates_with_failure_rows(self):
        spec = SweepSpec.from_grid(
            "noise-dep-one",
            "abelian_random",
            {"moduli": [(16, 9, 5)], "noise": ["sample-depolarise(1)"]},
            repeats=1,
        )
        _, payload = run_sweep(spec, workers=1, out_dir=None)
        for row in payload["rows"]:
            assert row["status"] != "error"
            assert row["success"] is False

    def test_noisy_rows_identical_across_worker_counts(self):
        spec = SweepSpec.from_grid(
            "noise-workers",
            "dihedral_rotation",
            {
                "n": [8, 12],
                "noise": ["oracle-flip(0.3)"],
                "strategy": ["hidden_normal", "classical_adaptive"],
            },
            repeats=2,
        )
        from repro.experiments.results import rows_bytes

        _, one = run_sweep(spec, workers=1, out_dir=None)
        _, two = run_sweep(spec, workers=2, out_dir=None)
        assert rows_bytes(one) == rows_bytes(two)

    def test_depolarise_rows_identical_across_shard_counts(self):
        rows = []
        for shards in (1, 4):
            spec = SweepSpec.from_grid(
                "noise-shards",
                "abelian_random",
                {"moduli": [(16, 9, 5)], "noise": ["sample-depolarise(0.1)"]},
                repeats=3,
                sampler=SamplerSpec(shards=shards),
            )
            _, payload = run_sweep(spec, workers=1, out_dir=None)
            rows.append(json.dumps(payload["rows"], sort_keys=True))
        assert rows[0] == rows[1]

    def test_noise_axis_is_reserved_and_recorded(self):
        spec = SweepSpec.from_grid(
            "noise-axis",
            "dihedral_rotation",
            {"n": [8], "noise": ["oracle-flip(0.2)"]},
            repeats=1,
        )
        run = spec.expand()[0]
        assert run.instance_params() == {"n": 8}
        assert dict(run.solver_options)["noise"] == "oracle-flip(0.2)"
        assert dict(run.params)["noise"] == "oracle-flip(0.2)"

    def test_invalid_noise_value_fails_at_expand_time(self):
        spec = SweepSpec.from_grid(
            "noise-bad", "dihedral_rotation", {"n": [8], "noise": ["bit-rot(0.5)"]}
        )
        with pytest.raises(ValueError, match="unknown noise kind"):
            spec.expand()


class TestNoiseObservability:
    def test_flip_counter_and_phase_bucket(self, tmp_path):
        from repro import obs
        from repro.obs import metrics as obs_metrics
        from repro.obs.summary import load_trace_events, summarise_trace

        trace_path = tmp_path / "trace.jsonl"
        was_collecting = obs_metrics.set_collecting(True)
        obs.reset_metrics()
        try:
            with obs.observed(trace_path=str(trace_path)):
                instance = dihedral_instance(8)
                sampler = FourierSampler(rng=np.random.default_rng(6))
                spec = NoiseSpec("oracle-flip", 0.6)
                install_noise(spec, instance, sampler, run_seed=41)
                solve_hsp(instance, sampler=sampler, noise=spec)
            counters = obs.get_metrics().snapshot()["counters"]
        finally:
            obs_metrics.set_collecting(was_collecting)
            obs.reset_metrics()
        assert counters.get("noise.flips", 0) > 0
        summary = summarise_trace(load_trace_events([str(trace_path)]))
        assert "noise" in summary.get("phases", {})
