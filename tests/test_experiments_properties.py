"""Property-based (hypothesis) hardening of the experiment stack (PR 5).

Three adversarial properties:

* **planted saturation recovery** — data generated from the exact
  ``s(r) = 1-(1-p)^r`` model, with and without binomial noise, must yield a
  fitted ``p`` inside the envelope of the per-point Wilson-implied ``p``
  intervals (and, noise-free, within scan resolution of the plant);
* **permutation invariance** — ``analyse`` is a pure function of the row
  *set*: shuffling the rows of a BENCH payload (as a shard merge or journal
  replay might) changes no statistic, cell order included;
* **journal fuzz** — journals and shards mangled by truncation at any byte,
  duplicated/interleaved lines and conflicting ok/error records for the same
  ``(index, seed)`` never crash the readers and never double-count a row.
"""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.analysis import analyse, fit_saturation, wilson_interval
from repro.experiments.results import (
    RunRecord,
    load_journal_payload,
    rows_bytes,
    validate_rows,
)

SEED = 20010202


# ---------------------------------------------------------------------------
# Planted saturation fits
# ---------------------------------------------------------------------------


def _implied_p_envelope(points):
    """The hull of per-point Wilson-implied ``p`` ranges.

    A point ``(r, successes, n)`` bounds the per-round probability via the
    Wilson interval on the observed rate: ``s = 1-(1-p)^r`` inverts to
    ``p = 1-(1-s)^(1/r)``, monotone in ``s``.  Any reasonable weighted fit
    must land inside the union hull of those ranges.
    """
    lows, highs = [], []
    for r, successes, n in points:
        low, high = wilson_interval(successes, n)
        lows.append(1.0 - (1.0 - low) ** (1.0 / r))
        highs.append(1.0 - (1.0 - high) ** (1.0 / r))
    return min(lows), max(highs)


class TestPlantedSaturation:
    @given(
        p=st.floats(min_value=0.05, max_value=0.9),
        rounds=st.lists(st.integers(min_value=1, max_value=24), min_size=3, max_size=8, unique=True),
    )
    @settings(max_examples=60, deadline=None)
    def test_noise_free_plant_is_recovered(self, p, rounds):
        n = 1000
        # always include the r=1 point: a grid of high round counts alone
        # saturates at rate 1.0 for large p and the plant is unidentifiable
        points = [(r, n * (1.0 - (1.0 - p) ** r), n) for r in sorted(set(rounds) | {1})]
        fit = fit_saturation(points)
        assert fit is not None
        # scan resolution is 1/2000 with golden-section refinement on the
        # bracketing interval; exact data must pin the plant tightly
        assert abs(fit["p"] - p) < 2e-3
        assert fit["sse"] < 1e-6

    @given(
        p=st.floats(min_value=0.05, max_value=0.9),
        noise_seed=st.integers(min_value=0, max_value=2**31 - 1),
        rounds=st.lists(st.integers(min_value=1, max_value=20), min_size=3, max_size=6, unique=True),
        runs=st.integers(min_value=50, max_value=400),
    )
    @settings(max_examples=60, deadline=None)
    def test_noisy_plant_lands_in_the_wilson_envelope(self, p, noise_seed, rounds, runs):
        rng = np.random.default_rng(noise_seed)
        points = []
        for r in sorted(rounds):
            expected = 1.0 - (1.0 - p) ** r
            points.append((r, int(rng.binomial(runs, expected)), runs))
        fit = fit_saturation(points)
        assert fit is not None
        low, high = _implied_p_envelope(points)
        assert low - 1e-9 <= fit["p"] <= high + 1e-9
        # residuals are reported against the fitted curve, one per point
        assert len(fit["points"]) == len(points)
        for point in fit["points"]:
            assert math.isclose(point["residual"], point["rate"] - point["fitted"], abs_tol=1e-9)

    def test_degenerate_inputs_have_no_fit(self):
        assert fit_saturation([]) is None
        assert fit_saturation([(1, 3, 8)]) is None
        assert fit_saturation([(1, 0, 0), (2, 0, 0)]) is None


# ---------------------------------------------------------------------------
# Permutation invariance of the analysis
# ---------------------------------------------------------------------------


def _synthetic_payload():
    """A hand-built two-axis sweep payload (saturation-shaped grid).

    Statuses mix ok/error and successes vary, so every analysis code path
    (cells, fits, error tallies) is exercised without running a solver.
    """
    grid = {"n": [8, 16], "confidence": [1, 2, 4]}
    rows = []
    index = 0
    for n in grid["n"]:
        for confidence in grid["confidence"]:
            for repeat in range(3):
                status = "error" if (index % 7 == 3) else "ok"
                rows.append(
                    {
                        "index": index,
                        "family": "dihedral_rotation",
                        "params": {"confidence": confidence, "n": n},
                        "repeat": repeat,
                        "seed": 1000 + index,
                        "strategy": "auto",
                        "status": status,
                        "error": "Traceback ..." if status == "error" else None,
                        "success": status == "ok" and (index % 3 != 1),
                        "generators": [],
                        "query_report": {"quantum_queries": 5 + index % 4},
                    }
                )
                index += 1
    payload = {
        "sweep": {
            "name": "synthetic-perm",
            "family": "dihedral_rotation",
            "grid": grid,
            "repeats": 3,
            "seed": SEED,
        },
        "workers": 1,
        "rows": rows,
        "timings": [],
        "aggregate": {},
    }
    validate_rows(payload)  # the fixture must be a legal sweep payload
    return payload


class TestPermutationInvariance:
    @given(order_seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_analyse_is_invariant_under_row_permutation(self, order_seed):
        payload = _synthetic_payload()
        baseline = analyse(payload, source="BENCH_synthetic-perm.json")
        shuffled = json.loads(json.dumps(payload))
        np.random.default_rng(order_seed).shuffle(shuffled["rows"])
        permuted = analyse(shuffled, source="BENCH_synthetic-perm.json")
        assert json.dumps(permuted, sort_keys=True) == json.dumps(baseline, sort_keys=True)

    def test_reversed_rows_change_nothing(self):
        payload = _synthetic_payload()
        baseline = analyse(payload)
        reversed_payload = dict(payload, rows=list(reversed(payload["rows"])))
        assert analyse(reversed_payload) == baseline
        # the cells keep grid-expansion order, not storage order
        first_cell = baseline["cells"][0]["params"]
        assert first_cell == {"confidence": 1, "n": 8}


# ---------------------------------------------------------------------------
# Journal / shard reader fuzz
# ---------------------------------------------------------------------------


def _journal_bytes(records, header=True):
    lines = []
    if header:
        from repro.experiments.results import JOURNAL_VERSION

        lines.append(
            json.dumps(
                {
                    "journal_version": JOURNAL_VERSION,
                    "sweep": {"name": "fuzz", "family": "dihedral_rotation", "grid": {}},
                },
                sort_keys=True,
            )
        )
    for record in records:
        lines.append(json.dumps(record.to_json_dict(), sort_keys=True))
    return ("\n".join(lines) + "\n").encode("utf-8")


def _record(index, seed, status="ok"):
    return RunRecord(
        sweep="fuzz",
        index=index,
        family="dihedral_rotation",
        params={},
        repeat=0,
        seed=seed,
        strategy="auto",
        success=status == "ok",
        generators=[],
        query_report={"quantum_queries": index},
        status=status,
        error="Traceback ..." if status == "error" else None,
    )


class TestJournalFuzz:
    @given(data=st.data())
    @settings(max_examples=120, deadline=None)
    def test_mangled_journals_never_crash_or_double_count(self, data, tmp_path_factory):
        keys = data.draw(
            st.lists(
                st.tuples(st.integers(0, 9), st.integers(0, 99)), min_size=0, max_size=6, unique=True
            )
        )
        # conflicting ok/error records for the same key, plus duplicates
        records = []
        for index, seed in keys:
            for status in data.draw(
                st.lists(st.sampled_from(["ok", "error"]), min_size=1, max_size=3)
            ):
                records.append(_record(index, seed, status))
        blob = _journal_bytes(records, header=data.draw(st.booleans()))
        # mangle: truncate at an arbitrary byte, then optionally interleave a
        # garbage line (torn writes merging) and duplicate a line
        cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
        blob = blob[:cut]
        lines = blob.split(b"\n")
        if data.draw(st.booleans()) and lines:
            at = data.draw(st.integers(0, len(lines) - 1))
            garbage = data.draw(
                st.sampled_from([b"null", b"42", b'{"index": "x"}', b"{]", b"", b'"str"'])
            )
            lines.insert(at, garbage)
        if data.draw(st.booleans()) and len(lines) > 1:
            at = data.draw(st.integers(0, len(lines) - 1))
            lines.insert(at, lines[at])
        blob = b"\n".join(lines)

        path = tmp_path_factory.mktemp("fuzz") / "shard.jsonl"
        path.write_bytes(blob)
        try:
            payload = load_journal_payload(str(path))
        except ValueError:
            return  # a refused header is a *loud* failure, never a crash
        rows = payload["rows"]
        seen = {(row["index"], row["seed"]) for row in rows}
        assert len(seen) == len(rows), "a (index, seed) key was double-counted"
        assert seen <= set(keys), "a row appeared that was never journaled"
        # whatever survived is well-formed enough to serialize
        assert rows_bytes(payload)

    def test_empty_and_headerless_files_are_refused(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="no journal header"):
            load_journal_payload(str(empty))
        headerless = tmp_path / "rows-only.jsonl"
        headerless.write_text(json.dumps(_record(0, 1).to_json_dict()) + "\n")
        with pytest.raises(ValueError, match="no journal header|version"):
            load_journal_payload(str(headerless))
