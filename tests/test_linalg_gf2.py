"""Unit tests for GF(2) linear algebra."""

import numpy as np
import pytest

from repro.linalg.gf2 import (
    GF2Matrix,
    gf2_nullspace,
    gf2_rank,
    gf2_rref,
    gf2_solve,
    gf2_span_contains,
    gf2_random_full_rank,
)


class TestElimination:
    def test_rref_identity(self):
        rref, pivots = gf2_rref(np.eye(3, dtype=np.uint8))
        assert pivots == [0, 1, 2]
        assert np.array_equal(rref, np.eye(3, dtype=np.uint8))

    def test_rank_with_dependent_rows(self):
        assert gf2_rank([[1, 0, 1], [0, 1, 1], [1, 1, 0]]) == 2

    def test_rank_zero_matrix(self):
        assert gf2_rank([[0, 0], [0, 0]]) == 0

    def test_entries_reduced_mod_2(self):
        assert gf2_rank([[2, 4], [6, 8]]) == 0

    @pytest.mark.parametrize("seed", range(10))
    def test_nullspace_annihilates(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, size=(4, 6), dtype=np.uint8)
        basis = gf2_nullspace(a)
        assert basis.shape[0] == 6 - gf2_rank(a)
        for vec in basis:
            assert not ((a @ vec) % 2).any()

    def test_nullspace_dimension_full_rank(self):
        assert gf2_nullspace(np.eye(4, dtype=np.uint8)).shape[0] == 0


class TestSolve:
    def test_solve_consistent(self):
        a = [[1, 0, 1], [0, 1, 1]]
        b = [1, 0]
        x = gf2_solve(a, b)
        assert x is not None
        assert np.array_equal((np.array(a) @ x) % 2, np.array(b))

    def test_solve_inconsistent(self):
        a = [[1, 1], [1, 1]]
        assert gf2_solve(a, [0, 1]) is None

    def test_solve_shape_mismatch(self):
        with pytest.raises(ValueError):
            gf2_solve([[1, 0]], [1, 0])

    def test_span_contains(self):
        rows = [[1, 0, 1], [0, 1, 1]]
        assert gf2_span_contains(rows, [1, 1, 0])
        assert not gf2_span_contains(rows, [0, 0, 1])

    def test_span_contains_empty(self):
        assert gf2_span_contains([], [0, 0])
        assert not gf2_span_contains([], [1, 0])


class TestGF2Matrix:
    def test_rank_and_shape(self):
        mat = GF2Matrix([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        assert mat.shape == (3, 3)
        assert mat.rank == 2

    def test_empty_requires_ncols(self):
        with pytest.raises(ValueError):
            GF2Matrix([])
        empty = GF2Matrix([], ncols=4)
        assert empty.shape == (0, 4)
        assert empty.span_contains([0, 0, 0, 0])
        assert not empty.span_contains([1, 0, 0, 0])

    def test_matmul_and_apply(self):
        a = GF2Matrix([[1, 1], [0, 1]])
        b = GF2Matrix([[1, 0], [1, 1]])
        product = a.matmul(b)
        assert product.array.tolist() == [[0, 1], [1, 1]]
        assert a.apply([1, 1]).tolist() == [0, 1]

    def test_stack_grows_span(self):
        mat = GF2Matrix([[1, 0, 0]])
        grown = mat.stack([0, 1, 0])
        assert grown.rank == 2
        assert grown.span_contains([1, 1, 0])

    def test_row_basis_equality(self):
        a = GF2Matrix([[1, 0, 1], [0, 1, 1]])
        b = GF2Matrix([[1, 1, 0], [0, 1, 1], [1, 0, 1]])
        assert a == b

    def test_identity_and_zeros(self):
        assert GF2Matrix.identity(3).rank == 3
        assert GF2Matrix.zeros(2, 3).rank == 0

    def test_random_full_rank(self):
        rng = np.random.default_rng(3)
        mat = gf2_random_full_rank(5, rng)
        assert gf2_rank(mat) == 5
