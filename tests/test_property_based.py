"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import HeisenbergGroup
from repro.groups.perm import (
    compose,
    compose_many,
    invert,
    invert_many,
    permutation_order,
    symmetric_group,
)
from repro.linalg.gf2 import gf2_nullspace, gf2_rank
from repro.linalg.hermite import hermite_normal_form, integer_kernel
from repro.linalg.modular import crt, egcd, factorint, is_probable_prime
from repro.linalg.smith import smith_normal_form
from repro.linalg.zmodule import (
    annihilator,
    canonical_generators,
    coset_representative,
    cyclic_decomposition,
    member_coefficients,
    subgroup_order,
)

settings.register_profile("repro", deadline=None, max_examples=40, suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro")


# ---------------------------------------------------------------------------
# Number theory
# ---------------------------------------------------------------------------


@given(st.integers(min_value=-10**6, max_value=10**6), st.integers(min_value=-10**6, max_value=10**6))
def test_egcd_bezout_identity(a, b):
    g, x, y = egcd(a, b)
    assert g == math.gcd(a, b)
    assert a * x + b * y == g


@given(st.integers(min_value=2, max_value=10**6))
def test_factorint_product_property(n):
    factors = factorint(n)
    product = 1
    for p, e in factors.items():
        assert is_probable_prime(p)
        product *= p**e
    assert product == n


@given(st.lists(st.integers(min_value=2, max_value=50), min_size=1, max_size=4), st.data())
def test_crt_consistency(moduli, data):
    residues = [data.draw(st.integers(min_value=0, max_value=m - 1)) for m in moduli]
    try:
        r, m = crt(residues, moduli)
    except ValueError:
        return  # incompatible congruences are allowed for non-coprime moduli
    for residue, modulus in zip(residues, moduli):
        assert r % modulus == residue % modulus


# ---------------------------------------------------------------------------
# Integer linear algebra
# ---------------------------------------------------------------------------

small_matrix = st.lists(
    st.lists(st.integers(min_value=-8, max_value=8), min_size=1, max_size=4),
    min_size=1,
    max_size=4,
).filter(lambda rows: len({len(r) for r in rows}) == 1)


@given(small_matrix)
def test_snf_transform_identity(matrix):
    d, u, v = smith_normal_form(matrix)
    m, n = len(matrix), len(matrix[0])
    product = [[sum(u[i][k] * matrix[k][j] for k in range(m)) for j in range(n)] for i in range(m)]
    product = [[sum(product[i][k] * v[k][j] for k in range(n)) for j in range(n)] for i in range(m)]
    assert product == d
    diag = [d[i][i] for i in range(min(m, n))]
    for a, b in zip(diag, diag[1:]):
        if a:
            assert b % a == 0 or b == 0
        else:
            assert b == 0


@given(small_matrix)
def test_integer_kernel_annihilates(matrix):
    n = len(matrix[0])
    for vec in integer_kernel(matrix):
        assert all(sum(row[j] * vec[j] for j in range(n)) == 0 for row in matrix)


@given(small_matrix)
def test_hnf_is_idempotent(matrix):
    hnf = hermite_normal_form(matrix)
    assert hermite_normal_form(hnf) == hnf


# ---------------------------------------------------------------------------
# Z-module subgroup arithmetic
# ---------------------------------------------------------------------------

moduli_strategy = st.lists(st.sampled_from([2, 3, 4, 5, 6, 8, 9]), min_size=1, max_size=3)


@st.composite
def module_and_generators(draw):
    moduli = draw(moduli_strategy)
    count = draw(st.integers(min_value=1, max_value=3))
    gens = [tuple(draw(st.integers(min_value=0, max_value=m - 1)) for m in moduli) for _ in range(count)]
    return moduli, gens


@given(module_and_generators())
def test_double_annihilator_property(data):
    moduli, gens = data
    double = annihilator(annihilator(gens, moduli), moduli)
    assert canonical_generators(double, moduli) == canonical_generators(gens, moduli)


@given(module_and_generators())
def test_annihilator_order_product(data):
    moduli, gens = data
    total = math.prod(moduli)
    assert subgroup_order(gens, moduli) * subgroup_order(annihilator(gens, moduli), moduli) == total


@given(module_and_generators())
def test_cyclic_decomposition_orders(data):
    moduli, gens = data
    decomposition = cyclic_decomposition(gens, moduli)
    product = math.prod([order for _, order in decomposition]) if decomposition else 1
    assert product == subgroup_order(gens, moduli)


@given(module_and_generators(), st.data())
def test_member_coefficients_always_reconstruct(data, draw):
    moduli, gens = data
    group = AbelianTupleGroup(moduli)
    coefficients = [draw.draw(st.integers(min_value=0, max_value=10)) for _ in gens]
    target = group.identity()
    for c, g in zip(coefficients, gens):
        target = group.multiply(target, group.power(g, c))
    solved = member_coefficients(gens, target, moduli)
    assert solved is not None
    rebuilt = group.identity()
    for c, g in zip(solved, gens):
        rebuilt = group.multiply(rebuilt, group.power(g, c))
    assert rebuilt == target


@given(module_and_generators(), st.data())
def test_coset_representative_invariance(data, draw):
    moduli, gens = data
    group = AbelianTupleGroup(moduli)
    x = tuple(draw.draw(st.integers(min_value=0, max_value=m - 1)) for m in moduli)
    coefficient = draw.draw(st.integers(min_value=0, max_value=8))
    shift = group.identity()
    for g in gens:
        shift = group.multiply(shift, group.power(g, coefficient))
    assert coset_representative(group.multiply(x, shift), gens, moduli) == coset_representative(x, gens, moduli)


# ---------------------------------------------------------------------------
# GF(2)
# ---------------------------------------------------------------------------


@given(st.lists(st.lists(st.integers(min_value=0, max_value=1), min_size=4, max_size=4), min_size=1, max_size=5))
def test_gf2_rank_nullity(rows):
    a = np.array(rows, dtype=np.uint8)
    assert gf2_rank(a) + gf2_nullspace(a).shape[0] == 4


# ---------------------------------------------------------------------------
# Group axioms
# ---------------------------------------------------------------------------

perm_strategy = st.permutations(list(range(5)))


@given(perm_strategy, perm_strategy, perm_strategy)
def test_permutation_associativity(p, q, r):
    p, q, r = tuple(p), tuple(q), tuple(r)
    assert compose(compose(p, q), r) == compose(p, compose(q, r))


@given(perm_strategy)
def test_permutation_inverse_and_order(p):
    p = tuple(p)
    identity = tuple(range(5))
    assert compose(p, invert(p)) == identity
    order = permutation_order(p)
    power = identity
    for _ in range(order):
        power = compose(power, p)
    assert power == identity


@st.composite
def permutation_batches(draw):
    """Matched batches of permutations as tuples and as image matrices."""
    degree = draw(st.integers(min_value=1, max_value=8))
    count = draw(st.integers(min_value=1, max_value=6))
    ps = [tuple(draw(st.permutations(range(degree)))) for _ in range(count)]
    qs = [tuple(draw(st.permutations(range(degree)))) for _ in range(count)]
    return ps, qs


@given(permutation_batches())
def test_perm_batch_compose_matches_tuple_kernel(batch):
    # The batch API and the scalar tuple API share one composition kernel;
    # this pins the row-for-row parity the Cayley engine's DenseKernel
    # protocol relies on.
    ps, qs = batch
    rows = compose_many(np.asarray(ps, dtype=np.int64), np.asarray(qs, dtype=np.int64))
    assert [tuple(int(v) for v in row) for row in rows] == [
        compose(p, q) for p, q in zip(ps, qs)
    ]


@given(permutation_batches())
def test_perm_batch_invert_matches_tuple_kernel(batch):
    ps, _ = batch
    rows = invert_many(np.asarray(ps, dtype=np.int64))
    assert [tuple(int(v) for v in row) for row in rows] == [invert(p) for p in ps]
    identity = tuple(range(len(ps[0])))
    roundtrip = compose_many(np.asarray(ps, dtype=np.int64), rows)
    assert all(tuple(int(v) for v in row) == identity for row in roundtrip)


@st.composite
def heisenberg_elements(draw, p=3):
    a = tuple(draw(st.integers(min_value=0, max_value=p - 1)) for _ in range(1))
    b = tuple(draw(st.integers(min_value=0, max_value=p - 1)) for _ in range(1))
    c = draw(st.integers(min_value=0, max_value=p - 1))
    return (a, b, c)


@given(heisenberg_elements(), heisenberg_elements(), heisenberg_elements())
def test_heisenberg_associativity(x, y, z):
    group = HeisenbergGroup(3)
    assert group.multiply(group.multiply(x, y), z) == group.multiply(x, group.multiply(y, z))


@given(heisenberg_elements())
def test_heisenberg_inverse(x):
    group = HeisenbergGroup(3)
    assert group.is_identity(group.multiply(x, group.inverse(x)))
    assert group.is_identity(group.multiply(group.inverse(x), x))


@given(heisenberg_elements(), heisenberg_elements())
def test_heisenberg_commutators_are_central(x, y):
    group = HeisenbergGroup(3)
    commutator = group.commutator(x, y)
    assert commutator[0] == (0,) and commutator[1] == (0,)
