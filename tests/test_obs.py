"""The sidecar observability layer (PR 7): tracing, metrics, profiling.

The contract under test:

* the :class:`Metrics` registry accumulates counters/gauges/timing
  histograms, snapshots to plain JSON, rehydrates, merges across worker
  processes (``sum()``-compatible like ``QueryCounter``), and produces
  delta snapshots for per-run reporting;
* the module-level helpers are no-ops until collection is switched on —
  instrumented hot paths must cost one boolean check when disabled;
* :func:`repro.obs.span` returns the shared null singleton when no tracer
  is installed (no allocation, nothing emitted) and a real nested span —
  with parent ids, durations, attrs and counters — when one is;
* **the sidecar invariant**: a traced/profiled sweep produces BENCH rows
  byte-identical to an untraced one, with the exact same row key sets —
  telemetry lands only in its own files;
* ``trace summarise`` aggregates multi-writer JSONL traces into the
  per-phase breakdown, covering solver phases, sampler batches, and
  engine build/fill events.
"""

import json
import os

import pytest

from repro import obs
from repro.experiments.cli import main as cli_main
from repro.experiments.results import rows_bytes
from repro.experiments.runner import run_sweep
from repro.experiments.specs import SweepSpec
from repro.obs import metrics as metrics_mod
from repro.obs import profile as profile_mod
from repro.obs import trace as trace_mod
from repro.obs.metrics import Metrics

SEED = 20010202


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Every test leaves the process as it found it: no tracer, collection
    off, no profile dir, fresh registry — observability is process-global
    state, and leakage here would poison unrelated tests."""
    yield
    trace_mod.install_tracer(None)
    metrics_mod.set_collecting(False)
    profile_mod.set_profile_dir(None)
    metrics_mod.reset_metrics()


def tiny_spec(name="obs", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(name, "dihedral_rotation", {"n": [8]}, **defaults)


class TestMetricsRegistry:
    def test_counters_gauges_and_timings_accumulate(self):
        metrics = Metrics()
        metrics.count("hits")
        metrics.count("hits", 2)
        metrics.gauge("depth", 3.5)
        metrics.observe("fill", 0.25)
        metrics.observe("fill", 0.75)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"hits": 3}
        assert snapshot["gauges"] == {"depth": 3.5}
        assert snapshot["timings"]["fill"] == {
            "count": 2,
            "total": 1.0,
            "min": 0.25,
            "max": 0.75,
        }

    def test_snapshot_round_trips_and_is_json_safe(self):
        metrics = Metrics()
        metrics.count("a", 7)
        metrics.gauge("g", 1.0)
        metrics.observe("t", 0.5)
        snapshot = json.loads(json.dumps(metrics.snapshot()))
        rehydrated = Metrics.from_snapshot(snapshot)
        assert rehydrated.snapshot() == metrics.snapshot()

    def test_merge_adds_counters_and_combines_histograms(self):
        a, b = Metrics(), Metrics()
        a.count("calls", 2)
        b.count("calls", 3)
        a.observe("t", 0.1)
        b.observe("t", 0.4)
        merged = a + b
        assert merged.counters["calls"] == 5
        assert merged.timings["t"] == {"count": 2, "total": 0.5, "min": 0.1, "max": 0.4}
        # the operands are untouched (merge into a fresh registry)
        assert a.counters["calls"] == 2 and b.counters["calls"] == 3

    def test_sum_starts_from_zero_like_query_counter(self):
        parts = []
        for value in (1, 2, 3):
            m = Metrics()
            m.count("n", value)
            parts.append(m)
        assert sum(parts).counters["n"] == 6

    def test_diff_subtracts_counts_and_totals(self):
        metrics = Metrics()
        metrics.count("queries", 10)
        metrics.observe("t", 1.0)
        before = metrics.snapshot()
        metrics.count("queries", 5)
        metrics.observe("t", 0.5)
        delta = metrics.diff(before)
        assert delta["counters"] == {"queries": 5}
        assert delta["timings"]["t"]["count"] == 1
        assert delta["timings"]["t"]["total"] == pytest.approx(0.5)

    def test_diff_drops_unchanged_keys(self):
        metrics = Metrics()
        metrics.count("stable", 4)
        before = metrics.snapshot()
        delta = metrics.diff(before)
        assert delta["counters"] == {}
        assert delta["timings"] == {}

    def test_module_helpers_are_noops_when_collection_is_off(self):
        registry = metrics_mod.reset_metrics()
        assert not metrics_mod.collecting()
        metrics_mod.count("ignored")
        metrics_mod.gauge("ignored", 1.0)
        metrics_mod.observe("ignored", 1.0)
        with metrics_mod.timed("ignored"):
            pass
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "timings": {}}

    def test_module_helpers_record_when_collection_is_on(self):
        registry = metrics_mod.reset_metrics()
        metrics_mod.set_collecting(True)
        metrics_mod.count("hits")
        with metrics_mod.timed("block"):
            pass
        assert registry.counters == {"hits": 1}
        assert registry.timings["block"]["count"] == 1

    def test_timed_call_decorator_gates_on_collection(self):
        @metrics_mod.timed_call("decorated")
        def work(x):
            return x * 2

        registry = metrics_mod.reset_metrics()
        assert work.__name__ == "work"  # functools.wraps preserved
        assert work(3) == 6
        assert "decorated" not in registry.timings
        metrics_mod.set_collecting(True)
        assert work(3) == 6
        assert registry.timings["decorated"]["count"] == 1


class TestTracer:
    def test_span_is_the_shared_null_singleton_when_disabled(self):
        assert trace_mod.current_tracer() is None
        first = obs.span("anything", attr=1)
        second = obs.span("else")
        assert first is obs.NULL_SPAN and second is obs.NULL_SPAN
        with first as active:
            active.add("counter")
            active.set(key="value")  # all no-ops, nothing raised

    def test_event_emits_nothing_when_disabled(self, tmp_path):
        obs.event("orphan", detail=1)  # no tracer installed: swallowed

    def test_nested_spans_record_parent_ids_and_durations(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_mod.tracing(path, worker="w-test"):
            with obs.span("outer", stage="demo") as outer:
                outer.add("touched", 2)
                with obs.span("inner"):
                    pass
        events = [json.loads(line) for line in open(path)]
        by_name = {entry["name"]: entry for entry in events}
        inner, outer = by_name["inner"], by_name["outer"]
        # inner closes first (appended first) and points at outer
        assert events[0]["name"] == "inner"
        assert inner["parent"] == outer["span"]
        assert outer["parent"] is None
        assert outer["dur"] >= inner["dur"] >= 0.0
        assert outer["attrs"] == {"stage": "demo"}
        assert outer["counters"] == {"touched": 2}
        assert all(entry["worker"] == "w-test" for entry in events)
        assert all(entry["span"].startswith(f"{os.getpid()}-") for entry in events)

    def test_span_records_the_exception_type(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_mod.tracing(path):
            with pytest.raises(RuntimeError):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        (entry,) = [json.loads(line) for line in open(path)]
        assert entry["error"] == "RuntimeError"

    def test_standalone_events_carry_fields(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with trace_mod.tracing(path, worker="w1"):
            obs.event("checkpoint", step=3)
        (entry,) = [json.loads(line) for line in open(path)]
        assert entry["event"] == "checkpoint"
        assert entry["step"] == 3 and entry["worker"] == "w1"

    def test_observed_installs_and_restores(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert trace_mod.current_tracer() is None
        with obs.observed(trace_path=path, worker="scoped") as tracer:
            assert trace_mod.current_tracer() is tracer
            assert metrics_mod.collecting()
        assert trace_mod.current_tracer() is None
        assert not metrics_mod.collecting()

    def test_observed_is_a_passthrough_when_nothing_requested(self):
        with obs.observed() as tracer:
            assert tracer is None
            assert not metrics_mod.collecting()


class TestProfiled:
    def test_noop_without_a_profile_dir(self, tmp_path):
        with obs.profiled("label"):
            pass
        assert list(tmp_path.iterdir()) == []

    def test_writes_a_pstats_file_per_label(self, tmp_path):
        profile_mod.set_profile_dir(str(tmp_path))
        with obs.profiled("run smoke/0001"):
            sum(range(100))
        names = os.listdir(tmp_path)
        assert names == ["run-smoke-0001.pstats"]  # label sanitised
        import pstats

        pstats.Stats(str(tmp_path / names[0]))  # parseable profile data


class TestSidecarInvariant:
    """Satellite 3b + the tentpole's hard invariant: telemetry never touches
    the BENCH ledger."""

    def test_traced_and_profiled_sweep_rows_are_byte_identical(self, tmp_path):
        spec = tiny_spec()
        _, baseline = run_sweep(spec, out_dir=None)
        trace = str(tmp_path / "trace.jsonl")
        _, traced = run_sweep(
            spec, out_dir=None, trace=trace, profile_dir=str(tmp_path / "prof")
        )
        assert rows_bytes(traced) == rows_bytes(baseline)
        assert [sorted(row) for row in traced["rows"]] == [
            sorted(row) for row in baseline["rows"]
        ]
        assert os.path.getsize(trace) > 0
        assert any(name.endswith(".pstats") for name in os.listdir(tmp_path / "prof"))

    def test_noop_tracer_adds_no_keys_to_bench_rows(self):
        # with observability completely off, rows carry exactly the
        # pre-observability schema — no stray telemetry keys
        _, payload = run_sweep(tiny_spec(), out_dir=None)
        expected = {
            "index",
            "family",
            "params",
            "repeat",
            "seed",
            "strategy",
            "status",
            "error",
            "success",
            "generators",
            "query_report",
        }
        for row in payload["rows"]:
            assert set(row) == expected

    def test_worker_pool_with_tracing_matches_untraced(self, tmp_path):
        spec = tiny_spec(name="obs-pool")
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        trace = str(tmp_path / "pool-trace.jsonl")
        _, traced = run_sweep(spec, workers=2, out_dir=None, trace=trace)
        assert rows_bytes(traced) == rows_bytes(baseline)
        events = obs.load_trace_events([trace])
        # the pool children traced too, under their own writer names
        writers = {e.get("worker") for e in events if e.get("worker")}
        assert any(str(w).startswith("pool-") for w in writers)


class TestTraceSummary:
    def test_loader_skips_torn_lines_and_raises_on_missing_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"event":"span","name":"a","dur":0.5,"pid":1}\n'
            '{"event":"span","name":"a","dur'  # torn concurrent tail
        )
        events = obs.load_trace_events([str(path)])
        assert len(events) == 1
        with pytest.raises(OSError):
            obs.load_trace_events([str(tmp_path / "missing.jsonl")])

    def test_summary_aggregates_spans_and_metrics(self):
        events = [
            {"event": "span", "name": "run", "dur": 1.0, "pid": 1, "worker": "w1"},
            {
                "event": "span",
                "name": "run",
                "dur": 3.0,
                "pid": 2,
                "worker": "w2",
                "counters": {"samples": 5},
            },
            {
                "event": "run_metrics",
                "pid": 1,
                "worker": "w1",
                "metrics": {"counters": {"engine.cache.hit": 2}, "timings": {}},
            },
        ]
        summary = obs.summarise_trace(events)
        run = summary["spans"]["run"]
        assert run["count"] == 2
        assert run["total_s"] == pytest.approx(4.0)
        assert run["mean_s"] == pytest.approx(2.0)
        assert run["max_s"] == pytest.approx(3.0)
        assert run["counters"] == {"samples": 5}
        assert summary["metrics"]["counters"] == {"engine.cache.hit": 2}
        assert summary["workers"] == ["w1", "w2"]
        # spans and metric timers bucket by name prefix into phases
        assert summary["phases"]["run"]["span_count"] == 2
        assert summary["phases"]["run"]["span_s"] == pytest.approx(4.0)
        rendered = obs.format_trace_summary(summary)
        assert "run" in rendered and "engine.cache.hit = 2" in rendered
        assert "share" in rendered and "100.0%" in rendered

    def test_solver_phases_sampler_batches_and_engine_events_covered(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        run_sweep(tiny_spec(name="obs-phases"), out_dir=None, trace=trace)
        summary = obs.summarise_trace(obs.load_trace_events([trace]))
        names = set(summary["spans"])
        assert "solver.choose_strategy" in names
        assert any(name.startswith("solver.strategy.") for name in names)
        assert "sampler.batch" in names
        assert "engine.build" in names
        assert summary["spans"]["sampler.batch"]["counters"]["samples"] > 0
        # per-run metric deltas rode along as run_metrics events
        assert summary["metrics"]["timings"]  # linalg/engine timers present
        # the phase buckets surface the engine's bulk-fill/batch-kernel work
        # (spans plus engine.fill.* metric timers) next to solver and sampler
        phases = summary["phases"]
        assert {"solver", "sampler", "engine"} <= set(phases)
        assert phases["engine"]["span_count"] > 0
        assert phases["engine"]["timer_count"] > 0


class TestTraceCLI:
    def test_cli_run_with_trace_then_summarise(self, tmp_path, capsys):
        out = str(tmp_path)
        trace = str(tmp_path / "trace.jsonl")
        assert cli_main(["run", "smoke", "--out", out, "--trace", trace]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "summarise", trace]) == 0
        rendered = capsys.readouterr().out
        assert "solver.choose_strategy" in rendered
        assert "sampler.batch" in rendered
        assert "phase" in rendered and "calls" in rendered

    def test_summarize_alias_and_multiple_files(self, tmp_path, capsys):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        first.write_text('{"event":"span","name":"x","dur":1.0,"pid":1}\n')
        second.write_text('{"event":"span","name":"x","dur":1.0,"pid":2}\n')
        assert cli_main(["trace", "summarize", str(first), str(second)]) == 0
        assert "2 trace event(s)" in capsys.readouterr().out

    def test_empty_trace_exits_nonzero(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli_main(["trace", "summarise", str(empty)]) == 1
        assert "no trace events" in capsys.readouterr().err

    def test_missing_trace_file_exits_nonzero(self, tmp_path, capsys):
        assert cli_main(["trace", "summarise", str(tmp_path / "nope.jsonl")]) == 1
        assert capsys.readouterr().err

    def test_report_shows_per_strategy_timings(self, tmp_path, capsys):
        out = str(tmp_path)
        assert cli_main(["run", "smoke", "--out", out]) == 0
        capsys.readouterr()
        assert cli_main(["report", "smoke", "--out", out]) == 0
        rendered = capsys.readouterr().out
        assert "per-strategy timings:" in rendered
        assert "hidden_normal" in rendered
        assert "mean=" in rendered and "max=" in rendered
