"""Fault-tolerance, checkpoint/resume and cache-eviction tests (PR 3).

The contract under test:

* a run that raises becomes a ``status="error"`` row (with the traceback)
  instead of killing the sweep, and ``max_failures`` bounds the tolerance;
* completed rows are journaled as they finish; an interrupted sweep resumed
  with ``resume=True`` produces final ``rows`` byte-identical to an
  uninterrupted ``workers=1`` run at the same seed;
* ``write_bench`` is atomic — a crash mid-write never corrupts an existing
  BENCH file;
* ``cache prune --max-bytes`` LRU-evicts whole Cayley-table pairs by mtime.
"""

import json
import os
import time

import pytest

from repro.experiments import (
    RunRecord,
    SweepAborted,
    SweepSpec,
    execute_run_safe,
    get_workload,
    load_bench,
    run_sweep,
    write_bench,
)
import repro.experiments.runner as runner_module
from repro.experiments.cli import main as cli_main, run_sweeps
from repro.experiments.results import (
    aggregate_records,
    journal_path,
    load_journal,
    rows_bytes,
)
from repro.groups.engine import cache_entries, prune_cache

SEED = 20010202


def tiny_spec(name="tiny", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(name, "dihedral_rotation", {"n": [8, 12]}, **defaults)


def faulty_spec(name="faulty", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(name, "diagnostic_fault", {"n": [8], "fail": [False, True]}, **defaults)


class TestErrorCapture:
    def test_raising_run_becomes_error_record(self):
        run = faulty_spec().expand()[-1]  # a fail=True point
        record = execute_run_safe(run)
        assert record.status == "error"
        assert record.success is False
        assert record.generators == [] and record.query_report == {}
        assert "diagnostic fault injected" in record.error
        assert "Traceback" in record.error
        # tracebacks are path-normalized: the row bytes must not depend on
        # where the repo is checked out
        assert 'File "/' not in record.error
        assert 'File "registry.py"' in record.error

    def test_sweep_with_errors_completes_and_reports(self, tmp_path):
        path, payload = run_sweep(faulty_spec(), workers=1, out_dir=str(tmp_path))
        aggregate = payload["aggregate"]
        assert aggregate["runs"] == 4
        assert aggregate["successes"] == 2
        assert aggregate["errors"] == 2
        assert aggregate["success_rate"] == 0.5
        # completion removes the journal
        assert not os.path.exists(journal_path(str(tmp_path), "faulty"))
        # error rows round-trip through the persisted JSON byte-identically
        assert rows_bytes(load_bench(path)) == rows_bytes(payload)
        error_rows = [row for row in payload["rows"] if row["status"] == "error"]
        assert len(error_rows) == 2
        for row in error_rows:
            assert row["success"] is False and "RuntimeError" in row["error"]

    def test_error_rows_identical_across_worker_counts(self):
        _, serial = run_sweep(faulty_spec(), workers=1, out_dir=None)
        _, pooled = run_sweep(faulty_spec(), workers=2, out_dir=None)
        assert rows_bytes(serial) == rows_bytes(pooled)

    def test_max_failures_budget_aborts_and_keeps_journal(self, tmp_path):
        with pytest.raises(SweepAborted, match="max-failures 0"):
            run_sweep(faulty_spec(), workers=1, out_dir=str(tmp_path), max_failures=0)
        jpath = journal_path(str(tmp_path), "faulty")
        assert os.path.exists(jpath)
        journaled = load_journal(jpath, faulty_spec())
        # the two healthy runs and the first error were journaled before the abort
        assert len(journaled) == 3
        assert sum(1 for record in journaled.values() if record.status == "error") == 1

    def test_generous_max_failures_tolerates_the_errors(self):
        _, payload = run_sweep(faulty_spec(), workers=1, out_dir=None, max_failures=2)
        assert payload["aggregate"]["errors"] == 2


class TestResume:
    def test_kill_and_resume_rows_byte_identical(self, tmp_path, monkeypatch):
        spec = tiny_spec("interrupted")
        real_execute = runner_module.execute_run

        def dying_execute(run, shard_pool=None):
            if run.index == 2:
                raise KeyboardInterrupt
            return real_execute(run, shard_pool=shard_pool)

        monkeypatch.setattr(runner_module, "execute_run", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, out_dir=str(tmp_path))
        jpath = journal_path(str(tmp_path), "interrupted")
        assert os.path.exists(jpath)
        assert len(load_journal(jpath, spec)) == 2

        monkeypatch.setattr(runner_module, "execute_run", real_execute)
        path, resumed = run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(resumed) == rows_bytes(baseline)
        assert rows_bytes(load_bench(path)) == rows_bytes(baseline)
        assert not os.path.exists(jpath), "a completed sweep removes its journal"

    def test_resume_retries_journaled_errors_against_a_fresh_budget(self, tmp_path):
        spec = faulty_spec()
        with pytest.raises(SweepAborted):
            run_sweep(spec, workers=1, out_dir=str(tmp_path), max_failures=0)
        # the journaled error is retried (and deterministically fails again);
        # together with the remaining error that exceeds a budget of 1
        with pytest.raises(SweepAborted, match="2 failed"):
            run_sweep(spec, workers=1, out_dir=str(tmp_path), max_failures=1, resume=True)

    def test_resume_heals_transient_errors(self, tmp_path, monkeypatch):
        spec = tiny_spec("transient")
        real_execute = runner_module.execute_run

        def flaky_execute(run, shard_pool=None):
            if run.index == 1:
                raise RuntimeError("transient outage")
            return real_execute(run, shard_pool=shard_pool)

        monkeypatch.setattr(runner_module, "execute_run", flaky_execute)
        with pytest.raises(SweepAborted):
            run_sweep(spec, workers=1, out_dir=str(tmp_path), max_failures=0)
        # cause fixed: the errored run is retried and the sweep completes clean
        monkeypatch.setattr(runner_module, "execute_run", real_execute)
        _, resumed = run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        assert resumed["aggregate"]["errors"] == 0
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(resumed) == rows_bytes(baseline)

    def test_pooled_abort_journals_completed_runs(self, tmp_path):
        spec = faulty_spec()
        with pytest.raises(SweepAborted):
            run_sweep(spec, workers=2, out_dir=str(tmp_path), max_failures=0)
        journaled = load_journal(journal_path(str(tmp_path), "faulty"), spec)
        assert journaled, "completed runs must be journaled before a pooled abort"
        assert any(record.status == "error" for record in journaled.values())

    def test_resume_with_mismatched_spec_is_refused(self, tmp_path, monkeypatch):
        spec = tiny_spec("pinned")
        real_execute = runner_module.execute_run

        def dying_execute(run, shard_pool=None):
            if run.index == 1:
                raise KeyboardInterrupt
            return real_execute(run, shard_pool=shard_pool)

        monkeypatch.setattr(runner_module, "execute_run", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, out_dir=str(tmp_path))
        monkeypatch.setattr(runner_module, "execute_run", real_execute)
        with pytest.raises(ValueError, match="different sweep configuration"):
            run_sweep(spec.with_overrides(seed=7), workers=1, out_dir=str(tmp_path), resume=True)

    def test_resume_without_journal_runs_everything(self, tmp_path):
        spec = tiny_spec("fresh")
        path, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        assert payload["aggregate"]["runs"] == 4
        assert os.path.exists(path)

    def test_torn_trailing_journal_line_is_dropped(self, tmp_path, monkeypatch):
        spec = tiny_spec("torn")
        real_execute = runner_module.execute_run

        def dying_execute(run, shard_pool=None):
            if run.index == 2:
                raise KeyboardInterrupt
            return real_execute(run, shard_pool=shard_pool)

        monkeypatch.setattr(runner_module, "execute_run", dying_execute)
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, out_dir=str(tmp_path))
        monkeypatch.setattr(runner_module, "execute_run", real_execute)
        jpath = journal_path(str(tmp_path), "torn")
        with open(jpath, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "seed": 123, "trunc')  # crash mid-append
        assert len(load_journal(jpath, spec)) == 2
        _, resumed = run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(resumed) == rows_bytes(baseline)

    def test_torn_fragment_then_second_interruption_keeps_checkpoints(self, tmp_path, monkeypatch):
        # Crash leaves a torn, newline-less fragment; the first resume must
        # compact the journal so its own appends start on a clean line —
        # otherwise a second interruption merges the fragment with the next
        # record and a later resume silently loses every checkpoint after it.
        spec = tiny_spec("double-crash")
        real_execute = runner_module.execute_run

        def die_at(index):
            def dying(run, shard_pool=None):
                if run.index == index:
                    raise KeyboardInterrupt
                return real_execute(run, shard_pool=shard_pool)

            return dying

        monkeypatch.setattr(runner_module, "execute_run", die_at(2))
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, out_dir=str(tmp_path))
        jpath = journal_path(str(tmp_path), "double-crash")
        with open(jpath, "a", encoding="utf-8") as handle:
            handle.write('{"index": 2, "torn')  # no trailing newline
        monkeypatch.setattr(runner_module, "execute_run", die_at(3))
        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        # rows 0-2 must all have survived both interruptions
        assert len(load_journal(jpath, spec)) == 3
        monkeypatch.setattr(runner_module, "execute_run", real_execute)
        _, resumed = run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(resumed) == rows_bytes(baseline)

    def test_resume_over_headerless_journal_reinitialises_it(self, tmp_path):
        spec = tiny_spec("headerless")
        jpath = journal_path(str(tmp_path), "headerless")
        open(jpath, "w").close()  # a crash landed inside the header write
        path, payload = run_sweep(spec, workers=1, out_dir=str(tmp_path), resume=True)
        assert payload["aggregate"]["runs"] == 4
        assert not os.path.exists(jpath)
        _, baseline = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(payload) == rows_bytes(baseline)

    def test_journal_records_round_trip(self):
        record = RunRecord(
            sweep="s",
            index=3,
            family="diagnostic_fault",
            params={"n": 8, "fail": True},
            repeat=1,
            seed=99,
            strategy="auto",
            success=False,
            generators=[],
            query_report={},
            status="error",
            error="Traceback ...\nRuntimeError: boom\n",
        )
        round_tripped = RunRecord.from_json_dict(json.loads(json.dumps(record.to_json_dict())))
        assert round_tripped.row() == record.row()


class TestAtomicWrite:
    def test_failed_write_preserves_existing_bench_file(self, tmp_path):
        out = str(tmp_path)
        path = write_bench(out, "atomic", {"rows": [1, 2, 3]})
        original = open(path, "rb").read()
        with pytest.raises(TypeError):
            write_bench(out, "atomic", {"rows": {1, 2, 3}})  # sets are not JSON
        assert open(path, "rb").read() == original
        assert [n for n in os.listdir(out) if n.startswith("BENCH_atomic")] == ["BENCH_atomic.json"]


class TestAggregates:
    def test_empty_record_list_does_not_report_full_success(self):
        aggregate = aggregate_records([])
        assert aggregate["runs"] == 0
        assert aggregate["successes"] == 0
        assert aggregate["success_rate"] is None


class TestStatisticsWorkloads:
    def test_reserved_grid_keys_reach_the_solver(self):
        spec = SweepSpec.from_grid(
            "reserved",
            "dihedral_rotation",
            {"n": [8], "strategy": ["classical"], "confidence": [4]},
        )
        (run,) = spec.expand()
        assert run.strategy == "classical"
        assert run.options_dict()["confidence"] == 4
        assert run.instance_params() == {"n": 8}
        assert run.params_dict() == {"confidence": 4, "n": 8, "strategy": "classical"}

    def test_confidence_scan_trades_success_for_rounds(self):
        spec = SweepSpec.from_grid(
            "confidence-scan",
            "dihedral_rotation",
            {"n": [16], "confidence": [1, 16]},
            repeats=3,
            seed=7,
        )
        _, payload = run_sweep(spec, workers=1, out_dir=None)
        rows = {1: [], 16: []}
        for row in payload["rows"]:
            rows[dict(row["params"])["confidence"]].append(row)
        assert all(row["success"] for row in rows[16])
        low_queries = max(row["query_report"]["quantum_queries"] for row in rows[1])
        high_queries = min(row["query_report"]["quantum_queries"] for row in rows[16])
        assert low_queries < high_queries, "a lower confidence must use fewer sampling rounds"

    def test_strategy_crossover_runs_both_strategies(self):
        spec = SweepSpec.from_grid(
            "crossover",
            "dihedral_rotation",
            {"n": [8], "strategy": ["hidden_normal", "classical"]},
        )
        _, payload = run_sweep(spec, workers=1, out_dir=None)
        by_strategy = {row["strategy"]: row for row in payload["rows"]}
        assert set(by_strategy) == {"hidden_normal", "classical"}
        assert all(row["success"] for row in payload["rows"])
        assert by_strategy["classical"]["query_report"]["quantum_queries"] == 0
        assert by_strategy["hidden_normal"]["query_report"]["quantum_queries"] > 0

    def test_declared_statistics_workloads_expand(self):
        for name in ("success-vs-rounds", "success-vs-rounds-abelian", "strategy-crossover"):
            spec = get_workload(name)
            runs = spec.expand()
            assert runs, name
            assert len({run.seed for run in runs}) == len(runs)


class TestCacheEviction:
    @staticmethod
    def _make_entry(cache_dir, digest, size, age_seconds):
        os.makedirs(cache_dir, exist_ok=True)
        stamp = time.time() - age_seconds
        paths = []
        for kind in ("table", "inv"):
            path = os.path.join(cache_dir, f"cayley-{digest}-{kind}.npy")
            with open(path, "wb") as handle:
                handle.write(b"\0" * size)
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return paths

    def test_entries_sorted_least_recently_used_first(self, tmp_path):
        cache = str(tmp_path / "cayley")
        self._make_entry(cache, "bbbb", 10, age_seconds=100)
        self._make_entry(cache, "aaaa", 10, age_seconds=10)
        assert [entry["digest"] for entry in cache_entries(cache)] == ["bbbb", "aaaa"]

    def test_prune_respects_max_bytes_and_evicts_pairs(self, tmp_path):
        cache = str(tmp_path / "cayley")
        self._make_entry(cache, "old1", 100, age_seconds=300)
        self._make_entry(cache, "old2", 100, age_seconds=200)
        self._make_entry(cache, "new1", 100, age_seconds=10)
        evicted = prune_cache(cache, max_bytes=250)  # total 600 -> need <= 250
        assert [entry["digest"] for entry in evicted] == ["old1", "old2"]
        remaining = cache_entries(cache)
        assert [entry["digest"] for entry in remaining] == ["new1"]
        assert sum(entry["bytes"] for entry in remaining) <= 250
        # both files of each evicted pair are gone
        assert sorted(os.listdir(cache)) == ["cayley-new1-inv.npy", "cayley-new1-table.npy"]

    def test_orphaned_writer_temp_files_are_listed_and_pruned(self, tmp_path):
        cache = str(tmp_path / "cayley")
        self._make_entry(cache, "live", 50, age_seconds=5)
        orphan = os.path.join(cache, "cayley-dead-table.npy.tmp-12345")
        with open(orphan, "wb") as handle:
            handle.write(b"\0" * 500)
        stamp = time.time() - 900
        os.utime(orphan, (stamp, stamp))
        entries = cache_entries(cache)
        assert sum(entry["bytes"] for entry in entries) == 600, "temp files count toward usage"
        assert entries[0]["digest"] == "cayley-dead-table.npy.tmp-12345"
        evicted = prune_cache(cache, max_bytes=150)
        assert orphan in [path for entry in evicted for path in entry["files"]]
        assert not os.path.exists(orphan)

    def test_prune_to_zero_empties_the_cache(self, tmp_path):
        cache = str(tmp_path / "cayley")
        self._make_entry(cache, "only", 10, age_seconds=1)
        prune_cache(cache, max_bytes=0)
        assert cache_entries(cache) == []

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            prune_cache(str(tmp_path), max_bytes=-1)

    def test_missing_directory_is_empty(self, tmp_path):
        assert cache_entries(str(tmp_path / "nowhere")) == []


class TestCLI:
    def test_run_with_errors_exits_nonzero_but_writes_bench(self, tmp_path, capsys):
        status = cli_main(["run", "fault-smoke", "--out", str(tmp_path)])
        assert status == 1
        assert (tmp_path / "BENCH_fault-smoke.json").exists()
        captured = capsys.readouterr()
        assert "errors: 2" in captured.out
        assert "FAILED" in captured.err

    def test_interrupt_via_max_failures_then_resume_matches_baseline(self, tmp_path, capsys):
        resumed_dir, baseline_dir = str(tmp_path / "resumed"), str(tmp_path / "baseline")
        # interrupted attempt: budget 0 aborts at the first error, journal kept
        assert cli_main(["run", "fault-smoke", "--max-failures", "0", "--out", resumed_dir]) == 1
        assert "aborted" in capsys.readouterr().err
        assert os.path.exists(journal_path(resumed_dir, "fault-smoke"))
        assert not os.path.exists(os.path.join(resumed_dir, "BENCH_fault-smoke.json"))
        # resume executes the remainder (status 1: the sweep has error rows)
        assert cli_main(["run", "fault-smoke", "--resume", "--out", resumed_dir]) == 1
        assert not os.path.exists(journal_path(resumed_dir, "fault-smoke"))
        # uninterrupted baseline at the same seed
        assert cli_main(["run", "fault-smoke", "--out", baseline_dir]) == 1
        resumed = load_bench(os.path.join(resumed_dir, "BENCH_fault-smoke.json"))
        baseline = load_bench(os.path.join(baseline_dir, "BENCH_fault-smoke.json"))
        assert rows_bytes(resumed) == rows_bytes(baseline)

    def test_report_marks_error_rows(self, tmp_path, capsys):
        cli_main(["run", "fault-smoke", "--out", str(tmp_path)])
        capsys.readouterr()
        assert cli_main(["report", "fault-smoke", "--out", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "ERR" in output
        assert "errors=2" in output

    def test_cache_ls_and_prune(self, tmp_path, capsys):
        cache = str(tmp_path / "cayley")
        TestCacheEviction._make_entry(cache, "feed", 50, age_seconds=50)
        TestCacheEviction._make_entry(cache, "face", 50, age_seconds=5)
        assert cli_main(["cache", "ls", cache]) == 0
        output = capsys.readouterr().out
        assert "feed" in output and "face" in output and "2 entries" in output
        assert cli_main(["cache", "prune", cache, "--max-bytes", "100"]) == 0
        assert "evicted 1 entries" in capsys.readouterr().out
        assert [entry["digest"] for entry in cache_entries(cache)] == ["face"]

    def test_cache_ls_empty_directory(self, tmp_path, capsys):
        assert cli_main(["cache", "ls", str(tmp_path)]) == 0
        assert "no Cayley cache entries" in capsys.readouterr().out

    def test_run_sweeps_runs_every_sweep_and_combines_status(self, tmp_path, capsys):
        status = run_sweeps(["fault-smoke", "smoke"], ["--out", str(tmp_path)])
        assert status == 1  # fault-smoke fails ...
        assert (tmp_path / "BENCH_fault-smoke.json").exists()
        # ... but smoke still ran and succeeded
        assert (tmp_path / "BENCH_smoke.json").exists()
        payload = load_bench(str(tmp_path / "BENCH_smoke.json"))
        assert payload["aggregate"]["successes"] == payload["aggregate"]["runs"]
