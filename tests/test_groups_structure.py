"""Unit tests for subgroup machinery, series, quotients and the catalogue."""

import math

import numpy as np
import pytest

from repro.groups.abelian import AbelianTupleGroup, cyclic_group
from repro.groups.base import GroupError
from repro.groups.catalog import (
    affine_gf2_instance,
    dihedral_instance,
    elementary_abelian_semidirect_instance,
    heisenberg_instance,
    metacyclic_instance,
    named_group,
    wreath_instance,
)
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, dihedral_group, symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group, wreath_product_z2
from repro.groups.quotient import QuotientGroup
from repro.groups.series import (
    composition_factor_orders,
    derived_series,
    is_solvable,
    polycyclic_series,
    solvable_length,
)
from repro.groups.subgroup import (
    SubgroupView,
    center_elements,
    commutator_subgroup_generators,
    coset_representative_map,
    generate_subgroup_elements,
    is_normal_subgroup,
    is_subgroup_member,
    left_transversal,
    make_membership_tester,
    normal_closure,
    subgroup_order,
)


class TestSubgroupClosure:
    def test_generate_subgroup_elements(self):
        group = dihedral_semidirect(6)
        rotation = group.embed_normal((1,))
        assert len(generate_subgroup_elements(group, [rotation])) == 6

    def test_limit_enforced(self):
        group = AbelianTupleGroup([100])
        with pytest.raises(GroupError):
            generate_subgroup_elements(group, [(1,)], limit=10)

    def test_subgroup_order_fast_paths(self):
        perm = symmetric_group(5)
        assert subgroup_order(perm, alternating_group(5).generators()) == 60
        abelian = AbelianTupleGroup([8, 9])
        assert subgroup_order(abelian, [(2, 0)]) == 4
        heis = extraspecial_group(3)
        assert subgroup_order(heis, heis.center_generators()) == 3

    def test_membership_tester_dispatch(self):
        perm = symmetric_group(4)
        member = make_membership_tester(perm, alternating_group(4).generators())
        assert member((1, 2, 0, 3))
        assert not member((1, 0, 2, 3))

        abelian = AbelianTupleGroup([9])
        member = make_membership_tester(abelian, [(3,)])
        assert member((6,)) and not member((1,))

        heis = extraspecial_group(3)
        member = make_membership_tester(heis, heis.center_generators())
        assert member(((0,), (0,), 2))
        assert not member(((1,), (0,), 0))

    def test_trivial_membership_tester(self):
        perm = symmetric_group(3)
        member = make_membership_tester(perm, [])
        assert member(perm.identity())
        assert not member((1, 0, 2))

    def test_is_subgroup_member(self):
        group = cyclic_group(12)
        assert is_subgroup_member(group, [(4,)], (8,))
        assert not is_subgroup_member(group, [(4,)], (2,))


class TestNormalClosure:
    def test_normal_closure_in_symmetric_group(self):
        s4 = symmetric_group(4)
        # The normal closure of a transposition in S_4 is all of S_4.
        closure = normal_closure(s4, [(1, 0, 2, 3)])
        assert subgroup_order(s4, closure) == 24

    def test_normal_closure_in_dihedral(self):
        group = dihedral_semidirect(10)
        rotation_square = group.embed_normal((2,))
        closure = normal_closure(group, [rotation_square])
        assert is_normal_subgroup(group, closure)
        assert len(generate_subgroup_elements(group, closure)) == 5

    def test_normal_closure_of_identity(self):
        group = dihedral_semidirect(5)
        assert normal_closure(group, [group.identity()]) == []

    def test_commutator_subgroup(self):
        group = dihedral_semidirect(7)
        derived = commutator_subgroup_generators(group)
        assert len(generate_subgroup_elements(group, derived)) == 7
        heis = extraspecial_group(5)
        assert len(generate_subgroup_elements(heis, commutator_subgroup_generators(heis))) == 5

    def test_commutator_subgroup_of_abelian_is_trivial(self):
        assert commutator_subgroup_generators(AbelianTupleGroup([6, 10])) == []

    def test_is_normal_subgroup(self):
        s4 = symmetric_group(4)
        assert is_normal_subgroup(s4, alternating_group(4).generators())
        assert not is_normal_subgroup(s4, [(1, 0, 2, 3)])


class TestTransversalsAndCenters:
    def test_left_transversal_size(self):
        group = dihedral_semidirect(6)
        rotation = group.embed_normal((1,))
        transversal = left_transversal(group, [rotation])
        assert len(transversal) == 2

    def test_left_transversal_limit(self):
        group = AbelianTupleGroup([16])
        with pytest.raises(GroupError):
            left_transversal(group, [(0,)], max_index=4)

    def test_center_of_heisenberg(self):
        group = extraspecial_group(3)
        center = center_elements(group)
        assert len(center) == 3

    def test_center_of_abelian_group_is_everything(self):
        group = AbelianTupleGroup([2, 3])
        assert len(center_elements(group)) == 6

    def test_coset_representative_map_constant_on_cosets(self):
        group = dihedral_semidirect(5)
        subgroup = generate_subgroup_elements(group, [group.embed_normal((1,))])
        label = coset_representative_map(group, subgroup)
        r = group.embed_normal((2,))
        s = group.embed_quotient((1,))
        assert label(r) == label(group.identity())
        assert label(s) != label(group.identity())

    def test_subgroup_view_delegates(self):
        group = symmetric_group(4)
        view = SubgroupView(group, alternating_group(4).generators())
        assert view.identity() == group.identity()
        assert len(view.generators()) == 2
        assert view.exponent_bound() == group.exponent_bound()


class TestSeries:
    def test_derived_series_of_s4(self):
        s4 = symmetric_group(4)
        series = derived_series(s4)
        orders = [subgroup_order(s4, gens) if gens else 1 for gens in series]
        assert orders[:4] == [24, 12, 4, 1]

    def test_derived_series_stabilises_for_perfect_quotient(self):
        a5 = alternating_group(5)
        series = derived_series(a5)
        assert subgroup_order(a5, series[-1]) == 60  # A_5 is perfect

    @pytest.mark.parametrize(
        "group,expected",
        [
            (dihedral_semidirect(9), True),
            (metacyclic_group(7, 3), True),
            (extraspecial_group(3), True),
            (wreath_product_z2(2), True),
            (symmetric_group(4), True),
            (alternating_group(5), False),
            (symmetric_group(5), False),
        ],
    )
    def test_is_solvable(self, group, expected):
        assert is_solvable(group) is expected

    def test_solvable_length(self):
        assert solvable_length(AbelianTupleGroup([12])) == 1
        assert solvable_length(dihedral_semidirect(5)) == 2
        assert solvable_length(symmetric_group(4)) == 3
        with pytest.raises(GroupError):
            solvable_length(alternating_group(5))

    @pytest.mark.parametrize(
        "group,order",
        [
            (dihedral_semidirect(6), 12),
            (metacyclic_group(5, 2), 10),
            (extraspecial_group(3), 27),
            (symmetric_group(4), 24),
        ],
    )
    def test_composition_factor_orders(self, group, order):
        primes = composition_factor_orders(group)
        assert math.prod(primes) == order
        from repro.linalg.modular import is_probable_prime

        assert all(is_probable_prime(p) for p in primes)

    def test_polycyclic_series_product(self):
        group = extraspecial_group(3)
        series = polycyclic_series(group)
        assert math.prod(p for _, p in series) == 27

    def test_polycyclic_series_requires_solvable(self):
        with pytest.raises(GroupError):
            polycyclic_series(alternating_group(5))


class TestQuotientGroup:
    def test_quotient_of_dihedral_by_rotations(self):
        group = dihedral_semidirect(7)
        quotient = QuotientGroup(group, [group.embed_normal((1,))])
        assert quotient.order() == 2
        assert len(quotient.element_list()) == 2

    def test_quotient_requires_normal(self):
        s4 = symmetric_group(4)
        with pytest.raises(GroupError):
            QuotientGroup(s4, [(1, 0, 2, 3)])

    def test_natural_map_is_homomorphism(self, rng):
        group = dihedral_semidirect(6)
        quotient = QuotientGroup(group, [group.embed_normal((2,))])
        project = quotient.natural_map()
        for _ in range(10):
            a = group.random_element(rng)
            b = group.random_element(rng)
            assert project(group.multiply(a, b)) == quotient.multiply(project(a), project(b))

    def test_quotient_of_s4_by_a4(self):
        s4 = symmetric_group(4)
        quotient = QuotientGroup(s4, alternating_group(4).generators())
        assert quotient.order() == 2


class TestCatalog:
    def test_wreath_instance(self):
        group, normal_gens = wreath_instance(3)
        assert group.order() == 2**7
        assert len(normal_gens) == 6

    def test_affine_instance_normal_subgroup(self):
        group, normal_gens = affine_gf2_instance(3)
        assert is_normal_subgroup(group, normal_gens)
        for n in generate_subgroup_elements(group, normal_gens):
            assert group.is_identity(group.multiply(n, n))

    def test_elementary_abelian_semidirect(self):
        group, normal_gens = elementary_abelian_semidirect_instance(4, "V4")
        assert is_normal_subgroup(group, normal_gens)
        group_s3, _ = elementary_abelian_semidirect_instance(3, "S3")
        assert len(group_s3.element_list()) == 48
        with pytest.raises(GroupError):
            elementary_abelian_semidirect_instance(2, "S3")
        with pytest.raises(GroupError):
            elementary_abelian_semidirect_instance(4, "unknown")

    def test_named_group_lookup(self):
        assert named_group("cyclic", n=12).order() == 12
        assert named_group("heisenberg", p=3).order() == 27
        assert named_group("dihedral", n=5).order() == 10
        assert named_group("symmetric", n=4).order() == 24
        assert named_group("wreath", k=2).order() == 32
        assert named_group("metacyclic", p=7, q=3).order() == 21
        with pytest.raises(GroupError):
            named_group("no-such-family")

    def test_other_factories(self):
        assert heisenberg_instance(5).order() == 125
        assert dihedral_instance(6, as_permutation=True).order() == 12
        assert metacyclic_instance(13, 3).order() == 39
