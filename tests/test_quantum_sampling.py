"""Unit tests for the Fourier sampling layer and its two backends."""

import numpy as np
import pytest

from repro.linalg.zmodule import ZModule, annihilator, subgroup_contains
from repro.quantum.sampling import (
    FourierSampler,
    SubgroupStructureOracle,
    TupleFunctionOracle,
)


class TestOracles:
    def test_subgroup_structure_oracle_labels(self):
        oracle = SubgroupStructureOracle([8, 9], [(2, 3)])
        module = oracle.module
        for h in module.subgroup_elements([(2, 3)]):
            assert oracle.evaluate(module.add((5, 1), h)) == oracle.evaluate((5, 1))
        assert oracle.evaluate((1, 0)) != oracle.evaluate((0, 0))
        assert oracle.kernel_generators() == oracle.kernel_generators()

    def test_tuple_function_oracle_declared_kernel(self):
        oracle = TupleFunctionOracle([4, 4], lambda x: (x[0] % 2, x[1]), declared_kernel=[(2, 0)])
        assert oracle.kernel_generators() == [(2, 0)]

    def test_tuple_function_oracle_enumerated_kernel(self):
        oracle = TupleFunctionOracle([6], lambda x: x[0] % 3)
        kernel = oracle.kernel_generators()
        module = ZModule([6])
        assert sorted(module.subgroup_elements(kernel)) == [(0,), (3,)]

    def test_enumeration_limit(self):
        oracle = TupleFunctionOracle([1 << 10, 1 << 10], lambda x: x, max_enumeration=100)
        with pytest.raises(ValueError):
            oracle.kernel_generators()

    def test_value_cache(self):
        calls = []
        oracle = TupleFunctionOracle([8], lambda x: calls.append(x) or x[0] % 4)
        oracle.evaluate((3,))
        oracle.evaluate((3,))
        assert len(calls) == 1

    def test_domain_size(self):
        assert TupleFunctionOracle([4, 6], lambda x: 0).domain_size() == 24


class TestSamplerBackends:
    @pytest.mark.parametrize("backend", ["analytic", "statevector"])
    def test_samples_lie_in_annihilator(self, backend, rng):
        moduli = [8, 6]
        hidden = [(2, 3)]
        oracle = SubgroupStructureOracle(moduli, hidden)
        sampler = FourierSampler(backend=backend, rng=rng)
        dual = annihilator(hidden, moduli)
        for sample in sampler.sample(oracle, 25):
            assert subgroup_contains(dual, sample, moduli)

    def test_quantum_queries_counted_per_round(self, rng):
        oracle = SubgroupStructureOracle([4, 4], [(2, 2)])
        sampler = FourierSampler(backend="analytic", rng=rng)
        sampler.sample(oracle, 7)
        assert oracle.counter.quantum_queries == 7

    def test_auto_backend_selects_by_domain_size(self, rng):
        small = SubgroupStructureOracle([4], [(2,)])
        large = SubgroupStructureOracle([1 << 10, 1 << 10], [(2, 0)])
        sampler = FourierSampler(backend="auto", rng=rng, statevector_limit=16)
        assert sampler._resolve_backend(small) == "statevector"
        assert sampler._resolve_backend(large) == "analytic"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            FourierSampler(backend="imaginary")

    def test_trivial_hidden_subgroup_samples_everything(self, rng):
        # H = {0}: samples should cover many dual elements (all of Z_8).
        oracle = SubgroupStructureOracle([8], [(0,)])
        sampler = FourierSampler(backend="analytic", rng=rng)
        samples = {s[0] for s in sampler.sample(oracle, 60)}
        assert len(samples) >= 5

    def test_full_hidden_subgroup_samples_only_zero(self, rng):
        oracle = SubgroupStructureOracle([6], [(1,)])
        for backend in ("analytic", "statevector"):
            sampler = FourierSampler(backend=backend, rng=rng)
            assert all(s == (0,) for s in sampler.sample(oracle, 10))

    def test_backends_agree_statistically(self, rng):
        """Chi-squared style agreement between the two backends (Simon instance)."""
        moduli = [2, 2, 2]
        hidden = [(1, 1, 0)]
        oracle = SubgroupStructureOracle(moduli, hidden)
        exact = FourierSampler(backend="analytic", rng=rng).exact_distribution(oracle)
        counts = np.zeros(exact.shape)
        sampler = FourierSampler(backend="statevector", rng=rng)
        n = 160
        for sample in sampler.sample(oracle, n):
            counts[sample] += 1
        empirical = counts / n
        # The four dual elements each have probability 1/4.
        support = exact > 0
        assert np.all(empirical[~support] == 0)
        assert np.max(np.abs(empirical[support] - exact[support])) < 0.15

    def test_exact_distribution_is_uniform_on_dual(self, rng):
        moduli = [4, 4]
        hidden = [(2, 0)]
        oracle = SubgroupStructureOracle(moduli, hidden)
        distribution = FourierSampler(rng=rng).exact_distribution(oracle)
        dual = annihilator(hidden, moduli)
        module = ZModule(moduli)
        dual_elements = module.subgroup_elements(dual)
        assert np.isclose(distribution.sum(), 1.0)
        for y in dual_elements:
            assert np.isclose(distribution[y], 1.0 / len(dual_elements))


class TestCountValidation:
    """Non-positive round counts are rejected on every path (no counter bump)."""

    @pytest.mark.parametrize("count", [0, -1, -17])
    @pytest.mark.parametrize("batch", [True, False])
    def test_non_positive_count_raises(self, count, batch):
        oracle = SubgroupStructureOracle([8], [(2,)])
        sampler = FourierSampler(backend="analytic", rng=np.random.default_rng(0), batch=batch)
        with pytest.raises(ValueError, match="positive count"):
            sampler.sample(oracle, count)
        assert oracle.counter.quantum_queries == 0

    def test_statevector_path_validates_too(self):
        oracle = SubgroupStructureOracle([8], [(2,)])
        sampler = FourierSampler(backend="statevector", rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="positive count"):
            sampler.sample(oracle, 0)
        assert oracle.counter.quantum_queries == 0

    def test_invalid_shards_rejected(self):
        oracle = SubgroupStructureOracle([8], [(2,)])
        with pytest.raises(ValueError, match="shards"):
            FourierSampler(shards=0)
        with pytest.raises(ValueError, match="shards"):
            FourierSampler().sample(oracle, 4, shards=-2)
        with pytest.raises(ValueError, match="batch path"):
            FourierSampler(batch=False).sample(oracle, 4, shards=2)


class TestShardedSampling:
    """Sharded batch requests are byte-identical to the unsharded path."""

    MODULI = [8, 9, 5]
    HIDDEN = [(2, 3, 0)]

    def _oracle(self):
        return SubgroupStructureOracle(self.MODULI, self.HIDDEN)

    @pytest.mark.parametrize("backend", ["analytic", "statevector"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 50])
    def test_sharded_equals_unsharded_at_fixed_seed(self, backend, shards):
        plain_oracle, sharded_oracle = self._oracle(), self._oracle()
        plain = FourierSampler(backend=backend, rng=np.random.default_rng(20010202))
        sharded = FourierSampler(backend=backend, rng=np.random.default_rng(20010202))
        a = plain.sample(plain_oracle, 23)
        b = sharded.sample(sharded_oracle, 23, shards=shards)
        assert a == b
        assert plain_oracle.counter.quantum_queries == sharded_oracle.counter.quantum_queries == 23

    def test_bigint_fallback_shards_identically(self):
        plain_oracle = SubgroupStructureOracle([1 << 70], [])
        sharded_oracle = SubgroupStructureOracle([1 << 70], [])
        a = FourierSampler(backend="analytic", rng=np.random.default_rng(3)).sample(plain_oracle, 9)
        b = FourierSampler(backend="analytic", rng=np.random.default_rng(3)).sample(
            sharded_oracle, 9, shards=4
        )
        assert a == b

    def test_process_pool_matches_inline_shards(self):
        from concurrent.futures import ProcessPoolExecutor

        inline_oracle, pooled_oracle = self._oracle(), self._oracle()
        inline = FourierSampler(backend="analytic", rng=np.random.default_rng(5)).sample(
            inline_oracle, 17, shards=4
        )
        with ProcessPoolExecutor(max_workers=2) as pool:
            pooled = FourierSampler(
                backend="analytic", rng=np.random.default_rng(5), shards=4, shard_pool=pool
            ).sample(pooled_oracle, 17)
        assert inline == pooled

    def test_sampler_level_shard_default_applies(self):
        plain_oracle, sharded_oracle = self._oracle(), self._oracle()
        a = FourierSampler(backend="analytic", rng=np.random.default_rng(11)).sample(plain_oracle, 12)
        b = FourierSampler(backend="analytic", rng=np.random.default_rng(11), shards=5).sample(
            sharded_oracle, 12
        )
        assert a == b

    def test_more_shards_than_rounds_is_fine(self):
        oracle = self._oracle()
        samples = FourierSampler(backend="analytic", rng=np.random.default_rng(2)).sample(
            oracle, 3, shards=16
        )
        assert len(samples) == 3

    def test_sharded_distribution_stays_in_dual(self):
        oracle = self._oracle()
        module = oracle.module
        dual = annihilator(self.HIDDEN, module.moduli)
        sampler = FourierSampler(backend="analytic", rng=np.random.default_rng(8), shards=3)
        for sample in sampler.sample(oracle, 40):
            assert subgroup_contains(dual, sample, module.moduli)

    def test_shards_with_scalar_path_rejected_at_construction(self):
        with pytest.raises(ValueError, match="batch path"):
            FourierSampler(batch=False, shards=2)
